// Shed-ordering over a real loopback socket: three tenants with distinct
// monthly budgets behind net::HttpServer -> api::S3Gateway ->
// core::ShardedEngine, with the admission controller's clock injected
// (now_us = 0) so the only latency signal is what the test itself feeds
// via RecordLatencyOnShard.  A forced p99 breach must 429 the
// lowest-value tenant first, then the middle one, and never the top one —
// and every 429 must carry Retry-After.
#include "capacity/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "api/auth.h"
#include "api/gateway.h"
#include "common/money.h"
#include "core/sharded_engine.h"
#include "net/client.h"
#include "net/server/server.h"
#include "provider/spec.h"

namespace scalia::capacity {
namespace {

constexpr common::SimTime kNow = 1000;
constexpr double kBreachUs = 50'000.0;  // 50 ms against a 1 ms target

class AdmissionOrderTest : public ::testing::Test {
 protected:
  AdmissionOrderTest() {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    core::ShardedEngineConfig config;
    config.num_shards = 1;
    engine_ = std::make_unique<core::ShardedEngine>(config, &registry_,
                                                    nullptr);
    for (const auto& creds : {bronze_, silver_, gold_}) {
      auth_.AddCredentials(creds);
    }
    gateway_ = std::make_unique<api::S3Gateway>(
        &auth_, [this]() -> core::EngineApi& { return *engine_; });

    AdmissionConfig admission_config;
    admission_config.slo_p99_ms = 1.0;
    admission_config.gain = 0.5;
    admission_config.min_samples = 4;
    admission_config.escalation_every_samples = 4;
    admission_config.probe_every = 0;  // pure ordering, no probe admissions
    admission_config.retry_after_s = 7;
    admission_config.num_shards = engine_->num_shards();
    admission_config.now_us = [] { return std::uint64_t{0}; };
    admission_ = std::make_unique<AdmissionController>(admission_config);
    // Value = the budget the billing ledger would invoice against.
    admission_->SetTenantBudget("bronze", common::Money(10.0));
    admission_->SetTenantBudget("silver", common::Money(100.0));
    admission_->SetTenantBudget("gold", common::Money(1000.0));
    gateway_->SetAdmissionController(admission_.get());

    net::ServerConfig server_config;
    server_config.clock = [] { return kNow; };
    server_ = std::make_unique<net::HttpServer>(
        std::move(server_config),
        [this](common::SimTime now, const api::HttpRequest& request) {
          return gateway_->Handle(now, request);
        });
    EXPECT_TRUE(server_->Start().ok());
  }

  ~AdmissionOrderTest() override { server_->Stop(); }

  api::HttpResponse Call(net::HttpClient& client,
                         const api::Credentials& creds,
                         api::HttpMethod method, const std::string& path,
                         std::string body = {}) {
    api::HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = std::move(body);
    request.query["nonce"] =
        std::to_string(nonce_.fetch_add(1, std::memory_order_relaxed));
    api::RequestSigner(creds).Sign(&request, kNow);
    auto response = client.RoundTrip(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : api::HttpResponse{};
  }

  /// Feeds `samples` breach-grade latencies straight into the shard
  /// estimate — the deterministic stand-in for a slow backend.
  void ForceBreach(std::size_t samples) {
    for (std::size_t i = 0; i < samples; ++i) {
      admission_->RecordLatencyOnShard(0, kBreachUs);
    }
  }

  const api::Credentials bronze_{.access_key_id = "BRONZE-1",
                                 .secret = "s-bronze",
                                 .tenant = "bronze"};
  const api::Credentials silver_{.access_key_id = "SILVER-1",
                                 .secret = "s-silver",
                                 .tenant = "silver"};
  const api::Credentials gold_{.access_key_id = "GOLD-1",
                               .secret = "s-gold",
                               .tenant = "gold"};
  provider::ProviderRegistry registry_;
  std::unique_ptr<core::ShardedEngine> engine_;
  api::Authenticator auth_;
  std::unique_ptr<api::S3Gateway> gateway_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<net::HttpServer> server_;
  std::atomic<std::uint64_t> nonce_{0};
};

TEST_F(AdmissionOrderTest, ShedsAscendingByValueAndStampsRetryAfter) {
  net::HttpClient client("127.0.0.1", server_->port());

  // SLO healthy: everyone writes.
  for (const auto* creds : {&bronze_, &silver_, &gold_}) {
    EXPECT_EQ(Call(client, *creds, api::HttpMethod::kPut,
                   "/docs/seed-" + creds->tenant, "hello")
                  .status,
              201)
        << creds->tenant;
  }

  // One escalation interval of breach-grade samples: shed level 1 — the
  // cheapest tier sheds, everyone else keeps full service.
  ForceBreach(4);
  const auto bronze_shed =
      Call(client, bronze_, api::HttpMethod::kPut, "/docs/b1", "x");
  EXPECT_EQ(bronze_shed.status, 429);
  EXPECT_EQ(bronze_shed.headers.Get("retry-after"), "7");
  EXPECT_EQ(Call(client, silver_, api::HttpMethod::kPut, "/docs/s1", "x")
                .status,
            201);
  EXPECT_EQ(Call(client, gold_, api::HttpMethod::kPut, "/docs/g1", "x")
                .status,
            201);

  // Still breached after shedding bronze: the next interval takes silver
  // too.  Gold — the top tier — is never shed, whatever the estimate does.
  ForceBreach(4);
  const auto silver_shed =
      Call(client, silver_, api::HttpMethod::kPut, "/docs/s2", "x");
  EXPECT_EQ(silver_shed.status, 429);
  EXPECT_EQ(silver_shed.headers.Get("retry-after"), "7");
  ForceBreach(16);  // keep breaching: there is no level above "all but top"
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(Call(client, gold_, api::HttpMethod::kPut,
                   "/docs/g-" + std::to_string(i), "x")
                  .status,
              201)
        << i;
  }

  // Every 429 carried Retry-After, and the server's throttle counter saw
  // each of them (two sheds above).
  const auto stats = admission_->Stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.shed_level, 2u);
  EXPECT_GE(stats.escalations, 2u);
  EXPECT_EQ(server_->stats().requests_throttled, 2u);

  const auto by_tenant = admission_->ShedByTenant();
  std::uint64_t bronze_count = 0, silver_count = 0, gold_count = 0;
  for (const auto& [tenant, count] : by_tenant) {
    if (tenant == "bronze") bronze_count = count;
    if (tenant == "silver") silver_count = count;
    if (tenant == "gold") gold_count = count;
  }
  EXPECT_EQ(bronze_count, 1u);
  EXPECT_EQ(silver_count, 1u);
  EXPECT_EQ(gold_count, 0u);
}

TEST(AdmissionRecoveryTest, RecoveryDeEscalatesInReverseOrder) {
  // Direct (no sockets) — the median-tracking configuration makes the
  // estimate follow injected recovery samples fast enough to watch the
  // levels unwind.
  AdmissionConfig config;
  config.slo_p99_ms = 1.0;
  config.quantile = 0.5;
  config.gain = 0.5;
  config.min_samples = 4;
  config.escalation_every_samples = 4;
  config.probe_every = 0;
  config.num_shards = 1;
  config.now_us = [] { return std::uint64_t{0}; };
  AdmissionController admission(config);
  admission.SetTenantValue("cheap", 1.0);
  admission.SetTenantValue("dear", 100.0);

  for (int i = 0; i < 8; ++i) admission.RecordLatencyOnShard(0, kBreachUs);
  EXPECT_EQ(admission.Stats().shed_level, 1u);
  EXPECT_FALSE(admission.Admit("cheap", "row").admit);
  EXPECT_TRUE(admission.Admit("dear", "row").admit);

  // Healthy samples decay the estimate below recover_fraction x target;
  // each escalation interval then unwinds one level.
  for (int i = 0; i < 64; ++i) admission.RecordLatencyOnShard(0, 10.0);
  const auto stats = admission.Stats();
  EXPECT_EQ(stats.shed_level, 0u);
  EXPECT_GE(stats.de_escalations, 1u);
  EXPECT_TRUE(admission.Admit("cheap", "row").admit);
}

TEST(AdmissionProbeTest, ProbeAdmissionsKeepTheSignalAlive) {
  AdmissionConfig config;
  config.slo_p99_ms = 1.0;
  config.gain = 0.5;
  config.min_samples = 4;
  config.escalation_every_samples = 4;
  config.probe_every = 3;  // every 3rd would-be shed admits as a probe
  config.num_shards = 1;
  config.now_us = [] { return std::uint64_t{0}; };
  AdmissionController admission(config);
  admission.SetTenantValue("cheap", 1.0);
  admission.SetTenantValue("dear", 100.0);
  for (int i = 0; i < 8; ++i) admission.RecordLatencyOnShard(0, kBreachUs);

  std::uint64_t admitted = 0;
  for (int i = 0; i < 30; ++i) {
    if (admission.Admit("cheap", "row").admit) ++admitted;
  }
  const auto stats = admission.Stats();
  EXPECT_GT(stats.probes, 0u);
  EXPECT_EQ(stats.probes, admitted);
  EXPECT_LT(admitted, 30u) << "probing must not defeat shedding";
}

}  // namespace
}  // namespace scalia::capacity
