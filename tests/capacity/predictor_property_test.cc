// Property tests for the load predictor and capacity controller
// (capacity/predictor.h): randomized-but-seeded ramp/spike/flat/noise
// sample streams, with the invariants every forecast must hold —
// finiteness, non-negativity, the observed-max clamp — plus the
// hysteresis guarantee that a constant-rate stream never makes the
// controller oscillate.
#include "capacity/predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace scalia::capacity {
namespace {

/// One seeded stream shape; rates are req/s.
std::vector<double> MakeStream(const std::string& shape, std::uint64_t seed,
                               std::size_t periods) {
  common::Xoshiro256 rng(seed);
  const auto uniform = [&rng](double lo, double hi) {
    const double u = static_cast<double>(rng()) /
                     static_cast<double>(common::Xoshiro256::max());
    return lo + u * (hi - lo);
  };
  std::vector<double> stream;
  stream.reserve(periods);
  const double base = uniform(100.0, 5000.0);
  for (std::size_t p = 0; p < periods; ++p) {
    double rate = base;
    if (shape == "ramp") {
      rate = base * (1.0 + 4.0 * static_cast<double>(p) /
                               static_cast<double>(periods));
    } else if (shape == "spike") {
      rate = (p == periods / 2) ? base * 20.0 : base;
    } else if (shape == "noise") {
      rate = base * uniform(0.2, 3.0);
    }  // "flat": base throughout
    stream.push_back(rate);
  }
  return stream;
}

TEST(PredictorPropertyTest, ForecastsFiniteNonNegativeAndClamped) {
  const std::vector<std::string> shapes = {"ramp", "spike", "flat", "noise"};
  for (const auto& shape : shapes) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      PredictorConfig config;
      config.max_forecast_multiple = 4.0;
      LoadPredictor predictor(config);
      for (const double rate : MakeStream(shape, seed, 64)) {
        const double forecast = predictor.Observe(rate);
        ASSERT_TRUE(std::isfinite(forecast))
            << shape << " seed=" << seed << " rate=" << rate;
        ASSERT_GE(forecast, 0.0) << shape << " seed=" << seed;
        ASSERT_LE(forecast,
                  config.max_forecast_multiple * predictor.observed_max())
            << shape << " seed=" << seed << " rate=" << rate;
      }
    }
  }
}

TEST(PredictorPropertyTest, TighterClampMultipleIsHonoured) {
  PredictorConfig config;
  config.max_forecast_multiple = 1.5;
  LoadPredictor predictor(config);
  // A steep ramp makes the momentum extrapolation want to overshoot; the
  // clamp must keep every forecast within 1.5x the largest observed rate.
  for (int p = 0; p < 40; ++p) {
    const double forecast = predictor.Observe(100.0 * (p + 1));
    ASSERT_LE(forecast, 1.5 * predictor.observed_max()) << "period " << p;
  }
}

TEST(PredictorPropertyTest, HostileSamplesAreSanitized) {
  LoadPredictor predictor;
  const double hostile[] = {-5.0, std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity()};
  for (const double rate : hostile) {
    const double forecast = predictor.Observe(rate);
    ASSERT_TRUE(std::isfinite(forecast)) << rate;
    ASSERT_GE(forecast, 0.0) << rate;
  }
  EXPECT_EQ(predictor.observed_max(), 0.0);
}

TEST(PredictorPropertyTest, ConstantRateStreamNeverOscillates) {
  // Hysteresis guarantee: once the controller has planned for a constant
  // rate, it emits no further scale events — ever.  The first few closes
  // may re-plan while the SMA warms up; after the trend window is full the
  // forecast is pinned and the plan must be too.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    common::Xoshiro256 rng(seed);
    const double rate =
        200.0 + static_cast<double>(rng() % 100000);  // 200..100200 req/s
    CapacityConfig config;
    config.rate_per_thread = 1000.0;
    CapacityController controller(config);
    const std::size_t warmup =
        config.predictor.trend.window + config.cooldown_periods + 2;
    for (std::size_t p = 0; p < warmup; ++p) controller.OnPeriodClose(rate);
    const std::uint64_t settled = controller.scale_events();
    for (std::size_t p = 0; p < 500; ++p) {
      ASSERT_FALSE(controller.OnPeriodClose(rate))
          << "seed=" << seed << " resize on constant rate at period " << p;
    }
    EXPECT_EQ(controller.scale_events(), settled) << "seed=" << seed;
  }
}

TEST(PredictorPropertyTest, PlansStayWithinConfiguredBounds) {
  CapacityConfig config;
  config.rate_per_thread = 500.0;
  config.min_threads = 2;
  config.max_threads = 8;
  config.min_cache_bytes = 32 * common::kMiB;
  config.max_cache_bytes = 128 * common::kMiB;
  CapacityController controller(config);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const auto& shape : {"ramp", "spike", "noise"}) {
      for (const double rate : MakeStream(shape, seed, 48)) {
        controller.OnPeriodClose(rate);
        const CapacityPlan& plan = controller.plan();
        ASSERT_GE(plan.pool_threads, config.min_threads);
        ASSERT_LE(plan.pool_threads, config.max_threads);
        ASSERT_GE(plan.cache_bytes, config.min_cache_bytes);
        ASSERT_LE(plan.cache_bytes, config.max_cache_bytes);
        ASSERT_GE(plan.optimize_every, config.min_optimize_every);
        ASSERT_LE(plan.optimize_every, config.max_optimize_every);
      }
    }
  }
}

TEST(PredictorPropertyTest, CooldownBoundsScaleEventRate) {
  // Even a worst-case alternating load cannot produce more than one scale
  // event per cooldown window.
  CapacityConfig config;
  config.rate_per_thread = 100.0;
  config.cooldown_periods = 4;
  CapacityController controller(config);
  constexpr std::size_t kPeriods = 200;
  for (std::size_t p = 0; p < kPeriods; ++p) {
    controller.OnPeriodClose(p % 2 == 0 ? 100.0 : 5000.0);
  }
  EXPECT_LE(controller.scale_events(), kPeriods / config.cooldown_periods + 1);
}

TEST(PredictorPropertyTest, RampForecastLeadsDemand) {
  // The point of the predictor: on a steady ramp the momentum term cancels
  // the moving average's lag, so the forecast never trails the rate just
  // observed (a plain SMA would) and strictly leads the trailing mean.
  PredictorConfig config;
  LoadPredictor predictor(config);
  std::vector<double> rates;
  double forecast = 0.0;
  for (int p = 0; p < 12; ++p) {
    rates.push_back(1000.0 + 500.0 * p);
    forecast = predictor.Observe(rates.back());
  }
  EXPECT_GE(forecast, rates.back());
  const std::size_t window = config.trend.window;
  double trailing_mean = 0.0;
  for (std::size_t i = rates.size() - window; i < rates.size(); ++i) {
    trailing_mean += rates[i];
  }
  trailing_mean /= static_cast<double>(window);
  EXPECT_GT(forecast, trailing_mean);
}

}  // namespace
}  // namespace scalia::capacity
