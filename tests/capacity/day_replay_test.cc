// Deterministic day-in-the-life replay (registered as smoke.day_replay):
// the compressed diurnal+flash schedule drives a live loopback server —
// net::HttpServer -> api::S3Gateway -> core::ShardedEngine — with every
// clock injected: the server's auth clock is an atomic the test advances
// one simulated hour per period, the admission controller's latency
// source is pinned, and the period boundary is a loop counter, so there
// is not one wall-clock sleep anywhere in the replay.
//
// Asserts the ISSUE's day-replay contract: SLO attainment >= floor, at
// least one scale event from the capacity controller, a real shed spell
// during the flash crowd, and — the invariant everything else exists to
// protect — every *acked* (non-429) write reads back byte-exact.
#include "capacity/day_schedule.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "api/auth.h"
#include "api/gateway.h"
#include "capacity/admission.h"
#include "capacity/predictor.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "core/sharded_engine.h"
#include "net/client.h"
#include "net/server/server.h"
#include "provider/spec.h"

namespace scalia::capacity {
namespace {

constexpr std::size_t kPeriods = 10;
constexpr double kSloP99Ms = 25.0;
constexpr double kAttainmentFloor = 0.9;
/// Peak admitted request rate the replay aims at, in requests per
/// (nominal, simulated) one-second period.
constexpr double kPeakRequests = 40.0;

std::string DeterministicBlob(std::size_t size, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string blob(size, '\0');
  for (auto& c : blob) c = static_cast<char>('a' + (rng() % 26));
  return blob;
}

class DayReplayTest : public ::testing::Test {
 protected:
  DayReplayTest() : pool_(1), sim_now_(1000) {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    core::ShardedEngineConfig config;
    config.num_shards = 2;
    engine_ = std::make_unique<core::ShardedEngine>(config, &registry_,
                                                    &pool_);
    for (const auto& creds : {bench_, platform_}) auth_.AddCredentials(creds);
    gateway_ = std::make_unique<api::S3Gateway>(
        &auth_, [this]() -> core::EngineApi& { return *engine_; });

    AdmissionConfig admission_config;
    admission_config.slo_p99_ms = kSloP99Ms;
    admission_config.gain = 0.5;
    admission_config.min_samples = 8;
    admission_config.escalation_every_samples = 8;
    admission_config.probe_every = 0;
    admission_config.num_shards = engine_->num_shards();
    admission_config.now_us = [] { return std::uint64_t{0}; };
    admission_ = std::make_unique<AdmissionController>(admission_config);
    admission_->SetTenantBudget("bench", common::Money(10.0));
    admission_->SetTenantBudget("platform", common::Money(1000.0));
    gateway_->SetAdmissionController(admission_.get());

    net::ServerConfig server_config;
    server_config.clock = [this] { return sim_now_.load(); };
    server_ = std::make_unique<net::HttpServer>(
        std::move(server_config),
        [this](common::SimTime now, const api::HttpRequest& request) {
          return gateway_->Handle(now, request);
        });
    EXPECT_TRUE(server_->Start().ok());
  }

  ~DayReplayTest() override { server_->Stop(); }

  api::HttpResponse Call(net::HttpClient& client,
                         const api::Credentials& creds,
                         api::HttpMethod method, const std::string& path,
                         std::string body = {}) {
    api::HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = std::move(body);
    request.query["nonce"] =
        std::to_string(nonce_.fetch_add(1, std::memory_order_relaxed));
    api::RequestSigner(creds).Sign(&request, sim_now_.load());
    auto response = client.RoundTrip(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : api::HttpResponse{};
  }

  const api::Credentials bench_{.access_key_id = "BENCH-1",
                                .secret = "s-bench",
                                .tenant = "bench"};
  const api::Credentials platform_{.access_key_id = "PLATFORM-1",
                                   .secret = "s-platform",
                                   .tenant = "platform"};
  provider::ProviderRegistry registry_;
  common::ThreadPool pool_;
  std::unique_ptr<core::ShardedEngine> engine_;
  api::Authenticator auth_;
  std::unique_ptr<api::S3Gateway> gateway_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<net::HttpServer> server_;
  std::atomic<common::SimTime> sim_now_;
  std::atomic<std::uint64_t> nonce_{0};
};

TEST_F(DayReplayTest, CompressedDayMeetsSloScalesAndLosesNoAckedWrite) {
  DayScheduleConfig schedule_config;
  schedule_config.periods = kPeriods;
  schedule_config.flash_start_period = 6;
  schedule_config.flash_periods = 2;
  const DaySchedule schedule = DaySchedule::Compressed(schedule_config);
  ASSERT_EQ(schedule.periods(), kPeriods);
  ASSERT_DOUBLE_EQ(schedule.PeakFraction(), 1.0);

  CapacityConfig capacity_config;
  capacity_config.rate_per_thread = 10.0;
  capacity_config.max_threads = 4;
  capacity_config.min_cache_bytes = 8 * common::kMiB;
  capacity_config.max_cache_bytes = 64 * common::kMiB;
  capacity_config.cooldown_periods = 1;
  CapacityController controller(capacity_config);

  SloTracker tracker(kPeriods, kSloP99Ms);
  net::HttpClient client("127.0.0.1", server_->port());
  struct AckedWrite {
    std::string body;
    const api::Credentials* creds;  // the tenant that owns the object
  };
  std::map<std::string, AckedWrite> acked;  // key -> acked (201) write
  std::uint64_t shed_429 = 0;
  std::size_t optimize_cadence = 1;
  std::size_t periods_since_optimize = 0;
  int key_index = 0;

  for (std::size_t period = 0; period < kPeriods; ++period) {
    const bool flash = period >= schedule_config.flash_start_period &&
                       period < schedule_config.flash_start_period +
                                    schedule_config.flash_periods;
    if (flash) {
      // The flash crowd's latency signature, injected deterministically:
      // breach-grade samples push the p99 estimate over the target, so the
      // controller starts shedding the low-value tenant mid-flash.
      for (int i = 0; i < 16; ++i) {
        admission_->RecordLatencyOnShard(0, 60'000.0);
      }
    }
    const auto period_requests = static_cast<int>(
        std::ceil(kPeakRequests * schedule.fractions()[period]));
    for (int r = 0; r < period_requests; ++r) {
      // 2:1 write:read mix; the platform tenant carries every 4th request.
      const bool platform_turn = r % 4 == 3;
      const api::Credentials& creds = platform_turn ? platform_ : bench_;
      if (r % 3 == 2 && !acked.empty()) {
        const auto& [key, write] = *acked.begin();
        const auto got =
            Call(client, *write.creds, api::HttpMethod::kGet, "/day/" + key);
        if (got.status == 429) {
          ++shed_429;
          EXPECT_FALSE(got.headers.Get("retry-after").empty());
          EXPECT_EQ(write.creds->tenant, "bench")
              << "the high-value tenant must never shed";
          tracker.Record(period, 0.0, /*shed=*/true);
        } else {
          ASSERT_EQ(got.status, 200) << key;
          ASSERT_EQ(got.body, write.body) << key;
          tracker.Record(period, 100.0, /*shed=*/false);
        }
        continue;
      }
      const std::string key = "obj-" + std::to_string(key_index++);
      const std::string blob =
          DeterministicBlob(2 * common::kKB,
                            static_cast<std::uint64_t>(key_index));
      const auto put =
          Call(client, creds, api::HttpMethod::kPut, "/day/" + key, blob);
      if (put.status == 429) {
        ++shed_429;
        EXPECT_FALSE(put.headers.Get("retry-after").empty());
        EXPECT_EQ(creds.tenant, "bench")
            << "the high-value tenant must never shed";
        tracker.Record(period, 0.0, /*shed=*/true);
      } else {
        ASSERT_EQ(put.status, 201) << key;
        acked[key] = {blob, &creds};
        tracker.Record(period, 100.0, /*shed=*/false);
      }
    }

    // Period boundary — exactly what the daemon's maintenance loop does,
    // minus the wall clock: observed rate in, capacity plan out.
    const double observed_rate = static_cast<double>(period_requests);
    if (controller.OnPeriodClose(observed_rate)) {
      const CapacityPlan& plan = controller.plan();
      pool_.Resize(plan.pool_threads);
      engine_->SetCacheCapacity(plan.cache_bytes);
      optimize_cadence = plan.optimize_every;
      EXPECT_EQ(pool_.num_threads(), plan.pool_threads);
    }
    engine_->EndSamplingPeriod(sim_now_.load());
    if (++periods_since_optimize >= optimize_cadence) {
      periods_since_optimize = 0;
      (void)engine_->RunOptimizationProcedure(sim_now_.load());
    }
    sim_now_.fetch_add(common::kHour);
  }

  // The ISSUE's day-replay contract.
  const auto report = tracker.Finish();
  EXPECT_GE(report.slo_attainment, kAttainmentFloor);
  EXPECT_GT(controller.scale_events(), 0u);
  EXPECT_GT(shed_429, 0u) << "the flash crowd must force a shed spell";
  EXPECT_EQ(report.total_shed, shed_429);
  EXPECT_GT(report.peak_period_requests, report.trough_period_requests);
  EXPECT_EQ(admission_->Stats().shed, shed_429);
  EXPECT_EQ(server_->stats().requests_throttled, shed_429);

  // Every acked write survives the whole day — resizes, optimizer rounds
  // and shed spells included — byte-exact.  (Admission detaches first: a
  // lingering shed level must not 429 the audit.)
  gateway_->SetAdmissionController(nullptr);
  ASSERT_FALSE(acked.empty());
  for (const auto& [key, write] : acked) {
    const auto got =
        Call(client, *write.creds, api::HttpMethod::kGet, "/day/" + key);
    ASSERT_EQ(got.status, 200) << key;
    ASSERT_EQ(got.body, write.body) << key;
  }
}

TEST(DayScheduleTest, CompressedScheduleShapeIsSane) {
  const DaySchedule schedule = DaySchedule::Compressed();
  ASSERT_EQ(schedule.periods(), 24u);
  EXPECT_DOUBLE_EQ(schedule.PeakFraction(), 1.0);
  for (const double f : schedule.fractions()) {
    EXPECT_GE(f, 0.05);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_FALSE(schedule.ToString().empty());
}

TEST(SloTrackerTest, AttainmentCountsOnlyBreachedPeriods) {
  SloTracker tracker(4, /*slo_p99_ms=*/1.0);
  for (int i = 0; i < 10; ++i) tracker.Record(0, 100.0, false);   // meets
  for (int i = 0; i < 10; ++i) tracker.Record(1, 5'000.0, false);  // breaches
  for (int i = 0; i < 10; ++i) tracker.Record(2, 200.0, false);   // meets
  // Period 3 stays empty: it must not count against attainment.
  const auto report = tracker.Finish();
  EXPECT_NEAR(report.slo_attainment, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(report.total_requests, 30u);
  EXPECT_EQ(report.peak_period_requests, 10u);
}

}  // namespace
}  // namespace scalia::capacity
