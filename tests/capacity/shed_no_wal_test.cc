// Regression for the shed-before-engine invariant: a request answered 429
// by the admission controller must leave *no* trace below the gateway —
// no WAL journal record or fsync, no provider usage-meter movement, no
// statistics-database entry.  The gateway enforces this by construction
// (S3Gateway::Admitted sheds before dispatch); this test pins the
// behaviour against a durability-enabled sharded engine so a future
// reordering of the hot path fails loudly.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "api/auth.h"
#include "api/gateway.h"
#include "capacity/admission.h"
#include "common/money.h"
#include "core/sharded_engine.h"
#include "durability/sharded_manager.h"
#include "provider/spec.h"

namespace scalia::capacity {
namespace {

namespace fs = std::filesystem;

constexpr common::SimTime kNow = 1000;
constexpr std::size_t kShards = 2;

class ShedNoWalTest : public ::testing::Test {
 protected:
  ShedNoWalTest() {
    dir_ = (fs::path(::testing::TempDir()) / "shed_no_wal_test").string();
    fs::remove_all(dir_);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    core::ShardedEngineConfig config;
    config.num_shards = kShards;
    engine_ = std::make_unique<core::ShardedEngine>(config, &registry_,
                                                    nullptr);

    durability::ShardedDurabilityConfig durability_config;
    durability_config.dir = dir_;
    durability_config.num_shards = kShards;
    durability_config.wal.sync_on_commit = true;  // fsyncs() must count
    durability_config.group_commit = false;
    std::vector<durability::EngineStateRefs> state(kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
      state[s] = {.db = &engine_->shard_store(s),
                  .dc = 0,
                  .stats = &engine_->shard_stats(s),
                  .registry = nullptr,
                  .sweep_registry = &registry_};
    }
    auto opened = durability::ShardedDurabilityManager::Open(
        std::move(durability_config), std::move(state));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    durability_ = std::move(*opened);
    engine_->AttachJournals(durability_->journals());

    auth_.AddCredentials(creds_);
    gateway_ = std::make_unique<api::S3Gateway>(
        &auth_, [this]() -> core::EngineApi& { return *engine_; });

    AdmissionConfig admission_config;
    admission_config.slo_p99_ms = 1.0;
    admission_config.gain = 0.5;
    admission_config.min_samples = 4;
    admission_config.escalation_every_samples = 4;
    admission_config.probe_every = 0;
    admission_config.num_shards = kShards;
    admission_config.now_us = [] { return std::uint64_t{0}; };
    admission_ = std::make_unique<AdmissionController>(admission_config);
    admission_->SetTenantBudget("acme", common::Money(10.0));
    admission_->SetTenantBudget("vip", common::Money(1000.0));
    gateway_->SetAdmissionController(admission_.get());
  }

  ~ShedNoWalTest() override {
    durability_.reset();
    fs::remove_all(dir_);
  }

  api::HttpResponse Call(api::HttpMethod method, const std::string& path,
                         std::string body = {}) {
    api::HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = std::move(body);
    request.query["nonce"] = std::to_string(nonce_++);
    api::RequestSigner(creds_).Sign(&request, kNow);
    return gateway_->Handle(kNow, request);
  }

  [[nodiscard]] std::uint64_t TotalFsyncs() const {
    std::uint64_t total = 0;
    for (const auto* journal : durability_->journals()) {
      total += journal->wal()->fsyncs();
    }
    return total;
  }

  /// Summed provider usage (ops + transfer volumes) across the catalog —
  /// what a shed request must not move.
  [[nodiscard]] provider::PeriodUsage TotalUsage() {
    provider::PeriodUsage total;
    for (const auto& spec : registry_.Specs()) {
      total += registry_.Find(spec.id)->meter().Totals(kNow);
    }
    return total;
  }

  const api::Credentials creds_{.access_key_id = "ACME-1",
                                .secret = "acme-secret",
                                .tenant = "acme"};
  std::string dir_;
  provider::ProviderRegistry registry_;
  std::unique_ptr<core::ShardedEngine> engine_;
  std::unique_ptr<durability::ShardedDurabilityManager> durability_;
  api::Authenticator auth_;
  std::unique_ptr<api::S3Gateway> gateway_;
  std::unique_ptr<AdmissionController> admission_;
  std::uint64_t nonce_ = 0;
};

TEST_F(ShedNoWalTest, A429LeavesNoWalStatsOrUsageTrace) {
  // Healthy baseline: an admitted PUT journals and meters as usual.
  ASSERT_EQ(Call(api::HttpMethod::kPut, "/docs/seed", "payload").status, 201);
  const std::uint64_t fsyncs_after_seed = TotalFsyncs();
  EXPECT_GT(fsyncs_after_seed, 0u)
      << "baseline PUT must fsync, or the unchanged-counter assertions "
         "below are vacuous";
  const provider::PeriodUsage usage_after_seed = TotalUsage();
  EXPECT_GT(usage_after_seed.ops, 0.0);

  // Force the breach: the acme tenant (the only tier below "vip") sheds.
  for (int i = 0; i < 8; ++i) {
    admission_->RecordLatencyOnShard(0, 50'000.0);
  }
  const std::uint64_t fsyncs_before_burst = TotalFsyncs();
  const provider::PeriodUsage usage_before_burst = TotalUsage();
  const std::size_t objects_before_burst = engine_->ObjectCount();

  // A burst of writes, reads and deletes — every one must answer 429 with
  // Retry-After, and none may reach the WAL, the meters or the stats dbs.
  constexpr int kBurst = 20;
  for (int i = 0; i < kBurst; ++i) {
    const std::string key = "/docs/shed-" + std::to_string(i);
    const auto put = Call(api::HttpMethod::kPut, key, "shed-me");
    ASSERT_EQ(put.status, 429) << i;
    EXPECT_FALSE(put.headers.Get("retry-after").empty()) << i;
    ASSERT_EQ(Call(api::HttpMethod::kGet, key).status, 429) << i;
    ASSERT_EQ(Call(api::HttpMethod::kDelete, key).status, 429) << i;
  }

  EXPECT_EQ(TotalFsyncs(), fsyncs_before_burst)
      << "shed requests journaled to the WAL";
  const provider::PeriodUsage usage_after_burst = TotalUsage();
  EXPECT_EQ(usage_after_burst.ops, usage_before_burst.ops)
      << "shed requests moved the provider ops meters";
  EXPECT_EQ(usage_after_burst.bw_in_gb, usage_before_burst.bw_in_gb);
  EXPECT_EQ(usage_after_burst.bw_out_gb, usage_before_burst.bw_out_gb);
  EXPECT_EQ(engine_->ObjectCount(), objects_before_burst)
      << "shed PUTs created objects";
  EXPECT_EQ(admission_->Stats().shed, static_cast<std::uint64_t>(3 * kBurst));

  // The seed object is untouched by the whole episode.
  gateway_->SetAdmissionController(nullptr);
  const auto got = Call(api::HttpMethod::kGet, "/docs/seed");
  ASSERT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "payload");
}

}  // namespace
}  // namespace scalia::capacity
