// Writers-vs-resize races, written for TSan (verify.sh --tsan selects
// suites named *Race*): the capacity controller resizes the chunk-I/O
// ThreadPool, rebudgets the LruCache and consults the admission
// controller while the serving path hammers all three from other threads.
// The assertions are liveness/accounting (no lost task, no lost sample);
// the sanitizer provides the data-race verdict.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "cache/lru_cache.h"
#include "capacity/admission.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace scalia::capacity {
namespace {

TEST(PoolResizeRaceTest, SubmittersVsResizeLoseNoTask) {
  common::ThreadPool pool(2);
  constexpr int kWriters = 4;
  constexpr int kTasksPerWriter = 500;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<bool> stop_resizing{false};

  std::thread resizer([&] {
    std::size_t next = 1;
    while (!stop_resizing.load(std::memory_order_relaxed)) {
      pool.Resize(next);
      next = next % 8 + 1;  // cycle 1..8
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerWriter);
      for (int t = 0; t < kTasksPerWriter; ++t) {
        futures.push_back(pool.Submit(
            [&executed] { executed.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& fut : futures) fut.get();
    });
  }
  for (auto& writer : writers) writer.join();
  stop_resizing.store(true, std::memory_order_relaxed);
  resizer.join();

  EXPECT_EQ(executed.load(), static_cast<std::uint64_t>(kWriters) *
                                 kTasksPerWriter);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(PoolResizeRaceTest, ParallelForVsResizeRunsEveryIteration) {
  common::ThreadPool pool(4);
  std::atomic<bool> stop_resizing{false};
  std::thread resizer([&] {
    bool big = false;
    while (!stop_resizing.load(std::memory_order_relaxed)) {
      pool.Resize(big ? 6 : 1);
      big = !big;
    }
  });

  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> ran{0};
    pool.ParallelFor(64, [&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ran.load(), 64u) << "round " << round;
  }
  stop_resizing.store(true, std::memory_order_relaxed);
  resizer.join();
}

TEST(CacheResizeRaceTest, PutGetVsSetCapacityStaysBounded) {
  cache::LruCache cache(4 * common::kMiB, /*shards=*/4);
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 2000;
  std::atomic<bool> stop_resizing{false};

  std::thread resizer([&] {
    bool big = false;
    while (!stop_resizing.load(std::memory_order_relaxed)) {
      cache.SetCapacity(big ? 8 * common::kMiB : 512 * common::kKB);
      big = !big;
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&cache, w] {
      const std::string value(4 * common::kKB, 'v');
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key =
            "k-" + std::to_string(w) + "-" + std::to_string(i % 64);
        cache.Put(key, value);
        (void)cache.Get(key);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop_resizing.store(true, std::memory_order_relaxed);
  resizer.join();

  // Once the dust settles, one more rebudget must leave the cache within
  // its (new) bound — whatever interleaving the race produced.
  cache.SetCapacity(1 * common::kMiB);
  EXPECT_LE(cache.SizeBytes(), cache.CapacityBytes());
  EXPECT_EQ(cache.CapacityBytes(), 1 * common::kMiB);
}

TEST(AdmissionRaceTest, ConcurrentAdmitAndRecordLoseNoSample) {
  AdmissionConfig config;
  config.slo_p99_ms = 1.0;
  config.gain = 0.5;
  config.min_samples = 16;
  config.escalation_every_samples = 64;
  config.probe_every = 4;
  config.num_shards = 4;
  config.now_us = [] { return std::uint64_t{0}; };
  AdmissionController admission(config);
  admission.SetTenantValue("cheap", 1.0);
  admission.SetTenantValue("dear", 100.0);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&admission, t] {
      const std::string tenant = t % 2 == 0 ? "cheap" : "dear";
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string row_key = "row-" + std::to_string(i % 37);
        if (admission.Admit(tenant, row_key).admit) {
          admission.RecordLatency(row_key, i % 3 == 0 ? 30'000.0 : 50.0);
        }
        (void)admission.Stats();
        (void)admission.ShardP99Us(admission.ShardOf(row_key));
      }
    });
  }
  for (auto& worker : workers) worker.join();

  const auto stats = admission.Stats();
  EXPECT_EQ(stats.admitted + stats.shed,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace scalia::capacity
