// CDN thread-safety: concurrent gets, fills and purges across regions must
// neither crash nor corrupt bodies (each key's body is a pure function of
// the key here, so any mixed-up cache entry is detectable).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cache/cdn.h"

namespace scalia::cache {
namespace {

TEST(CdnConcurrencyTest, HammeredGetsAndPurgesStayConsistent) {
  Cdn cdn(CdnConfig{.edge_capacity = 64 * common::kKiB,
                    .ttl = 0,
                    .edge_rtt_ms = 1.0},
          [](net::Region, const std::string& key) {
            return Cdn::OriginReply{.body = "body:" + key,
                                    .latency_ms = 2.0};
          });

  std::atomic<int> mismatches{0};
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 3000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const net::Region region =
          net::kAllRegions[static_cast<std::size_t>(t) % 3];
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 31 + i) % 64);
        if (i % 97 == 0) {
          cdn.Purge(key);
          continue;
        }
        const CdnFetch fetch = cdn.Get(
            static_cast<common::SimTime>(i), region, key);
        if (!fetch.found || fetch.body != "body:" + key) ++mismatches;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  const CdnStats total = cdn.TotalStats();
  EXPECT_GT(total.edge_hits, 0u);
  EXPECT_GT(total.edge_misses, 0u);
}

TEST(CdnConcurrencyTest, EvictionUnderConcurrentPressureRespectsCapacity) {
  EdgeCache edge(8 * common::kKiB, /*ttl=*/0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        edge.Fill(i, "k" + std::to_string(t * 2000 + i),
                  std::string(512, 'x'));
        (void)edge.Get(i, "k" + std::to_string(i % 100));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(edge.SizeBytes(), 8 * common::kKiB);
  EXPECT_GT(edge.Stats().evictions, 0u);
}

}  // namespace
}  // namespace scalia::cache
