#include "cache/cdn.h"

#include <gtest/gtest.h>

#include <atomic>

namespace scalia::cache {
namespace {

using common::kHour;
using net::Region;

CdnConfig SmallConfig() {
  return CdnConfig{.edge_capacity = 1000,
                   .ttl = kHour,
                   .edge_rtt_ms = 8.0};
}

TEST(EdgeCacheTest, FillGetPurge) {
  EdgeCache edge(1000, kHour);
  EXPECT_FALSE(edge.Get(0, "k").has_value());
  edge.Fill(0, "k", "body");
  auto got = edge.Get(1, "k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "body");
  edge.Purge("k");
  EXPECT_FALSE(edge.Get(2, "k").has_value());
  EXPECT_EQ(edge.Stats().purges, 1u);
}

TEST(EdgeCacheTest, TtlExpiryCountsAndDrops) {
  EdgeCache edge(1000, kHour);
  edge.Fill(0, "k", "body");
  EXPECT_TRUE(edge.Get(kHour - 1, "k").has_value());
  EXPECT_FALSE(edge.Get(kHour, "k").has_value());  // expired exactly at TTL
  EXPECT_EQ(edge.Stats().expirations, 1u);
  EXPECT_EQ(edge.EntryCount(), 0u);
}

TEST(EdgeCacheTest, ZeroTtlNeverExpires) {
  EdgeCache edge(1000, /*ttl=*/0);
  edge.Fill(0, "k", "body");
  EXPECT_TRUE(edge.Get(1000 * kHour, "k").has_value());
}

TEST(EdgeCacheTest, LruEvictionUnderCapacity) {
  EdgeCache edge(10, /*ttl=*/0);
  edge.Fill(0, "a", "11111");  // 5 bytes
  edge.Fill(0, "b", "22222");  // 5 bytes, at capacity
  ASSERT_TRUE(edge.Get(1, "a").has_value());  // touch a => b is LRU
  edge.Fill(1, "c", "33333");
  EXPECT_TRUE(edge.Get(2, "a").has_value());
  EXPECT_FALSE(edge.Get(2, "b").has_value()) << "LRU victim";
  EXPECT_TRUE(edge.Get(2, "c").has_value());
  EXPECT_EQ(edge.Stats().evictions, 1u);
  EXPECT_LE(edge.SizeBytes(), 10u);
}

TEST(EdgeCacheTest, OversizedBodyNotCached) {
  EdgeCache edge(10, /*ttl=*/0);
  edge.Fill(0, "big", std::string(11, 'x'));
  EXPECT_FALSE(edge.Get(0, "big").has_value());
  EXPECT_EQ(edge.EntryCount(), 0u);
}

TEST(EdgeCacheTest, RefillUpdatesBodyAndTimestamp) {
  EdgeCache edge(1000, kHour);
  edge.Fill(0, "k", "v1");
  edge.Fill(kHour / 2, "k", "v2");
  auto got = edge.Get(kHour + kHour / 4, "k");  // fresh relative to refill
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v2");
}

TEST(CdnTest, MissFillsEdgeThenHits) {
  std::atomic<int> origin_calls{0};
  Cdn cdn(SmallConfig(), [&](Region, const std::string& key) {
    ++origin_calls;
    return Cdn::OriginReply{.body = "body-of-" + key, .latency_ms = 100.0};
  });

  auto first = cdn.Get(0, Region::kEurope, "k");
  EXPECT_TRUE(first.found);
  EXPECT_FALSE(first.edge_hit);
  EXPECT_DOUBLE_EQ(first.latency_ms, 108.0);  // edge RTT + origin
  EXPECT_EQ(first.body, "body-of-k");
  EXPECT_EQ(origin_calls.load(), 1);

  auto second = cdn.Get(1, Region::kEurope, "k");
  EXPECT_TRUE(second.edge_hit);
  EXPECT_DOUBLE_EQ(second.latency_ms, 8.0);
  EXPECT_EQ(second.body, "body-of-k");
  EXPECT_EQ(origin_calls.load(), 1) << "served from the edge";
}

TEST(CdnTest, EdgesAreRegional) {
  std::atomic<int> origin_calls{0};
  Cdn cdn(SmallConfig(), [&](Region, const std::string&) {
    ++origin_calls;
    return Cdn::OriginReply{.body = "b", .latency_ms = 50.0};
  });
  (void)cdn.Get(0, Region::kEurope, "k");
  EXPECT_EQ(origin_calls.load(), 1);
  // A different region's edge is cold: the origin is hit again.
  (void)cdn.Get(0, Region::kAsia, "k");
  EXPECT_EQ(origin_calls.load(), 2);
  // Both edges now serve locally.
  EXPECT_TRUE(cdn.Get(1, Region::kEurope, "k").edge_hit);
  EXPECT_TRUE(cdn.Get(1, Region::kAsia, "k").edge_hit);
  EXPECT_EQ(origin_calls.load(), 2);
}

TEST(CdnTest, MissingObjectIsNotCached) {
  Cdn cdn(SmallConfig(), [](Region, const std::string&) {
    return Cdn::OriginReply{.body = std::nullopt, .latency_ms = 40.0};
  });
  auto fetch = cdn.Get(0, Region::kEurope, "ghost");
  EXPECT_FALSE(fetch.found);
  EXPECT_FALSE(fetch.edge_hit);
  EXPECT_DOUBLE_EQ(fetch.latency_ms, 48.0);
  EXPECT_EQ(cdn.EdgeFor(Region::kEurope).EntryCount(), 0u);
}

TEST(CdnTest, PurgeInvalidatesEveryEdge) {
  std::atomic<int> origin_calls{0};
  Cdn cdn(SmallConfig(), [&](Region, const std::string&) {
    ++origin_calls;
    return Cdn::OriginReply{.body = "b", .latency_ms = 50.0};
  });
  (void)cdn.Get(0, Region::kEurope, "k");
  (void)cdn.Get(0, Region::kNorthAmerica, "k");
  EXPECT_EQ(origin_calls.load(), 2);

  cdn.Purge("k");  // the write path: content changed

  EXPECT_FALSE(cdn.Get(1, Region::kEurope, "k").edge_hit);
  EXPECT_FALSE(cdn.Get(1, Region::kNorthAmerica, "k").edge_hit);
  EXPECT_EQ(origin_calls.load(), 4);
}

TEST(CdnTest, StatsAggregateAcrossEdges) {
  Cdn cdn(SmallConfig(), [](Region, const std::string&) {
    return Cdn::OriginReply{.body = "b", .latency_ms = 50.0};
  });
  (void)cdn.Get(0, Region::kEurope, "a");   // miss
  (void)cdn.Get(0, Region::kEurope, "a");   // hit
  (void)cdn.Get(0, Region::kAsia, "a");     // miss
  const CdnStats total = cdn.TotalStats();
  EXPECT_EQ(total.edge_hits, 1u);
  EXPECT_EQ(total.edge_misses, 2u);
  EXPECT_NEAR(total.HitRate(), 1.0 / 3.0, 1e-12);
}

TEST(CdnTest, PurgeAllClearsEverything) {
  Cdn cdn(SmallConfig(), [](Region, const std::string&) {
    return Cdn::OriginReply{.body = "b", .latency_ms = 1.0};
  });
  (void)cdn.Get(0, Region::kEurope, "a");
  (void)cdn.Get(0, Region::kAsia, "b");
  cdn.PurgeAll();
  for (Region r : net::kAllRegions) {
    EXPECT_EQ(cdn.EdgeFor(r).EntryCount(), 0u);
  }
}

}  // namespace
}  // namespace scalia::cache
