#include <gtest/gtest.h>

#include "cache/cache_layer.h"
#include "cache/lru_cache.h"

namespace scalia::cache {
namespace {

TEST(LruCacheTest, HitAndMiss) {
  LruCache cache(1 * common::kMiB, 1);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", "value");
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value");
  const auto stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(LruCacheTest, OverwriteUpdatesValueAndBytes) {
  LruCache cache(1 * common::kMiB, 1);
  cache.Put("a", "12345678");
  cache.Put("a", "123");
  EXPECT_EQ(*cache.Get("a"), "123");
  EXPECT_EQ(cache.SizeBytes(), 3u);
  EXPECT_EQ(cache.EntryCount(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(10, 1);  // ten bytes, single shard
  cache.Put("a", "1234");
  cache.Put("b", "1234");
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_TRUE(cache.Get("a").has_value());
  cache.Put("c", "1234");  // exceeds capacity -> evict "b"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_GE(cache.Stats().evictions, 1u);
}

TEST(LruCacheTest, OversizedValueNotCached) {
  LruCache cache(8, 1);
  cache.Put("big", "123456789");  // larger than the whole cache
  EXPECT_FALSE(cache.Get("big").has_value());
  EXPECT_EQ(cache.SizeBytes(), 0u);
}

TEST(LruCacheTest, InvalidateRemoves) {
  LruCache cache(1 * common::kMiB);
  cache.Put("a", "v");
  cache.Invalidate("a");
  EXPECT_FALSE(cache.Get("a").has_value());
  EXPECT_EQ(cache.Stats().invalidations, 1u);
  cache.Invalidate("absent");  // idempotent
}

TEST(LruCacheTest, ClearEmptiesEverything) {
  LruCache cache(1 * common::kMiB);
  for (int i = 0; i < 50; ++i) cache.Put("k" + std::to_string(i), "v");
  cache.Clear();
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_EQ(cache.SizeBytes(), 0u);
}

TEST(LruCacheTest, ShardedCapacityRoughlyBounded) {
  LruCache cache(1000, 4);
  for (int i = 0; i < 100; ++i) {
    cache.Put("key" + std::to_string(i), std::string(100, 'x'));
  }
  // Each of the 4 shards is capped at 250 bytes => at most 2 entries each.
  EXPECT_LE(cache.EntryCount(), 8u);
  EXPECT_LE(cache.SizeBytes(), 1000u);
}

TEST(CacheLayerTest, CrossDatacenterInvalidation) {
  // §III-B: "the cache has to be invalidated in all datacenters".
  InvalidationBus bus;
  CacheLayer dc0(1 * common::kMiB, &bus);
  CacheLayer dc1(1 * common::kMiB, &bus);
  dc0.Fill("obj", "v0");
  dc1.Fill("obj", "v0");

  dc0.InvalidateEverywhere("obj");
  EXPECT_FALSE(dc0.Get("obj").has_value());
  EXPECT_FALSE(dc1.Get("obj").has_value());
}

TEST(CacheLayerTest, FillAndLocalGet) {
  CacheLayer layer(1 * common::kMiB, nullptr);
  layer.Fill("k", "v");
  EXPECT_EQ(*layer.Get("k"), "v");
  layer.InvalidateEverywhere("k");  // no bus: local invalidation
  EXPECT_FALSE(layer.Get("k").has_value());
}

TEST(CacheStatsTest, Accumulate) {
  CacheStats a{.hits = 1, .misses = 2, .insertions = 3, .evictions = 4,
               .invalidations = 5};
  CacheStats b = a;
  a += b;
  EXPECT_EQ(a.hits, 2u);
  EXPECT_EQ(a.misses, 4u);
  EXPECT_EQ(a.insertions, 6u);
  EXPECT_EQ(a.evictions, 8u);
  EXPECT_EQ(a.invalidations, 10u);
  EXPECT_DOUBLE_EQ(CacheStats{}.HitRate(), 0.0);
}

}  // namespace
}  // namespace scalia::cache
