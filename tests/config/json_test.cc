#include "config/json.h"

#include <gtest/gtest.h>

#include <string>

namespace scalia::config {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("0")->AsNumber(), 0.0);
  EXPECT_DOUBLE_EQ(ParseJson("-12.5")->AsNumber(), -12.5);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseJson("2.5E-2")->AsNumber(), 0.025);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = ParseJson("  \t\n { \"a\" : [ 1 , 2 ] } \r\n ");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->AsObject().Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->AsArray().size(), 2u);
}

TEST(JsonParseTest, NestedStructures) {
  auto v = ParseJson(R"({"a": {"b": [1, {"c": "d"}]}, "e": null})");
  ASSERT_TRUE(v.ok());
  const JsonValue* a = v->AsObject().Find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* b = a->AsObject().Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(b->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(b->AsArray()[1].AsObject().Find("c")->AsString(), "d");
  EXPECT_TRUE(v->AsObject().Find("e")->is_null());
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParseTest, UnicodeEscapes) {
  // U+00E9 (é), U+20AC (€), and a surrogate pair for U+1F600.
  EXPECT_EQ(ParseJson(R"("é")")->AsString(), "\xC3\xA9");
  EXPECT_EQ(ParseJson(R"("€")")->AsString(), "\xE2\x82\xAC");
  EXPECT_EQ(ParseJson(R"("😀")")->AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsUnpairedSurrogates) {
  EXPECT_FALSE(ParseJson(R"("\uD83D")").ok());
  EXPECT_FALSE(ParseJson(R"("\uDE00")").ok());
  EXPECT_FALSE(ParseJson(R"("\uD83Dxx")").ok());
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",           "{",          "[1,",       "{\"a\":}",   "{\"a\" 1}",
      "[1 2]",      "tru",        "nulll",     "01",         "1.",
      "1e",         "+1",         "\"unterminated", "{\"a\":1,}",
      "[1,2,]",     "\"\\x\"",    "{'a':1}",   "[1] trailing",
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(ParseJson(doc).ok()) << "should reject: " << doc;
  }
}

TEST(JsonParseTest, RejectsRawControlCharactersInStrings) {
  std::string doc = "\"a\nb\"";
  EXPECT_FALSE(ParseJson(doc).ok());
}

TEST(JsonParseTest, DepthGuardStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string shallow(50, '[');
  shallow += std::string(50, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonParseTest, ErrorsCarryByteOffset) {
  auto v = ParseJson("{\"a\" 1}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("offset 5"), std::string::npos)
      << v.status().message();
}

TEST(JsonParseTest, DuplicateKeysLastWins) {
  auto v = ParseJson(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsObject().size(), 1u);
  EXPECT_DOUBLE_EQ(v->AsObject().Find("a")->AsNumber(), 2.0);
}

TEST(JsonDumpTest, CompactAndPretty) {
  JsonObject obj;
  obj.Set("b", 1);
  obj.Set("a", JsonArray{JsonValue(true), JsonValue(nullptr)});
  const JsonValue v(std::move(obj));
  EXPECT_EQ(v.Dump(), R"({"b":1,"a":[true,null]})");
  EXPECT_EQ(v.Dump(2),
            "{\n  \"b\": 1,\n  \"a\": [\n    true,\n    null\n  ]\n}");
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(40000000000.0).Dump(), "40000000000");
  EXPECT_EQ(JsonValue(2.5).Dump(), "2.5");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd\x01").Dump(),
            "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonDumpTest, InsertionOrderPreserved) {
  JsonObject obj;
  obj.Set("z", 1);
  obj.Set("a", 2);
  obj.Set("m", 3);
  obj.Set("a", 4);  // overwrite keeps position
  EXPECT_EQ(JsonValue(std::move(obj)).Dump(), R"({"z":1,"a":4,"m":3})");
}

TEST(JsonRoundTripTest, ParseDumpParseIsStable) {
  const char* docs[] = {
      R"json({"providers":[{"id":"S3(h)","durability":0.99999999999}]})json",
      R"json([1,2.5,-3,"x",true,null,{"nested":[[]]}])json",
      R"json({"unicode":"héllo €","esc":"line\nbreak"})json",
  };
  for (const char* doc : docs) {
    auto first = ParseJson(doc);
    ASSERT_TRUE(first.ok()) << doc;
    const std::string dumped = first->Dump();
    auto second = ParseJson(dumped);
    ASSERT_TRUE(second.ok()) << dumped;
    EXPECT_EQ(second->Dump(), dumped) << doc;
  }
}

TEST(JsonValueTest, TypedExtractionReportsTypeErrors) {
  const JsonValue v(42);
  EXPECT_TRUE(v.GetNumber().ok());
  EXPECT_FALSE(v.GetString().ok());
  EXPECT_FALSE(v.GetBool().ok());
  EXPECT_FALSE(v.GetMember("x").ok());

  auto obj = ParseJson(R"({"a": 1})");
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->GetMember("a").ok());
  auto missing = obj->GetMember("b");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);
}

TEST(JsonFileTest, MissingFileIsNotFound) {
  auto v = ParseJsonFile("/nonexistent/path/config.json");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), common::StatusCode::kNotFound);
}

}  // namespace
}  // namespace scalia::config
