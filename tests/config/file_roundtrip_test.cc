// File-based configuration round trips: write a catalog/rules document to
// disk, load it back through the file APIs, and compare.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "config/loaders.h"
#include "provider/spec.h"

namespace scalia::config {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = std::string(::testing::TempDir()) + "scalia_cfg_" +
            std::to_string(counter_++) + ".json";
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(FileRoundTripTest, CatalogThroughDisk) {
  auto catalog = provider::PaperCatalog();
  catalog.push_back(provider::CheapStorSpec());
  const TempFile file(CatalogToJson(catalog).Dump(2));

  auto loaded = LoadCatalogFromFile(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, catalog[i].id);
    EXPECT_EQ((*loaded)[i].pricing, catalog[i].pricing);
    EXPECT_EQ((*loaded)[i].zones, catalog[i].zones);
  }
}

TEST(FileRoundTripTest, MalformedFileReportsParseError) {
  const TempFile file("{ not json ]");
  auto loaded = LoadCatalogFromFile(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(FileRoundTripTest, ValidJsonWrongShapeReportsLoaderError) {
  const TempFile file(R"({"not_providers": []})");
  auto loaded = LoadCatalogFromFile(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kNotFound);
}

TEST(FileRoundTripTest, PrettyAndCompactDumpsLoadIdentically) {
  const auto catalog = provider::PaperCatalog();
  const TempFile pretty(CatalogToJson(catalog).Dump(4));
  const TempFile compact(CatalogToJson(catalog).Dump());
  auto a = LoadCatalogFromFile(pretty.path());
  auto b = LoadCatalogFromFile(compact.path());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].id, (*b)[i].id);
    EXPECT_EQ((*a)[i].pricing, (*b)[i].pricing);
  }
}

}  // namespace
}  // namespace scalia::config
