#include "config/loaders.h"

#include <gtest/gtest.h>

#include "provider/spec.h"

namespace scalia::config {
namespace {

using provider::Zone;

constexpr const char* kCatalogDoc = R"json({
  "providers": [
    {
      "id": "S3(h)", "description": "Amazon S3 (High)",
      "durability": 0.99999999999, "availability": 0.999,
      "zones": ["EU", "US", "APAC"],
      "storage_gb_month": 0.14, "bw_in_gb": 0.1, "bw_out_gb": 0.15,
      "ops_per_1000": 0.01
    },
    {
      "id": "NAS-1", "description": "Basement NAS",
      "durability": 0.9999, "availability": 0.995,
      "zones": ["OnPrem"],
      "storage_gb_month": 0.02, "bw_in_gb": 0.0, "bw_out_gb": 0.0,
      "ops_per_1000": 0.0,
      "read_latency_ms": 4.5,
      "max_chunk_size": 1000000,
      "capacity": 2000000000000
    }
  ]
})json";

TEST(CatalogLoaderTest, LoadsFullCatalog) {
  auto catalog = LoadCatalogFromText(kCatalogDoc);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  ASSERT_EQ(catalog->size(), 2u);

  const auto& s3 = (*catalog)[0];
  EXPECT_EQ(s3.id, "S3(h)");
  EXPECT_DOUBLE_EQ(s3.sla.durability, 0.99999999999);
  EXPECT_DOUBLE_EQ(s3.sla.availability, 0.999);
  EXPECT_TRUE(s3.zones.Contains(Zone::kEU));
  EXPECT_TRUE(s3.zones.Contains(Zone::kAPAC));
  EXPECT_FALSE(s3.zones.Contains(Zone::kOnPrem));
  EXPECT_DOUBLE_EQ(s3.pricing.storage_gb_month, 0.14);
  EXPECT_DOUBLE_EQ(s3.pricing.ops_per_1000, 0.01);
  EXPECT_FALSE(s3.max_chunk_size.has_value());
  EXPECT_FALSE(s3.capacity.has_value());

  const auto& nas = (*catalog)[1];
  EXPECT_TRUE(nas.is_private());
  EXPECT_DOUBLE_EQ(nas.read_latency_ms, 4.5);
  ASSERT_TRUE(nas.max_chunk_size.has_value());
  EXPECT_EQ(*nas.max_chunk_size, 1000000u);
  ASSERT_TRUE(nas.capacity.has_value());
  EXPECT_EQ(*nas.capacity, 2000000000000u);
}

TEST(CatalogLoaderTest, PaperCatalogRoundTrips) {
  const auto original = provider::PaperCatalog();
  const std::string dumped = CatalogToJson(original).Dump(2);
  auto reloaded = LoadCatalogFromText(dumped);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*reloaded)[i].id, original[i].id);
    EXPECT_EQ((*reloaded)[i].zones, original[i].zones);
    EXPECT_EQ((*reloaded)[i].pricing, original[i].pricing);
    EXPECT_DOUBLE_EQ((*reloaded)[i].sla.durability, original[i].sla.durability);
    EXPECT_DOUBLE_EQ((*reloaded)[i].sla.availability,
                     original[i].sla.availability);
  }
}

TEST(CatalogLoaderTest, RejectsDuplicateIds) {
  auto catalog = LoadCatalogFromText(R"({"providers": [
    {"id": "A", "durability": 0.999, "availability": 0.99,
     "zones": ["US"], "storage_gb_month": 0.1, "bw_in_gb": 0.1,
     "bw_out_gb": 0.1, "ops_per_1000": 0.01},
    {"id": "A", "durability": 0.999, "availability": 0.99,
     "zones": ["US"], "storage_gb_month": 0.1, "bw_in_gb": 0.1,
     "bw_out_gb": 0.1, "ops_per_1000": 0.01}
  ]})");
  ASSERT_FALSE(catalog.ok());
  EXPECT_NE(catalog.status().message().find("duplicate"), std::string::npos);
}

TEST(CatalogLoaderTest, RejectsMissingAndInvalidFields) {
  // Missing durability.
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "A", "availability": 0.99, "zones": ["US"],
     "storage_gb_month": 0.1, "bw_in_gb": 0.1, "bw_out_gb": 0.1,
     "ops_per_1000": 0.01}]})")
                   .ok());
  // Durability of exactly 1.0 breaks Algorithm 2's failure arithmetic.
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "A", "durability": 1.0, "availability": 0.99, "zones": ["US"],
     "storage_gb_month": 0.1, "bw_in_gb": 0.1, "bw_out_gb": 0.1,
     "ops_per_1000": 0.01}]})")
                   .ok());
  // Unknown zone.
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "A", "durability": 0.999, "availability": 0.99,
     "zones": ["MARS"], "storage_gb_month": 0.1, "bw_in_gb": 0.1,
     "bw_out_gb": 0.1, "ops_per_1000": 0.01}]})")
                   .ok());
  // Negative price.
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "A", "durability": 0.999, "availability": 0.99, "zones": ["US"],
     "storage_gb_month": -0.1, "bw_in_gb": 0.1, "bw_out_gb": 0.1,
     "ops_per_1000": 0.01}]})")
                   .ok());
  // Fractional byte capacity.
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "A", "durability": 0.999, "availability": 0.99, "zones": ["US"],
     "storage_gb_month": 0.1, "bw_in_gb": 0.1, "bw_out_gb": 0.1,
     "ops_per_1000": 0.01, "capacity": 1.5}]})")
                   .ok());
  // Empty id / empty zone list / not-an-array providers.
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "", "durability": 0.999, "availability": 0.99, "zones": ["US"],
     "storage_gb_month": 0.1, "bw_in_gb": 0.1, "bw_out_gb": 0.1,
     "ops_per_1000": 0.01}]})")
                   .ok());
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": [
    {"id": "A", "durability": 0.999, "availability": 0.99, "zones": [],
     "storage_gb_month": 0.1, "bw_in_gb": 0.1, "bw_out_gb": 0.1,
     "ops_per_1000": 0.01}]})")
                   .ok());
  EXPECT_FALSE(LoadCatalogFromText(R"({"providers": 5})").ok());
  EXPECT_FALSE(LoadCatalogFromText(R"({})").ok());
}

TEST(ZoneLoaderTest, WildcardAndLists) {
  auto all = LoadZones(JsonValue("all"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, provider::ZoneSet::All());

  auto eu_us = LoadZones(ParseJson(R"(["EU", "US"])").value());
  ASSERT_TRUE(eu_us.ok());
  EXPECT_TRUE(eu_us->Contains(Zone::kEU));
  EXPECT_TRUE(eu_us->Contains(Zone::kUS));
  EXPECT_FALSE(eu_us->Contains(Zone::kAPAC));

  EXPECT_FALSE(LoadZones(JsonValue("some")).ok());
  EXPECT_FALSE(LoadZones(JsonValue(3)).ok());
}

constexpr const char* kRulesDoc = R"({
  "rules": [
    {"name": "rule1", "durability": 0.999999, "availability": 0.9999,
     "zones": ["EU", "US"], "lockin": 0.3},
    {"name": "rule2", "durability": 0.99999, "availability": 0.9999,
     "zones": ["EU"], "lockin": 1},
    {"name": "rule3", "durability": 0.9999, "availability": 0.9999,
     "zones": "all", "lockin": 0.2, "ttl_hours": 72}
  ]
})";

TEST(RulesLoaderTest, LoadsPaperRules) {
  auto rules = LoadRulesFromText(kRulesDoc);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 3u);

  const auto& r1 = (*rules)[0];
  EXPECT_EQ(r1.name, "rule1");
  EXPECT_DOUBLE_EQ(r1.durability, 0.999999);
  EXPECT_DOUBLE_EQ(r1.lockin, 0.3);
  EXPECT_EQ(r1.MinProviders(), 4u);  // ceil(1 / 0.3)
  EXPECT_FALSE(r1.ttl_hint.has_value());

  const auto& r3 = (*rules)[2];
  EXPECT_EQ(r3.allowed_zones, provider::ZoneSet::All());
  ASSERT_TRUE(r3.ttl_hint.has_value());
  EXPECT_EQ(*r3.ttl_hint, 72 * common::kHour);
}

TEST(RulesLoaderTest, MatchesPaperRulesHelper) {
  // The JSON encoding of core::PaperRules() loads back identical.
  const auto original = core::PaperRules();
  auto reloaded = LoadRules(RulesToJson(original));
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*reloaded)[i].name, original[i].name);
    EXPECT_DOUBLE_EQ((*reloaded)[i].durability, original[i].durability);
    EXPECT_DOUBLE_EQ((*reloaded)[i].availability, original[i].availability);
    EXPECT_EQ((*reloaded)[i].allowed_zones, original[i].allowed_zones);
    EXPECT_DOUBLE_EQ((*reloaded)[i].lockin, original[i].lockin);
  }
}

TEST(RulesLoaderTest, DefaultsZonesToAll) {
  auto rules = LoadRulesFromText(R"({"rules": [
    {"name": "r", "durability": 0.99, "availability": 0.99, "lockin": 0.5}
  ]})");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ((*rules)[0].allowed_zones, provider::ZoneSet::All());
}

TEST(RulesLoaderTest, RejectsBadRules) {
  // Lock-in of 0 would demand infinitely many providers.
  EXPECT_FALSE(LoadRulesFromText(R"({"rules": [
    {"name": "r", "durability": 0.99, "availability": 0.99, "lockin": 0}
  ]})")
                   .ok());
  // Lock-in above 1 is outside (0, 1].
  EXPECT_FALSE(LoadRulesFromText(R"({"rules": [
    {"name": "r", "durability": 0.99, "availability": 0.99, "lockin": 1.5}
  ]})")
                   .ok());
  // Duplicate names.
  EXPECT_FALSE(LoadRulesFromText(R"({"rules": [
    {"name": "r", "durability": 0.99, "availability": 0.99, "lockin": 1},
    {"name": "r", "durability": 0.99, "availability": 0.99, "lockin": 1}
  ]})")
                   .ok());
  // Negative TTL.
  EXPECT_FALSE(LoadRulesFromText(R"({"rules": [
    {"name": "r", "durability": 0.99, "availability": 0.99, "lockin": 1,
     "ttl_hours": -5}
  ]})")
                   .ok());
}

}  // namespace
}  // namespace scalia::config
