// End-to-end integration: the live cluster runs a scaled-down version of
// the paper's evaluation scenarios with real erasure-coded bytes flowing
// through real engines, caches, the replicated metadata store and the
// periodic optimizer — and every object must survive, bit-exact, through
// traffic shifts, migrations, provider failure and recovery.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cluster.h"
#include "provider/spec.h"

namespace scalia {
namespace {

using common::kHour;

core::ClusterConfig IntegrationConfig() {
  core::ClusterConfig config;
  config.num_datacenters = 2;
  config.engines_per_dc = 2;
  config.worker_threads = 4;
  config.engine.default_rule =
      core::StorageRule{.name = "default",
                        .durability = 0.999999,
                        .availability = 0.9999,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,
                        .ttl_hint = std::nullopt};
  return config;
}

std::string DeterministicBlob(std::size_t size, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string blob(size, '\0');
  for (auto& c : blob) c = static_cast<char>('a' + (rng() % 26));
  return blob;
}

TEST(IntegrationTest, FlashCrowdLifecycleKeepsDataIntact) {
  core::ScaliaCluster cluster(IntegrationConfig());
  for (auto& spec : provider::PaperCatalog()) {
    ASSERT_TRUE(cluster.registry().Register(std::move(spec)).ok());
  }

  // 12 objects of varying sizes and types.
  std::vector<std::pair<std::string, std::string>> objects;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "asset-" + std::to_string(i);
    const std::string blob = DeterministicBlob(
        (static_cast<std::size_t>(i) % 4 + 1) * 100 * common::kKB,
        static_cast<std::uint64_t>(i));
    ASSERT_TRUE(cluster.RouteRequest()
                    .Put(0, "site", key, blob,
                         i % 2 == 0 ? "image/png" : "video/mp4")
                    .ok());
    objects.emplace_back(key, blob);
  }
  cluster.metadata_store().SyncAll();

  // 12 sampling periods with a flash crowd on object 0 in the middle.
  common::SimTime now = 0;
  for (int period = 0; period < 12; ++period) {
    now += kHour;
    const int reads_of_zero = (period >= 4 && period < 8) ? 60 : 1;
    for (int r = 0; r < reads_of_zero; ++r) {
      auto got = cluster.RouteRequest().Get(now, "site", objects[0].first);
      ASSERT_TRUE(got.ok()) << "period " << period;
      ASSERT_EQ(*got, objects[0].second);
    }
    // Background reads of two other objects.
    for (int i = 1; i <= 2; ++i) {
      auto got = cluster.RouteRequest().Get(now, "site", objects[static_cast<std::size_t>(i)].first);
      ASSERT_TRUE(got.ok());
    }
    cluster.EndSamplingPeriod(now);
    (void)cluster.RunOptimizationProcedure(now);
  }

  // Every object is intact after whatever migrations happened.
  for (const auto& [key, blob] : objects) {
    auto got = cluster.RouteRequest().Get(now, "site", key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, blob) << key;
  }
  // The optimizer tracked the accessed objects.
  EXPECT_GE(cluster.optimizer().TrackedObjects(), 3u);
}

TEST(IntegrationTest, ProviderFailureRecoveryCycle) {
  core::ScaliaCluster cluster(IntegrationConfig());
  for (auto& spec : provider::PaperCatalog()) {
    ASSERT_TRUE(cluster.registry().Register(std::move(spec)).ok());
  }
  ASSERT_TRUE(cluster.registry().Register(provider::CheapStorSpec()).ok());

  std::vector<std::pair<std::string, std::string>> objects;
  for (int i = 0; i < 6; ++i) {
    const std::string key = "backup-" + std::to_string(i);
    const std::string blob =
        DeterministicBlob(500 * common::kKB, 100 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(cluster.RouteRequest()
                    .Put(0, "vault", key, blob, "application/x-tar")
                    .ok());
    objects.emplace_back(key, blob);
  }
  cluster.metadata_store().SyncAll();

  // S3(l) fails for 10 hours.
  cluster.registry().Find("S3(l)")->failures().AddOutage(kHour,
                                                         11 * kHour);

  // Reads keep working throughout the outage (m-of-n reconstruction).
  common::SimTime now = 2 * kHour;
  for (const auto& [key, blob] : objects) {
    auto got = cluster.RouteRequest().Get(now, "vault", key);
    ASSERT_TRUE(got.ok()) << key << " unreadable during outage";
    EXPECT_EQ(*got, blob);
  }

  // Repair all stripes touching the faulty provider.
  for (const auto& [key, blob] : objects) {
    const std::string row_key = core::MakeRowKey("vault", key);
    auto meta = cluster.EngineAt(0, 0).LoadMetadata(now, row_key);
    ASSERT_TRUE(meta.ok());
    bool touches = false;
    for (const auto& s : meta->stripes) touches |= (s.provider == "S3(l)");
    if (touches) {
      ASSERT_TRUE(cluster.EngineAt(0, 0).RepairObject(now, row_key).ok())
          << key;
    }
  }
  cluster.metadata_store().SyncAll();

  // After repair no stripe references the faulty provider.
  for (const auto& [key, blob] : objects) {
    auto meta = cluster.EngineAt(1, 0).LoadMetadata(
        now, core::MakeRowKey("vault", key));
    ASSERT_TRUE(meta.ok());
    for (const auto& s : meta->stripes) EXPECT_NE(s.provider, "S3(l)");
  }

  // Deferred deletes flush once the provider recovers.
  now = 12 * kHour;
  std::size_t flushed = 0;
  for (std::size_t dc = 0; dc < 2; ++dc) {
    for (std::size_t e = 0; e < 2; ++e) {
      flushed += cluster.EngineAt(dc, e).ProcessPendingDeletes(now);
    }
  }
  EXPECT_GT(flushed, 0u);

  // Everything still reads back bit-exact after recovery.
  for (const auto& [key, blob] : objects) {
    auto got = cluster.RouteRequest().Get(now, "vault", key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, blob);
  }
}

TEST(IntegrationTest, ConcurrentClientsAcrossDatacenters) {
  core::ScaliaCluster cluster(IntegrationConfig());
  for (auto& spec : provider::PaperCatalog()) {
    ASSERT_TRUE(cluster.registry().Register(std::move(spec)).ok());
  }
  // 4 client threads hammer puts and gets through all engines.
  constexpr int kObjectsPerClient = 12;
  common::ThreadPool clients(4);
  std::atomic<int> failures{0};
  clients.ParallelFor(4, [&](std::size_t client) {
    for (int i = 0; i < kObjectsPerClient; ++i) {
      const std::string key =
          "c" + std::to_string(client) + "-o" + std::to_string(i);
      const std::string blob = DeterministicBlob(
          50 * common::kKB, client * 1000 + static_cast<std::uint64_t>(i));
      auto& engine = cluster.EngineAt(client % 2, client / 2 % 2);
      if (!engine.Put(0, "shared", key, blob, "text/plain").ok()) {
        ++failures;
      }
    }
  });
  ASSERT_EQ(failures.load(), 0);
  cluster.metadata_store().SyncAll();

  clients.ParallelFor(4, [&](std::size_t client) {
    for (int i = 0; i < kObjectsPerClient; ++i) {
      const std::string key =
          "c" + std::to_string(client) + "-o" + std::to_string(i);
      const std::string expected = DeterministicBlob(
          50 * common::kKB, client * 1000 + static_cast<std::uint64_t>(i));
      auto& engine = cluster.EngineAt((client + 1) % 2, client / 2 % 2);
      auto got = engine.Get(kHour, "shared", key);
      if (!got.ok() || *got != expected) ++failures;
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cluster.stats_db().ObjectCount(), 4u * kObjectsPerClient);
}

}  // namespace
}  // namespace scalia
