#include "filter/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace scalia::filter {
namespace {

std::string RandomBytes(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng() & 0xFF);
  return out;
}

/// Text-like data with plenty of repeats — the compressible case.
std::string RepetitiveBytes(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const std::string words[] = {"storage ", "scalia ", "placement ",
                               "provider ", "chunk "};
  std::string out;
  while (out.size() < n) out += words[rng.NextBounded(5)];
  out.resize(n);
  return out;
}

std::string RoundTrip(const std::string& raw) {
  std::string payload;
  const CodecId codec = CompressChunk(raw, &payload);
  auto decoded = DecompressChunk(codec, payload, raw.size());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ok() ? *decoded : std::string();
}

TEST(CodecTest, EmptyInputRoundTrips) {
  EXPECT_EQ(RoundTrip(""), "");
}

TEST(CodecTest, RoundTripPropertyAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string random = RandomBytes(1000 + seed * 997, seed);
    EXPECT_EQ(RoundTrip(random), random) << "random seed=" << seed;
    const std::string text = RepetitiveBytes(1000 + seed * 997, seed);
    EXPECT_EQ(RoundTrip(text), text) << "text seed=" << seed;
  }
}

TEST(CodecTest, GiantBufferRoundTrips) {
  const std::string giant = RepetitiveBytes(8 * 1024 * 1024, 3);
  EXPECT_EQ(RoundTrip(giant), giant);
}

TEST(CodecTest, RepetitiveInputActuallyShrinks) {
  const std::string text = RepetitiveBytes(65536, 5);
  std::string payload;
  const CodecId codec = CompressChunk(text, &payload);
  EXPECT_EQ(codec, CodecId::kLz);
  EXPECT_LT(payload.size(), text.size() / 2);
}

TEST(CodecTest, IncompressibleInputFallsBackToNone) {
  // Uniform random bytes cannot shrink; the codec must store them verbatim
  // rather than pay LZ token overhead.
  const std::string random = RandomBytes(65536, 6);
  std::string payload;
  const CodecId codec = CompressChunk(random, &payload);
  EXPECT_EQ(codec, CodecId::kNone);
  EXPECT_EQ(payload, random);
}

TEST(CodecTest, NoneCodecSizeMismatchRejected) {
  auto decoded = DecompressChunk(CodecId::kNone, "abc", 4);
  EXPECT_FALSE(decoded.ok());
}

// ---- Hostile-input hardening: no crash, no OOB, an error status ----------

TEST(CodecTest, TruncatedLzStreamRejected) {
  const std::string text = RepetitiveBytes(65536, 7);
  std::string payload;
  ASSERT_EQ(CompressChunk(text, &payload), CodecId::kLz);
  for (std::size_t cut : {0ul, 1ul, payload.size() / 2, payload.size() - 1}) {
    auto decoded =
        DecompressChunk(CodecId::kLz, payload.substr(0, cut), text.size());
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(CodecTest, BitflippedLzStreamsNeverCrash) {
  // Flip every byte of a real compressed stream in turn; every variant must
  // either decode to *something* of the declared size or fail cleanly.
  const std::string text = RepetitiveBytes(4096, 8);
  std::string payload;
  ASSERT_EQ(CompressChunk(text, &payload), CodecId::kLz);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::string hostile = payload;
    hostile[i] = static_cast<char>(hostile[i] ^ 0xFF);
    auto decoded = DecompressChunk(CodecId::kLz, hostile, text.size());
    if (decoded.ok()) {
      EXPECT_EQ(decoded->size(), text.size()) << "i=" << i;
    }
  }
}

TEST(CodecTest, RandomGarbageAsLzStreamNeverCrashes) {
  for (std::uint64_t seed = 50; seed < 80; ++seed) {
    const std::string garbage = RandomBytes(1 + seed * 13 % 5000, seed);
    auto decoded = DecompressChunk(CodecId::kLz, garbage, 4096);
    if (decoded.ok()) {
      EXPECT_LE(decoded->size(), 4096u);
    }
  }
}

TEST(CodecTest, UnknownCodecIdRejected) {
  auto decoded = DecompressChunk(static_cast<CodecId>(200), "xx", 2);
  EXPECT_FALSE(decoded.ok());
}

TEST(CodecTest, DeclaredSizeBoundsAllocation) {
  // A stream claiming to decode far past raw_size must be cut off at the
  // declared size, not ballooned.
  const std::string text = RepetitiveBytes(65536, 9);
  std::string payload;
  ASSERT_EQ(CompressChunk(text, &payload), CodecId::kLz);
  auto decoded = DecompressChunk(CodecId::kLz, payload, 100);
  EXPECT_FALSE(decoded.ok());  // declared 100, stream produces 65536
}

}  // namespace
}  // namespace scalia::filter
