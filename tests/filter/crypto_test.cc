#include "filter/crypto.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace scalia::filter {
namespace {

TEST(CryptoTest, CryptIsItsOwnInverse) {
  TenantKeyring keyring;
  common::Xoshiro256 rng(1);
  const auto cipher = ObjectCipher::NewObject(keyring.KeyFor("acme"), rng);
  const std::string plain = "the filter pipeline's one encryption seam";
  const std::string encrypted = cipher.Crypt(0, plain);
  EXPECT_NE(encrypted, plain);
  EXPECT_EQ(cipher.Crypt(0, encrypted), plain);
}

TEST(CryptoTest, DistinctOrdinalsGetDistinctKeystreams) {
  // Two chunks of identical plaintext must not produce identical
  // ciphertext (that would leak chunk equality to the providers).
  TenantKeyring keyring;
  common::Xoshiro256 rng(2);
  const auto cipher = ObjectCipher::NewObject(keyring.KeyFor("acme"), rng);
  const std::string plain(4096, 'z');
  EXPECT_NE(cipher.Crypt(0, plain), cipher.Crypt(1, plain));
}

TEST(CryptoTest, OpenRecoversTheDataKeyFromTheEnvelope) {
  TenantKeyring keyring;
  const TenantKey key = keyring.KeyFor("acme");
  common::Xoshiro256 rng(3);
  const auto writer = ObjectCipher::NewObject(key, rng);
  const std::string plain = "payload travelling through the envelope";
  const std::string encrypted = writer.Crypt(7, plain);

  const auto reader = ObjectCipher::Open(key, writer.envelope());
  EXPECT_EQ(reader.Crypt(7, encrypted), plain);
  EXPECT_TRUE(reader.VerifyTag("blob bytes", writer.Seal("blob bytes")));
}

TEST(CryptoTest, WrongTenantKeyFailsTheTagCheck) {
  TenantKeyring keyring;
  keyring.SetTenantSecret("acme", "secret-a");
  keyring.SetTenantSecret("globex", "secret-b");
  common::Xoshiro256 rng(4);
  const auto writer = ObjectCipher::NewObject(keyring.KeyFor("acme"), rng);
  const common::Sha256Digest tag = writer.Seal("blob");

  // Unwrapping with the wrong tenant key yields a wrong data key; the HMAC
  // tag is what detects it.
  const auto intruder =
      ObjectCipher::Open(keyring.KeyFor("globex"), writer.envelope());
  EXPECT_FALSE(intruder.VerifyTag("blob", tag));
  const auto owner =
      ObjectCipher::Open(keyring.KeyFor("acme"), writer.envelope());
  EXPECT_TRUE(owner.VerifyTag("blob", tag));
}

TEST(CryptoTest, TamperedBlobFailsTheTagCheck) {
  TenantKeyring keyring;
  common::Xoshiro256 rng(5);
  const auto cipher = ObjectCipher::NewObject(keyring.KeyFor("t"), rng);
  const common::Sha256Digest tag = cipher.Seal("authentic bytes");
  EXPECT_FALSE(cipher.VerifyTag("authentic byteS", tag));
  EXPECT_FALSE(cipher.VerifyTag("authentic byte", tag));
}

TEST(CryptoTest, KeyringDerivationIsDeterministicAndPerTenant) {
  TenantKeyring a;
  TenantKeyring b;
  EXPECT_EQ(a.KeyFor("acme"), b.KeyFor("acme"));  // same master secret
  EXPECT_NE(a.KeyFor("acme"), a.KeyFor("globex"));

  a.SetTenantSecret("acme", "provisioned");
  EXPECT_NE(a.KeyFor("acme"), b.KeyFor("acme"))
      << "an explicit secret must replace the master-derived key";
  EXPECT_EQ(a.KeyFor("globex"), b.KeyFor("globex"));
}

TEST(CryptoTest, DeriveTenantKeySeparatesSecretAndTenant) {
  // No concatenation ambiguity: ("ab","c") and ("a","bc") must differ.
  EXPECT_NE(DeriveTenantKey("ab", "c"), DeriveTenantKey("a", "bc"));
}

TEST(CryptoTest, FreshObjectsGetFreshEnvelopes) {
  TenantKeyring keyring;
  common::Xoshiro256 rng(6);
  const auto first = ObjectCipher::NewObject(keyring.KeyFor("t"), rng);
  const auto second = ObjectCipher::NewObject(keyring.KeyFor("t"), rng);
  EXPECT_NE(first.envelope().nonce, second.envelope().nonce);
  EXPECT_NE(first.envelope().wrapped_key, second.envelope().wrapped_key);
}

}  // namespace
}  // namespace scalia::filter
