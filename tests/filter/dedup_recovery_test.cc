// Crash-recovery tests for the dedup index: refcounts are rebuilt from the
// restored metadata rows after any crash, a torn WAL tail sweeps orphaned
// chunks, and a chunk is never freed while a live object references it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>

#include "common/binary_codec.h"
#include "common/rng.h"
#include "core/engine.h"
#include "durability/manager.h"
#include "filter/dedup_index.h"
#include "filter/pipeline.h"
#include "provider/spec.h"

namespace scalia::filter {
namespace {

namespace fs = std::filesystem;

using common::kHour;

std::string RandomBytes(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng() & 0xFF);
  return out;
}

/// A full filtered engine stack over a durability directory.  The provider
/// registry is shared across incarnations (remote clouds survive a crash);
/// the dedup index is per-incarnation state restored by recovery.
struct FilterWorld {
  FilterWorld(provider::ProviderRegistry* registry_in, const std::string& dir)
      : registry(registry_in), db(1), stats(&db, 0) {
    durability::DurabilityConfig config;
    config.dir = dir;
    config.wal.sync_on_commit = false;
    config.group_commit = false;  // synchronous appends: simplest for tests
    auto opened = durability::DurabilityManager::Open(
        config, durability::EngineStateRefs{.db = &db, .dc = 0, .stats = &stats,
                                            .registry = nullptr,
                                            .filter_index = &dedup});
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    durability = std::move(*opened);
    engine = std::make_unique<core::Engine>(
        "e0", registry, &db, 0, nullptr, &stats, nullptr, nullptr,
        core::EngineConfig{}, /*seed=*/11);
    engine->AttachJournal(durability->journal());

    PipelineConfig fc;
    fc.policy.default_stage = FilterStage::kDedup;
    fc.seed = 99;
    pipeline = std::make_unique<Pipeline>(fc, &dedup, &keyring);
    engine->AttachFilters(pipeline.get());
  }

  provider::ProviderRegistry* registry;
  store::ReplicatedStore db;
  stats::StatsDb stats;
  DedupIndex dedup;
  TenantKeyring keyring;
  std::unique_ptr<durability::DurabilityManager> durability;
  std::unique_ptr<Pipeline> pipeline;
  std::unique_ptr<core::Engine> engine;
};

class DedupRecoveryTest : public ::testing::Test {
 protected:
  DedupRecoveryTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("dedup_recovery_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
  }
  ~DedupRecoveryTest() override { fs::remove_all(dir_); }

  /// The chunk hashes Encode() would assign `data` — CDC boundaries and
  /// SHA-256 identities depend only on content and the fixed gear table, so
  /// a scratch pipeline reproduces exactly the refs the engine stored.
  static std::vector<ChunkHashHex> RefsOf(const std::string& data) {
    DedupIndex scratch_index;
    TenantKeyring scratch_keyring;
    PipelineConfig fc;
    fc.policy.default_stage = FilterStage::kDedup;
    Pipeline scratch(fc, &scratch_index, &scratch_keyring);
    auto encoded = scratch.Encode("acme", "rule", data);
    EXPECT_TRUE(encoded.ok());
    return encoded.ok() ? encoded->refs : std::vector<ChunkHashHex>{};
  }

  /// Truncates the final WAL frame (the last journaled record) off the
  /// single populated segment — the classic torn tail.
  void TearOffFinalWalRecord() {
    fs::path segment;
    for (const auto& entry :
         fs::directory_iterator(fs::path(dir_) / "wal")) {
      if (entry.path().extension() == ".seg" && entry.file_size() > 0) {
        ASSERT_TRUE(segment.empty()) << "expected a single populated segment";
        segment = entry.path();
      }
    }
    ASSERT_FALSE(segment.empty());
    std::string bytes;
    {
      std::ifstream in(segment, std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
    }
    std::size_t last_frame_start = 0;
    for (std::size_t offset = 0; offset < bytes.size();) {
      common::BinaryReader header(std::string_view(bytes).substr(
          offset, durability::Wal::kFrameHeaderBytes));
      ASSERT_EQ(header.U32(), durability::Wal::kFrameMagic);
      header.U64();  // lsn
      const std::uint32_t len = header.U32();
      last_frame_start = offset;
      offset += durability::Wal::kFrameHeaderBytes + len;
      ASSERT_LE(offset, bytes.size());
    }
    fs::resize_file(segment, last_frame_start);
  }

  std::string dir_;
  provider::ProviderRegistry registry_;
};

TEST_F(DedupRecoveryTest, RefcountsRebuiltExactlyAfterCleanRestart) {
  const std::string data = RandomBytes(300000, 21);
  const auto refs = RefsOf(data);
  ASSERT_GE(refs.size(), 2u);
  {
    FilterWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "objA", data, "app/bin").ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "objB", data, "app/bin").ok());
    for (const auto& hash : refs) EXPECT_EQ(world.dedup.RefCount(hash), 2u);
  }

  FilterWorld world(&registry_, dir_);
  auto report = world.durability->Recover(kHour);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->dedup_chunks_swept, 0u);
  EXPECT_EQ(world.dedup.ChunkCount(),
            std::set<ChunkHashHex>(refs.begin(), refs.end()).size());
  for (const auto& hash : refs) {
    EXPECT_EQ(world.dedup.RefCount(hash), 2u)
        << "refcount not rebuilt from the two live rows";
  }
  EXPECT_EQ(*world.engine->Get(kHour, "t:b", "objA"), data);
  EXPECT_EQ(*world.engine->Get(kHour, "t:b", "objB"), data);
}

TEST_F(DedupRecoveryTest, NoChunkFreedWhileReferenced) {
  const std::string data = RandomBytes(300000, 22);
  {
    FilterWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "objA", data, "app/bin").ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "objB", data, "app/bin").ok());
  }
  FilterWorld world(&registry_, dir_);
  ASSERT_TRUE(world.durability->Recover(kHour).ok());

  // If the rebuild undercounted (say, restored refcount 1 instead of 2),
  // this delete would free chunks objB still references.
  ASSERT_TRUE(world.engine->Delete(kHour, "t:b", "objA").ok());
  EXPECT_GT(world.dedup.ChunkCount(), 0u);
  auto got = world.engine->Get(kHour, "t:b", "objB");
  ASSERT_TRUE(got.ok()) << "chunk freed while objB still referenced it: "
                        << got.status().ToString();
  EXPECT_EQ(*got, data);

  // The last reference dying is what empties the index.
  ASSERT_TRUE(world.engine->Delete(kHour, "t:b", "objB").ok());
  EXPECT_EQ(world.dedup.ChunkCount(), 0u);
  EXPECT_EQ(world.dedup.StoredBytes(), 0u);
}

TEST_F(DedupRecoveryTest, TornUpsertSweepsOrphanChunksKeepsReferencedOnes) {
  // obj2 shares a long prefix with obj1 and adds a unique tail.  Tearing
  // obj2's metadata upsert off the WAL leaves its freshly journaled tail
  // chunks with no referencing row: recovery must sweep exactly those and
  // leave every chunk obj1 references untouched.
  const std::string shared = RandomBytes(300000, 23);
  const std::string data2 = shared + RandomBytes(100000, 24);
  const auto refs1 = RefsOf(shared);
  {
    FilterWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "obj1", shared, "app/bin").ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "obj2", data2, "app/bin").ok());
  }
  TearOffFinalWalRecord();  // obj2's kUpsert — journaled after its chunks

  FilterWorld world(&registry_, dir_);
  auto report = world.durability->Recover(kHour);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->dedup_chunks_swept, 1u)
      << "obj2's unreferenced tail chunks must be swept";

  // obj2 never happened; obj1 is fully intact.
  EXPECT_EQ(world.engine->Get(kHour, "t:b", "obj2").status().code(),
            common::StatusCode::kNotFound);
  auto got1 = world.engine->Get(kHour, "t:b", "obj1");
  ASSERT_TRUE(got1.ok()) << got1.status().ToString();
  EXPECT_EQ(*got1, shared);
  for (const auto& hash : refs1) {
    EXPECT_EQ(world.dedup.RefCount(hash), 1u);
  }
}

TEST_F(DedupRecoveryTest, CheckpointCarriesTheIndexAcrossWalTruncation) {
  const std::string data = RandomBytes(200000, 25);
  {
    FilterWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(world.engine->Put(0, "t:b", "objA", data, "app/bin").ok());
    // Checkpointing truncates the WAL behind it: from here on the chunk
    // payloads exist *only* in checkpoint format v2's dedup section.
    ASSERT_TRUE(world.durability->Checkpoint(kHour).ok());
    ASSERT_TRUE(world.engine
                    ->Put(2 * kHour, "t:b", "objB", data, "app/bin")
                    .ok());
  }
  FilterWorld world(&registry_, dir_);
  auto report = world.durability->Recover(3 * kHour);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_loaded);
  EXPECT_EQ(report->dedup_chunks_swept, 0u);
  EXPECT_EQ(*world.engine->Get(3 * kHour, "t:b", "objA"), data);
  EXPECT_EQ(*world.engine->Get(3 * kHour, "t:b", "objB"), data);
  for (const auto& hash : RefsOf(data)) {
    EXPECT_EQ(world.dedup.RefCount(hash), 2u);
  }
}

}  // namespace
}  // namespace scalia::filter
