#include "filter/pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "filter/dedup_index.h"

namespace scalia::filter {
namespace {

constexpr FilterStage kAllStages[] = {
    FilterStage::kNone, FilterStage::kChunk, FilterStage::kDedup,
    FilterStage::kCompress, FilterStage::kEncrypt};

std::string RandomBytes(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng() & 0xFF);
  return out;
}

std::string RepetitiveBytes(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  const std::string words[] = {"placement ", "dedup ", "chunk ", "scalia "};
  std::string out;
  while (out.size() < n) out += words[rng.NextBounded(4)];
  out.resize(n);
  return out;
}

struct World {
  explicit World(FilterStage stage, std::uint64_t seed = 77) {
    PipelineConfig config;
    config.policy.default_stage = stage;
    config.seed = seed;
    keyring.SetTenantSecret("acme", "acme-secret");
    pipeline = std::make_unique<Pipeline>(config, &index, &keyring);
  }
  DedupIndex index;
  TenantKeyring keyring;
  std::unique_ptr<Pipeline> pipeline;
};

// ---- The core property: Decode(Encode(x)) == x for every stage prefix ----

TEST(PipelineRoundTripTest, EveryStageEverySeedEveryShape) {
  for (const FilterStage stage : kAllStages) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      World world(stage, seed);
      const std::vector<std::string> shapes = {
          std::string(),                       // empty object
          std::string("x"),                    // single byte
          std::string(4096, 'a'),              // exactly min_chunk, constant
          RandomBytes(100, seed),              // sub-chunk random
          RandomBytes(300000, seed),           // multi-chunk random
          RepetitiveBytes(300000, seed),       // multi-chunk compressible
          RandomBytes(4 * 1024 * 1024, seed),  // giant object
      };
      for (std::size_t i = 0; i < shapes.size(); ++i) {
        auto encoded = world.pipeline->Encode("acme", "rule", shapes[i]);
        ASSERT_TRUE(encoded.ok())
            << FilterStageName(stage) << " seed=" << seed << " shape=" << i
            << ": " << encoded.status().ToString();
        EXPECT_EQ(encoded->stage, stage);
        EXPECT_EQ(encoded->raw_bytes, shapes[i].size());
        EXPECT_EQ(encoded->stored_bytes, encoded->blob.size());
        auto decoded = world.pipeline->Decode("acme", encoded->blob);
        ASSERT_TRUE(decoded.ok())
            << FilterStageName(stage) << " seed=" << seed << " shape=" << i
            << ": " << decoded.status().ToString();
        EXPECT_EQ(*decoded, shapes[i])
            << FilterStageName(stage) << " seed=" << seed << " shape=" << i;
      }
    }
  }
}

TEST(PipelineRoundTripTest, StageNonePassesThroughVerbatim) {
  World world(FilterStage::kNone);
  const std::string data = RandomBytes(10000, 1);
  auto encoded = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->blob, data);
  EXPECT_FALSE(Pipeline::IsEncoded(encoded->blob));
  EXPECT_TRUE(encoded->refs.empty());
  EXPECT_TRUE(encoded->new_chunks.empty());
  EXPECT_EQ(world.index.ChunkCount(), 0u);
}

TEST(PipelineRoundTripTest, EncodedBlobsCarryTheMagic) {
  for (const FilterStage stage :
       {FilterStage::kChunk, FilterStage::kDedup, FilterStage::kCompress,
        FilterStage::kEncrypt}) {
    World world(stage);
    auto encoded = world.pipeline->Encode("acme", "rule", "body");
    ASSERT_TRUE(encoded.ok());
    EXPECT_TRUE(Pipeline::IsEncoded(encoded->blob)) << FilterStageName(stage);
  }
}

TEST(PipelineRoundTripTest, PerRulePolicySelectsThePrefix) {
  PipelineConfig config;
  config.policy.default_stage = FilterStage::kNone;
  config.policy.per_rule["gold"] = FilterStage::kEncrypt;
  config.policy.per_rule["bulk"] = FilterStage::kCompress;
  DedupIndex index;
  TenantKeyring keyring;
  Pipeline pipeline(config, &index, &keyring);

  const std::string data = RepetitiveBytes(100000, 2);
  auto gold = pipeline.Encode("t", "gold", data);
  auto bulk = pipeline.Encode("t", "bulk", data);
  auto other = pipeline.Encode("t", "other", data);
  ASSERT_TRUE(gold.ok());
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(gold->stage, FilterStage::kEncrypt);
  EXPECT_EQ(bulk->stage, FilterStage::kCompress);
  EXPECT_EQ(other->stage, FilterStage::kNone);
  // The self-describing header means one Decode handles all three.
  EXPECT_EQ(*pipeline.Decode("t", gold->blob), data);
  EXPECT_EQ(*pipeline.Decode("t", bulk->blob), data);
  EXPECT_EQ(*pipeline.Decode("t", other->blob), data);
}

// ---- Dedup behavior ------------------------------------------------------

TEST(PipelineRoundTripTest, SecondCopyDeduplicatesAgainstTheFirst) {
  World world(FilterStage::kDedup);
  const std::string data = RandomBytes(500000, 3);

  auto first = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->dedup_hits, 0u);
  EXPECT_EQ(first->new_chunks.size(), first->chunk_count);
  EXPECT_GE(first->stored_bytes, first->raw_bytes);  // headers, no hits yet

  auto second = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->dedup_hits, second->chunk_count);
  EXPECT_TRUE(second->new_chunks.empty());
  // Every chunk stored as a reference: the blob is tiny next to the data.
  EXPECT_LT(second->stored_bytes, data.size() / 10);

  // Both decode, and refcounts reflect both objects.
  EXPECT_EQ(*world.pipeline->Decode("acme", first->blob), data);
  EXPECT_EQ(*world.pipeline->Decode("acme", second->blob), data);
  for (const auto& hash : first->refs) {
    EXPECT_EQ(world.index.RefCount(hash), 2u);
  }

  // Releasing the first object's refs keeps the second readable.
  world.pipeline->ReleaseRefs(first->refs);
  EXPECT_EQ(*world.pipeline->Decode("acme", second->blob), data);
  // Releasing the last reference frees the chunks.
  world.pipeline->ReleaseRefs(second->refs);
  EXPECT_EQ(world.index.ChunkCount(), 0u);
  EXPECT_EQ(world.index.StoredBytes(), 0u);
}

TEST(PipelineRoundTripTest, RefsListOneEntryPerChunkInOrder) {
  World world(FilterStage::kDedup);
  const std::string data = RandomBytes(300000, 4);
  auto encoded = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->refs.size(), encoded->chunk_count);
  for (const auto& hash : encoded->refs) {
    EXPECT_EQ(hash.size(), 64u);
    EXPECT_TRUE(world.index.Contains(hash));
  }
}

TEST(PipelineRoundTripTest, DedupBelowChunkStageTouchesNoIndex) {
  World world(FilterStage::kChunk);
  auto encoded = world.pipeline->Encode("acme", "rule", RandomBytes(100000, 5));
  ASSERT_TRUE(encoded.ok());
  EXPECT_TRUE(encoded->refs.empty());
  EXPECT_EQ(world.index.ChunkCount(), 0u);
}

// ---- Compression / encryption interplay ----------------------------------

TEST(PipelineRoundTripTest, CompressStageShrinksCompressibleObjects) {
  World world(FilterStage::kCompress);
  const std::string text = RepetitiveBytes(500000, 6);
  auto encoded = world.pipeline->Encode("acme", "rule", text);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded->stored_bytes, text.size() / 2);
}

TEST(PipelineRoundTripTest, EncryptedBlobHidesThePlaintext) {
  World world(FilterStage::kEncrypt);
  const std::string plain(200000, 'A');  // highly recognizable
  auto encoded = world.pipeline->Encode("acme", "rule", plain);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->blob.find(std::string(64, 'A')), std::string::npos)
      << "long plaintext runs must not survive encryption";
}

TEST(PipelineRoundTripTest, WrongTenantCannotDecodeEncrypted) {
  World world(FilterStage::kEncrypt);
  world.keyring.SetTenantSecret("globex", "globex-secret");
  const std::string data = RandomBytes(50000, 7);
  auto encoded = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(encoded.ok());
  auto stolen = world.pipeline->Decode("globex", encoded->blob);
  EXPECT_FALSE(stolen.ok());
  EXPECT_EQ(*world.pipeline->Decode("acme", encoded->blob), data);
}

TEST(PipelineRoundTripTest, EncryptedDedupStillHitsAcrossObjects) {
  // Dedup happens on *plaintext* chunk hashes before encryption, so two
  // copies of the same data dedup even at the kEncrypt stage.
  World world(FilterStage::kEncrypt);
  const std::string data = RandomBytes(400000, 8);
  auto first = world.pipeline->Encode("acme", "rule", data);
  auto second = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->dedup_hits, second->chunk_count);
  EXPECT_EQ(*world.pipeline->Decode("acme", second->blob), data);
}

// ---- Hostile blobs -------------------------------------------------------

TEST(PipelineRoundTripTest, TamperedEncryptedBlobAlwaysRejected) {
  World world(FilterStage::kEncrypt);
  const std::string data = RandomBytes(20000, 9);
  auto encoded = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(encoded.ok());
  common::Xoshiro256 rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    std::string hostile = encoded->blob;
    const std::size_t at = rng.NextBounded(hostile.size());
    hostile[at] = static_cast<char>(hostile[at] ^ (1 + rng.NextBounded(255)));
    auto decoded = world.pipeline->Decode("acme", hostile);
    EXPECT_FALSE(decoded.ok()) << "flip at " << at << " went undetected";
  }
}

TEST(PipelineRoundTripTest, TamperedUnencryptedBlobsNeverCrash) {
  // Below kEncrypt there is no integrity tag: a flip may surface as a
  // decode error or as different bytes, but never as a crash or an
  // over-allocation.
  for (const FilterStage stage :
       {FilterStage::kChunk, FilterStage::kDedup, FilterStage::kCompress}) {
    World world(stage);
    const std::string data = RepetitiveBytes(50000, 11);
    auto encoded = world.pipeline->Encode("acme", "rule", data);
    ASSERT_TRUE(encoded.ok());
    common::Xoshiro256 rng(12);
    for (int trial = 0; trial < 200; ++trial) {
      std::string hostile = encoded->blob;
      const std::size_t at = rng.NextBounded(hostile.size());
      hostile[at] =
          static_cast<char>(hostile[at] ^ (1 + rng.NextBounded(255)));
      (void)world.pipeline->Decode("acme", hostile);  // must not crash
    }
  }
}

TEST(PipelineRoundTripTest, TruncatedBlobsFailCleanly) {
  World world(FilterStage::kEncrypt);
  const std::string data = RandomBytes(30000, 13);
  auto encoded = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(encoded.ok());
  for (std::size_t cut = 0; cut < encoded->blob.size();
       cut += 1 + cut / 16) {
    auto decoded =
        world.pipeline->Decode("acme", encoded->blob.substr(0, cut));
    // A cut below the 4-byte magic decodes as a legacy pass-through blob;
    // anything with the magic but missing bytes must error.
    if (cut >= 4) {
      EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
    }
  }
}

TEST(PipelineRoundTripTest, LegacyBlobsPassThroughDecode) {
  World world(FilterStage::kEncrypt);
  const std::string legacy = "stored before the pipeline existed";
  auto decoded = world.pipeline->Decode("acme", legacy);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, legacy);
}

TEST(PipelineRoundTripTest, ReferenceToEvictedChunkFailsCleanly) {
  World world(FilterStage::kDedup);
  const std::string data = RandomBytes(200000, 14);
  auto first = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(first.ok());
  // The second copy stores every chunk as a reference into the index.
  auto second = world.pipeline->Encode("acme", "rule", data);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->dedup_hits, second->chunk_count);
  // Free every reference: the chunks leave the index, so the
  // reference-only blob now points at nothing and must fail to decode
  // (cleanly — no crash) rather than fabricate data.
  world.pipeline->ReleaseRefs(first->refs);
  world.pipeline->ReleaseRefs(second->refs);
  ASSERT_EQ(world.index.ChunkCount(), 0u);
  auto decoded = world.pipeline->Decode("acme", second->blob);
  EXPECT_FALSE(decoded.ok());
}

// ---- Metadata helpers ----------------------------------------------------

TEST(PipelineRoundTripTest, DedupRefsCsvRoundTrips) {
  const std::vector<ChunkHashHex> refs = {std::string(64, 'a'),
                                          std::string(64, 'b'),
                                          std::string(64, 'a')};
  EXPECT_EQ(ParseDedupRefs(JoinDedupRefs(refs)), refs);
  EXPECT_TRUE(ParseDedupRefs("").empty());
  EXPECT_TRUE(JoinDedupRefs({}).empty());
}

}  // namespace
}  // namespace scalia::filter
