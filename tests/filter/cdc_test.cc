#include "filter/cdc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "common/rng.h"

namespace scalia::filter {
namespace {

std::string RandomBytes(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng() & 0xFF);
  return out;
}

/// Every split must partition the input exactly: in-order, gap-free,
/// covering [0, size).
void ExpectPartition(const std::string& data,
                     const std::vector<ChunkSpan>& spans,
                     const CdcConfig& config) {
  std::size_t expected_offset = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.offset, expected_offset);
    EXPECT_GT(span.length, 0u);
    EXPECT_LE(span.length, config.max_chunk);
    expected_offset += span.length;
  }
  EXPECT_EQ(expected_offset, data.size());
}

TEST(CdcTest, EmptyInputYieldsNoChunks) {
  EXPECT_TRUE(ContentDefinedChunks("").empty());
}

TEST(CdcTest, TinyInputIsOneChunk) {
  const auto spans = ContentDefinedChunks("hello");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].offset, 0u);
  EXPECT_EQ(spans[0].length, 5u);
}

TEST(CdcTest, PartitionPropertyAcrossSeedsAndSizes) {
  const CdcConfig config;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    for (std::size_t size :
         {1ul, 4095ul, 4096ul, 65536ul, 200000ul, 1048576ul}) {
      const std::string data = RandomBytes(size, seed);
      const auto spans = ContentDefinedChunks(data, config);
      ExpectPartition(data, spans, config);
      // Every chunk except possibly the last respects min_chunk.
      for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
        EXPECT_GE(spans[i].length, config.min_chunk)
            << "seed=" << seed << " size=" << size << " chunk=" << i;
      }
    }
  }
}

TEST(CdcTest, DeterministicAcrossCalls) {
  const std::string data = RandomBytes(300000, 7);
  const auto a = ContentDefinedChunks(data);
  const auto b = ContentDefinedChunks(data);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(CdcTest, ConstantInputForceCutsAtMaxChunk) {
  // A constant stream never produces a content boundary (the rolling hash
  // is constant), so every cut is the max_chunk force-cut.
  const CdcConfig config;
  const std::string data(10 * config.max_chunk + 123, 'x');
  const auto spans = ContentDefinedChunks(data, config);
  ExpectPartition(data, spans, config);
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].length, config.max_chunk);
  }
}

TEST(CdcTest, InsertionNearFrontPreservesMostBoundaries) {
  // The whole point of content-defined chunking: a small insertion shifts
  // every *offset* but the downstream cut positions re-synchronize, so the
  // majority of chunk *contents* (and hence dedup hashes) survive.
  const std::string base = RandomBytes(1048576, 42);
  const std::string shifted = std::string("PREFIX-INSERTED-BYTES") + base;

  auto contents = [](const std::string& data) {
    std::set<std::string> set;
    for (const auto& span : ContentDefinedChunks(data)) {
      set.insert(data.substr(span.offset, span.length));
    }
    return set;
  };
  const auto before = contents(base);
  const auto after = contents(shifted);
  std::size_t shared = 0;
  for (const auto& chunk : before) {
    shared += after.count(chunk);
  }
  // At least half of the original chunks must reappear identically (in
  // practice nearly all but the first do).
  EXPECT_GE(shared * 2, before.size())
      << "shared " << shared << " of " << before.size();
}

TEST(CdcTest, ExpectedChunkSizeTracksMask) {
  // mask with k low bits => expected size near min_chunk + 2^k.  Accept a
  // generous band; this guards against the boundary test degenerating into
  // "always min" or "always max".
  const CdcConfig config;
  const std::string data = RandomBytes(4 * 1048576, 99);
  const auto spans = ContentDefinedChunks(data, config);
  const double mean = static_cast<double>(data.size()) /
                      static_cast<double>(spans.size());
  EXPECT_GT(mean, static_cast<double>(config.min_chunk));
  EXPECT_LT(mean, static_cast<double>(config.max_chunk));
}

}  // namespace
}  // namespace scalia::filter
