#include "store/mvcc.h"

#include <gtest/gtest.h>

#include "store/vector_clock.h"

namespace scalia::store {
namespace {

TEST(VectorClockTest, CompareOrders) {
  VectorClock a, b;
  EXPECT_EQ(a.Compare(b), ClockOrder::kEqual);
  a.Increment(0);
  EXPECT_EQ(a.Compare(b), ClockOrder::kAfter);
  EXPECT_EQ(b.Compare(a), ClockOrder::kBefore);
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), ClockOrder::kConcurrent);
  EXPECT_EQ(b.Compare(a), ClockOrder::kConcurrent);
}

TEST(VectorClockTest, MergeTakesPointwiseMax) {
  VectorClock a, b;
  a.Increment(0);
  a.Increment(0);
  b.Increment(0);
  b.Increment(1);
  a.Merge(b);
  EXPECT_EQ(a.Get(0), 2u);
  EXPECT_EQ(a.Get(1), 1u);
  EXPECT_EQ(a.Compare(b), ClockOrder::kAfter);
}

TEST(VectorClockTest, DominanceAfterMergeIncrement) {
  VectorClock a, b;
  a.Increment(0);
  b.Increment(1);
  VectorClock c = a;
  c.Merge(b);
  c.Increment(0);
  EXPECT_EQ(c.Compare(a), ClockOrder::kAfter);
  EXPECT_EQ(c.Compare(b), ClockOrder::kAfter);
}

Version MakeVersion(std::string value, common::SimTime ts, ReplicaId origin,
                    VectorClock clock) {
  Version v;
  v.value = std::move(value);
  v.timestamp = ts;
  v.origin = origin;
  v.clock = std::move(clock);
  return v;
}

TEST(MvccRowTest, CausallyLaterWriteSupersedes) {
  MvccRow row;
  VectorClock c1;
  c1.Increment(0);
  auto superseded = row.Apply(MakeVersion("v1", 10, 0, c1));
  EXPECT_TRUE(superseded.empty());

  VectorClock c2 = c1;
  c2.Increment(0);
  superseded = row.Apply(MakeVersion("v2", 20, 0, c2));
  ASSERT_EQ(superseded.size(), 1u);
  EXPECT_EQ(superseded[0].value, "v1");  // reported for chunk GC
  ASSERT_EQ(row.live().size(), 1u);
  EXPECT_EQ(row.live()[0].value, "v2");
}

TEST(MvccRowTest, StaleWriteIgnored) {
  MvccRow row;
  VectorClock c1;
  c1.Increment(0);
  VectorClock c2 = c1;
  c2.Increment(0);
  row.Apply(MakeVersion("new", 20, 0, c2));
  const auto superseded = row.Apply(MakeVersion("old", 10, 0, c1));
  EXPECT_TRUE(superseded.empty());
  ASSERT_EQ(row.live().size(), 1u);
  EXPECT_EQ(row.live()[0].value, "new");
}

TEST(MvccRowTest, DuplicateReplicationIsIdempotent) {
  MvccRow row;
  VectorClock c;
  c.Increment(0);
  row.Apply(MakeVersion("v", 10, 0, c));
  row.Apply(MakeVersion("v", 10, 0, c));  // replayed replication record
  EXPECT_EQ(row.live().size(), 1u);
}

TEST(MvccRowTest, ConcurrentWritesCoexist) {
  // Fig. 10: two datacenters update the same row concurrently.
  MvccRow row;
  VectorClock c0, c1;
  c0.Increment(0);
  c1.Increment(1);
  row.Apply(MakeVersion("dc0", 10, 0, c0));
  const auto superseded = row.Apply(MakeVersion("dc1", 12, 1, c1));
  EXPECT_TRUE(superseded.empty());
  EXPECT_TRUE(row.HasConflict());
  EXPECT_EQ(row.live().size(), 2u);
}

TEST(MvccRowTest, LastWriterWinsResolution) {
  MvccRow row;
  VectorClock c0, c1;
  c0.Increment(0);
  c1.Increment(1);
  row.Apply(MakeVersion("older", 10, 0, c0));
  row.Apply(MakeVersion("fresher", 12, 1, c1));
  const auto losers = row.ResolveLastWriterWins();
  ASSERT_EQ(losers.size(), 1u);
  EXPECT_EQ(losers[0].value, "older");  // its chunks get deleted (Fig. 10)
  EXPECT_FALSE(row.HasConflict());
  ASSERT_TRUE(row.Latest().has_value());
  EXPECT_EQ(row.Latest()->value, "fresher");
  // The winner's clock absorbed the loser's: later writes dominate both.
  EXPECT_EQ(row.live()[0].clock.Get(0), 1u);
  EXPECT_EQ(row.live()[0].clock.Get(1), 1u);
}

TEST(MvccRowTest, EqualTimestampTieBreaksByOrigin) {
  MvccRow row;
  VectorClock c0, c1;
  c0.Increment(0);
  c1.Increment(1);
  row.Apply(MakeVersion("origin0", 10, 0, c0));
  row.Apply(MakeVersion("origin1", 10, 1, c1));
  row.ResolveLastWriterWins();
  EXPECT_EQ(row.Latest()->value, "origin1");  // higher origin wins ties
}

TEST(MvccRowTest, ResolveWithoutConflictIsNoop) {
  MvccRow row;
  VectorClock c;
  c.Increment(0);
  row.Apply(MakeVersion("v", 10, 0, c));
  EXPECT_TRUE(row.ResolveLastWriterWins().empty());
  EXPECT_TRUE(row.Latest().has_value());
}

TEST(MvccRowTest, TombstoneIsAVersion) {
  MvccRow row;
  VectorClock c1;
  c1.Increment(0);
  row.Apply(MakeVersion("v", 10, 0, c1));
  VectorClock c2 = c1;
  c2.Increment(0);
  Version del = MakeVersion("", 20, 0, c2);
  del.tombstone = true;
  const auto superseded = row.Apply(del);
  ASSERT_EQ(superseded.size(), 1u);
  ASSERT_TRUE(row.Latest().has_value());
  EXPECT_TRUE(row.Latest()->tombstone);
}

TEST(MvccRowTest, EmptyRowHasNoLatest) {
  MvccRow row;
  EXPECT_FALSE(row.Latest().has_value());
}

}  // namespace
}  // namespace scalia::store
