#include "store/mapreduce.h"

#include <gtest/gtest.h>

namespace scalia::store {
namespace {

TEST(MapReduceTest, WordCountStyleAggregation) {
  KvTable table;
  // Rows: "class|object" -> usage value.
  table.Put("alpha|o1", "3", 0, 1);
  table.Put("alpha|o2", "4", 0, 1);
  table.Put("beta|o3", "10", 0, 1);
  table.Put("beta|o4", "20", 0, 1);
  table.Put("gamma|o5", "7", 0, 1);

  MapReduceJob<std::string, double> job(
      [](const std::string& key, const Version& v,
         const std::function<void(std::string, double)>& emit) {
        const auto sep = key.find('|');
        emit(key.substr(0, sep), std::stod(v.value));
      },
      [](const std::string&, std::vector<double>& values) {
        double sum = 0;
        for (double d : values) sum += d;
        return sum;
      });

  common::ThreadPool pool(4);
  const auto result = job.Run(table, pool);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result.at("alpha"), 7.0);
  EXPECT_DOUBLE_EQ(result.at("beta"), 30.0);
  EXPECT_DOUBLE_EQ(result.at("gamma"), 7.0);
}

TEST(MapReduceTest, TombstonedRowsExcluded) {
  KvTable table;
  table.Put("k1", "1", 0, 1);
  table.Put("k2", "1", 0, 1);
  table.Delete("k2", 0, 2);

  MapReduceJob<std::string, int> job(
      [](const std::string&, const Version&,
         const std::function<void(std::string, int)>& emit) {
        emit("all", 1);
      },
      [](const std::string&, std::vector<int>& values) {
        return static_cast<int>(values.size());
      });
  common::ThreadPool pool(2);
  const auto result = job.Run(table, pool);
  EXPECT_EQ(result.at("all"), 1);
}

TEST(MapReduceTest, LargeTableParallelConsistency) {
  KvTable table;
  long long expected = 0;
  for (int i = 0; i < 5000; ++i) {
    table.Put("row" + std::to_string(i), std::to_string(i), 0, 1);
    expected += i;
  }
  MapReduceJob<int, long long> job(
      [](const std::string&, const Version& v,
         const std::function<void(int, long long)>& emit) {
        emit(0, std::stoll(v.value));
      },
      [](const int&, std::vector<long long>& values) {
        long long sum = 0;
        for (long long d : values) sum += d;
        return sum;
      });
  common::ThreadPool pool(8);
  // Run twice: results must be identical regardless of scheduling.
  const auto r1 = job.Run(table, pool);
  const auto r2 = job.Run(table, pool);
  EXPECT_EQ(r1.at(0), expected);
  EXPECT_EQ(r2.at(0), expected);
}

TEST(MapReduceTest, EmptyTableYieldsEmptyResult) {
  KvTable table;
  MapReduceJob<int, int> job(
      [](const std::string&, const Version&,
         const std::function<void(int, int)>& emit) { emit(0, 1); },
      [](const int&, std::vector<int>& v) { return static_cast<int>(v.size()); });
  common::ThreadPool pool(2);
  EXPECT_TRUE(job.Run(table, pool).empty());
}

}  // namespace
}  // namespace scalia::store
