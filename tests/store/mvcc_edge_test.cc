// Edge cases the durability subsystem's recovery path leans on: conflict
// ordering must be deterministic regardless of apply order (checkpoint
// restore + WAL replay re-applies versions in a different order than the
// original run), clock merges must be idempotent (restored rows merge their
// clock again on the next write), and reads after compaction must keep
// returning the resolved winner even when stale versions resurface.
#include <gtest/gtest.h>

#include "store/kv_table.h"
#include "store/mvcc.h"
#include "store/vector_clock.h"

namespace scalia::store {
namespace {

Version MakeVersion(std::string value, common::SimTime ts, ReplicaId origin,
                    VectorClock clock, bool tombstone = false) {
  Version v;
  v.value = std::move(value);
  v.timestamp = ts;
  v.origin = origin;
  v.clock = std::move(clock);
  v.tombstone = tombstone;
  return v;
}

// ---- concurrent-write conflict ordering --------------------------------

TEST(MvccEdgeTest, ConflictResolutionIsOrderIndependent) {
  // The same two concurrent versions, applied in both orders, must leave
  // the row in the same resolved state.
  VectorClock c0, c1;
  c0.Increment(0);
  c1.Increment(1);
  const auto v0 = MakeVersion("from-dc0", 100, 0, c0);
  const auto v1 = MakeVersion("from-dc1", 100, 1, c1);

  MvccRow forward, backward;
  forward.Apply(v0);
  forward.Apply(v1);
  backward.Apply(v1);
  backward.Apply(v0);
  EXPECT_TRUE(forward.HasConflict());
  EXPECT_TRUE(backward.HasConflict());

  forward.ResolveLastWriterWins();
  backward.ResolveLastWriterWins();
  ASSERT_TRUE(forward.Latest().has_value());
  ASSERT_TRUE(backward.Latest().has_value());
  // Equal timestamps tie-break on origin, so both orders pick dc1.
  EXPECT_EQ(forward.Latest()->value, "from-dc1");
  EXPECT_EQ(backward.Latest()->value, forward.Latest()->value);
}

TEST(MvccEdgeTest, ThreeWayConflictKeepsEveryConcurrentVersion) {
  MvccRow row;
  for (ReplicaId r = 0; r < 3; ++r) {
    VectorClock c;
    c.Increment(r);
    EXPECT_TRUE(row.Apply(MakeVersion("v" + std::to_string(r), 100 + r, r, c))
                    .empty());
  }
  EXPECT_EQ(row.live().size(), 3u);
  const auto losers = row.ResolveLastWriterWins();
  EXPECT_EQ(losers.size(), 2u);  // both non-winners reported for chunk GC
  ASSERT_TRUE(row.Latest().has_value());
  EXPECT_EQ(row.Latest()->value, "v2");  // freshest timestamp wins
}

// ---- clock merge idempotence -------------------------------------------

TEST(MvccEdgeTest, ClockMergeIsIdempotent) {
  VectorClock a;
  a.Increment(0);
  a.Increment(0);
  a.Increment(2);
  const VectorClock before = a;
  a.Merge(a);  // self-merge: no change
  EXPECT_EQ(a, before);

  VectorClock b;
  b.Increment(1);
  a.Merge(b);
  const VectorClock once = a;
  a.Merge(b);  // re-merging the same clock: no change
  EXPECT_EQ(a, once);
  EXPECT_EQ(a.Compare(once), ClockOrder::kEqual);
}

TEST(MvccEdgeTest, ClockMergeIsCommutative) {
  VectorClock a, b;
  a.Increment(0);
  a.Increment(1);
  b.Increment(1);
  b.Increment(1);
  b.Increment(2);
  VectorClock ab = a;
  ab.Merge(b);
  VectorClock ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(MvccEdgeTest, DuplicateReplicationAfterMergeStaysSingleVersion) {
  // Replay can deliver the same version twice (checkpoint + WAL overlap
  // guard is LSN-based, but replication records have no LSN); an kEqual
  // clock must not fork a conflict.
  MvccRow row;
  VectorClock c;
  c.Increment(0);
  const auto v = MakeVersion("dup", 50, 0, c);
  row.Apply(v);
  const auto superseded = row.Apply(v);
  EXPECT_EQ(row.live().size(), 1u);
  EXPECT_TRUE(superseded.empty());  // the duplicate is dropped, not a loser
  EXPECT_FALSE(row.HasConflict());
}

// ---- read-at-snapshot after compaction ---------------------------------

TEST(MvccEdgeTest, ReadAfterCompactionIgnoresResurfacedStaleVersion) {
  MvccRow row;
  VectorClock c1;
  c1.Increment(0);
  const auto stale = MakeVersion("stale", 10, 0, c1);
  row.Apply(stale);

  VectorClock c2 = c1;
  c2.Increment(1);
  row.Apply(MakeVersion("fresh", 20, 1, c2));
  row.ResolveLastWriterWins();  // compaction: one live version remains
  ASSERT_EQ(row.live().size(), 1u);

  // A delayed replication record re-delivers the stale version after
  // compaction; it is causally dominated and must be discarded on arrival
  // without superseding anything.
  const auto superseded = row.Apply(stale);
  EXPECT_TRUE(superseded.empty());
  ASSERT_TRUE(row.Latest().has_value());
  EXPECT_EQ(row.Latest()->value, "fresh");
  EXPECT_EQ(row.live().size(), 1u);
}

TEST(MvccEdgeTest, KvTableReadAfterResolveConflict) {
  KvTable table;
  // Two datacenters write concurrently (replicated Apply, not Put, so the
  // clocks stay concurrent).
  VectorClock c0, c1;
  c0.Increment(0);
  c1.Increment(1);
  table.Apply("k", MakeVersion("dc0", 100, 0, c0));
  table.Apply("k", MakeVersion("dc1", 105, 1, c1));

  auto conflicted = table.Get("k");
  ASSERT_TRUE(conflicted.has_value());
  EXPECT_TRUE(conflicted->conflict);
  EXPECT_EQ(conflicted->value, "dc1");  // freshest even before resolution

  const auto losers = table.ResolveConflict("k");
  ASSERT_EQ(losers.size(), 1u);
  EXPECT_EQ(losers[0].value, "dc0");

  // Post-compaction reads: a clean snapshot, stable across repetition.
  for (int i = 0; i < 3; ++i) {
    auto read = table.Get("k");
    ASSERT_TRUE(read.has_value());
    EXPECT_FALSE(read->conflict);
    EXPECT_EQ(read->value, "dc1");
    EXPECT_EQ(read->timestamp, 105);
  }
  EXPECT_EQ(table.LiveVersions("k").size(), 1u);
}

TEST(MvccEdgeTest, TombstoneWinsCompactionAndStaysDeleted) {
  KvTable table;
  table.Put("k", "alive", 0, 100);
  VectorClock concurrent;
  concurrent.Increment(1);
  table.Apply("k", MakeVersion("", 110, 1, concurrent, /*tombstone=*/true));
  table.ResolveConflict("k");
  EXPECT_FALSE(table.Get("k").has_value());  // deleted for normal readers
  auto with_tombstones = table.Get("k", /*include_tombstones=*/true);
  ASSERT_TRUE(with_tombstones.has_value());
  EXPECT_TRUE(with_tombstones->tombstone);
}

}  // namespace
}  // namespace scalia::store
