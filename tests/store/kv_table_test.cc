#include "store/kv_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace scalia::store {
namespace {

TEST(KvTableTest, PutGetRoundTrip) {
  KvTable table;
  table.Put("key", "value", 0, 100);
  auto got = table.Get("key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->value, "value");
  EXPECT_EQ(got->timestamp, 100);
  EXPECT_FALSE(got->conflict);
}

TEST(KvTableTest, MissingKeyIsNullopt) {
  KvTable table;
  EXPECT_FALSE(table.Get("missing").has_value());
}

TEST(KvTableTest, SequentialUpdatesSupersede) {
  KvTable table;
  table.Put("k", "v1", 0, 1);
  const auto superseded = table.Put("k", "v2", 0, 2);
  ASSERT_EQ(superseded.size(), 1u);
  EXPECT_EQ(superseded[0].value, "v1");
  EXPECT_EQ(table.Get("k")->value, "v2");
}

TEST(KvTableTest, CrossReplicaSequentialUpdatesSupersede) {
  // The register semantics absorb the live clocks, so a later write at a
  // *different* replica that has seen the current state still dominates.
  KvTable table;
  table.Put("k", "v1", 0, 1);
  table.Put("k", "v2", 1, 2);
  EXPECT_EQ(table.Get("k")->value, "v2");
  EXPECT_FALSE(table.Get("k")->conflict);
}

TEST(KvTableTest, ConcurrentRemoteVersionsConflict) {
  KvTable table;
  table.Put("k", "local", 0, 10);
  // A replication record from a replica that had NOT seen the local write.
  Version remote;
  remote.value = "remote";
  remote.timestamp = 12;
  remote.origin = 1;
  remote.clock.Increment(1);
  table.Apply("k", remote);
  auto got = table.Get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->conflict);
  EXPECT_EQ(table.LiveVersions("k").size(), 2u);

  const auto losers = table.ResolveConflict("k");
  ASSERT_EQ(losers.size(), 1u);
  EXPECT_EQ(losers[0].value, "local");
  EXPECT_EQ(table.Get("k")->value, "remote");
  EXPECT_FALSE(table.Get("k")->conflict);
}

TEST(KvTableTest, DeleteTombstones) {
  KvTable table;
  table.Put("k", "v", 0, 1);
  const auto superseded = table.Delete("k", 0, 2);
  ASSERT_EQ(superseded.size(), 1u);
  EXPECT_FALSE(table.Get("k").has_value());
  auto with_tombstone = table.Get("k", /*include_tombstones=*/true);
  ASSERT_TRUE(with_tombstone.has_value());
  EXPECT_TRUE(with_tombstone->tombstone);
}

TEST(KvTableTest, ScanKeysSortedAndFiltered) {
  KvTable table;
  table.Put("b", "1", 0, 1);
  table.Put("a", "2", 0, 1);
  table.Put("ab", "3", 0, 1);
  table.Put("c", "4", 0, 1);
  table.Delete("c", 0, 2);
  EXPECT_EQ(table.ScanKeys(""), (std::vector<std::string>{"a", "ab", "b"}));
  EXPECT_EQ(table.ScanKeys("a"), (std::vector<std::string>{"a", "ab"}));
}

TEST(KvTableTest, KeyCountExcludesTombstones) {
  KvTable table;
  table.Put("a", "1", 0, 1);
  table.Put("b", "2", 0, 1);
  table.Delete("a", 0, 2);
  EXPECT_EQ(table.KeyCount(), 1u);
}

TEST(KvTableTest, VisitShardCoversEverything) {
  KvTable table;
  for (int i = 0; i < 100; ++i) {
    table.Put("key" + std::to_string(i), "v", 0, 1);
  }
  std::size_t visited = 0;
  for (std::size_t s = 0; s < KvTable::kShards; ++s) {
    table.VisitShard(s, [&](const std::string&, const Version&) { ++visited; });
  }
  EXPECT_EQ(visited, 100u);
}

TEST(KvTableTest, ConcurrentWritersDontCorrupt) {
  KvTable table;
  constexpr int kThreads = 4;
  constexpr int kKeys = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (int i = 0; i < kKeys; ++i) {
        table.Put("key" + std::to_string(i),
                  "value-from-" + std::to_string(t),
                  static_cast<ReplicaId>(t), t * 1000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.KeyCount(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    auto got = table.Get("key" + std::to_string(i));
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->value.rfind("value-from-", 0) == 0);
  }
}

}  // namespace
}  // namespace scalia::store
