#include "store/replicated_store.h"

#include <gtest/gtest.h>

namespace scalia::store {
namespace {

TEST(ReplicatedStoreTest, WriteReplicatesToAllDatacenters) {
  ReplicatedStore store(3);
  ASSERT_TRUE(store.Put(0, "meta", "k", "v", 100).ok());
  // Before pumping, only the origin sees the write.
  EXPECT_TRUE(store.Get(0, "meta", "k").ok());
  EXPECT_FALSE(store.Get(1, "meta", "k").ok());
  EXPECT_EQ(store.PendingReplication(), 2u);

  store.SyncAll();
  for (ReplicaId dc = 0; dc < 3; ++dc) {
    auto got = store.Get(dc, "meta", "k");
    ASSERT_TRUE(got.ok()) << "dc " << dc;
    EXPECT_EQ(got->value, "v");
  }
}

TEST(ReplicatedStoreTest, DownDatacenterRejectsOperations) {
  ReplicatedStore store(2);
  store.SetDatacenterUp(1, false);
  EXPECT_FALSE(store.IsDatacenterUp(1));
  EXPECT_EQ(store.Put(1, "meta", "k", "v", 1).status().code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(store.Get(1, "meta", "k").status().code(),
            common::StatusCode::kUnavailable);
  // The other DC keeps serving (§III-D.3: reads can always be served).
  EXPECT_TRUE(store.Put(0, "meta", "k", "v", 1).ok());
}

TEST(ReplicatedStoreTest, EventualConsistencyAfterRecovery) {
  ReplicatedStore store(2);
  store.SetDatacenterUp(1, false);
  ASSERT_TRUE(store.Put(0, "meta", "k1", "v1", 1).ok());
  ASSERT_TRUE(store.Put(0, "meta", "k2", "v2", 2).ok());
  store.SyncAll();  // cannot deliver to the down DC
  EXPECT_EQ(store.PendingReplication(), 2u);

  store.SetDatacenterUp(1, true);
  store.SyncAll();
  EXPECT_EQ(store.PendingReplication(), 0u);
  EXPECT_EQ(store.Get(1, "meta", "k1")->value, "v1");
  EXPECT_EQ(store.Get(1, "meta", "k2")->value, "v2");
}

TEST(ReplicatedStoreTest, ConcurrentWritesDetectedAndResolved) {
  // Fig. 10's scenario: the same row updated concurrently in two DCs.
  ReplicatedStore store(2);
  ASSERT_TRUE(store.Put(0, "meta", "row", "from-dc0", 10).ok());
  ASSERT_TRUE(store.Put(1, "meta", "row", "from-dc1", 12).ok());
  store.SyncAll();

  auto read0 = store.Get(0, "meta", "row");
  ASSERT_TRUE(read0.ok());
  EXPECT_TRUE(read0->conflict);

  auto losers = store.Resolve(0, "meta", "row");
  ASSERT_TRUE(losers.ok());
  ASSERT_EQ(losers->size(), 1u);
  EXPECT_EQ((*losers)[0].value, "from-dc0");  // older timestamp loses

  store.SyncAll();
  for (ReplicaId dc = 0; dc < 2; ++dc) {
    auto read = store.Get(dc, "meta", "row");
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->value, "from-dc1");
    EXPECT_FALSE(read->conflict) << "dc " << dc;
  }
}

TEST(ReplicatedStoreTest, DeleteReplicates) {
  ReplicatedStore store(2);
  ASSERT_TRUE(store.Put(0, "meta", "k", "v", 1).ok());
  store.SyncAll();
  ASSERT_TRUE(store.Delete(1, "meta", "k", 2).ok());
  store.SyncAll();
  EXPECT_FALSE(store.Get(0, "meta", "k").ok());
  EXPECT_FALSE(store.Get(1, "meta", "k").ok());
}

TEST(ReplicatedStoreTest, TablesAreIndependent) {
  ReplicatedStore store(1);
  ASSERT_TRUE(store.Put(0, "metadata", "k", "meta-v", 1).ok());
  ASSERT_TRUE(store.Put(0, "stats", "k", "stats-v", 1).ok());
  EXPECT_EQ(store.Get(0, "metadata", "k")->value, "meta-v");
  EXPECT_EQ(store.Get(0, "stats", "k")->value, "stats-v");
}

TEST(ReplicatedStoreTest, PumpBoundedDelivery) {
  ReplicatedStore store(2);
  for (int i = 0; i < 10; ++i) {
    std::string key = "k";
    key += std::to_string(i);
    ASSERT_TRUE(store.Put(0, "t", key, "v", i).ok());
  }
  EXPECT_EQ(store.PendingReplication(), 10u);
  EXPECT_EQ(store.Pump(3), 3u);
  EXPECT_EQ(store.PendingReplication(), 7u);
  store.SyncAll();
  EXPECT_EQ(store.PendingReplication(), 0u);
}

TEST(ReplicatedStoreTest, TableAccessors) {
  ReplicatedStore store(2);
  ASSERT_TRUE(store.Put(0, "t", "k", "v", 1).ok());
  EXPECT_NE(store.Table(0, "t"), nullptr);
  EXPECT_EQ(store.Table(1, "t"), nullptr);  // not yet created at dc1
  store.SyncAll();
  EXPECT_NE(store.Table(1, "t"), nullptr);
  EXPECT_EQ(store.Table(0, "absent"), nullptr);
}

}  // namespace
}  // namespace scalia::store
