// CAS-on-version conflict paths (PR 4): the conditional-apply primitive the
// engine's migration/repair commits ride on.  Covers the typed conflict
// result at every layer (MvccRow, KvTable, ReplicatedStore), concurrent
// ApplyIfLatest from two replicas, conflict-then-resolve ordering, and the
// idempotence the staged-chunk GC after an aborted migration relies on.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "store/kv_table.h"
#include "store/mvcc.h"
#include "store/replicated_store.h"

namespace scalia::store {
namespace {

TEST(CasConflictTest, CommitsAgainstUnchangedRow) {
  KvTable table;
  table.Put("k", "v1", /*replica=*/0, /*timestamp=*/10);
  const auto read = table.Get("k");
  ASSERT_TRUE(read.has_value());

  const CasOutcome outcome =
      table.PutIfLatest("k", "v2", /*replica=*/0, /*timestamp=*/20,
                        read->clock);
  EXPECT_TRUE(outcome.applied);
  ASSERT_EQ(outcome.superseded.size(), 1u);
  EXPECT_EQ(outcome.superseded[0].value, "v1");
  EXPECT_FALSE(outcome.conflicting.has_value());
  // The committed version's clock strictly advances past the expectation.
  ASSERT_TRUE(outcome.committed.has_value());
  EXPECT_FALSE(outcome.committed->clock.EqualTo(read->clock));
  EXPECT_TRUE(outcome.committed->clock.DominatesOrEquals(read->clock));
  EXPECT_EQ(table.Get("k")->value, "v2");
}

TEST(CasConflictTest, FailsAfterFresherWriteLanded) {
  KvTable table;
  table.Put("k", "v1", 0, 10);
  const auto snapshot = table.Get("k");
  ASSERT_TRUE(snapshot.has_value());

  // A foreground Put lands after the snapshot — the CAS must lose, report
  // the winner, and leave the row untouched.
  table.Put("k", "acked", 0, 15);
  const CasOutcome outcome =
      table.PutIfLatest("k", "stale-migration", 0, 20, snapshot->clock);
  EXPECT_FALSE(outcome.applied);
  EXPECT_TRUE(outcome.superseded.empty());
  ASSERT_TRUE(outcome.conflicting.has_value());
  EXPECT_EQ(outcome.conflicting->value, "acked");
  EXPECT_EQ(table.Get("k")->value, "acked");
}

TEST(CasConflictTest, FailsAfterConcurrentTombstone) {
  KvTable table;
  table.Put("k", "v1", 0, 10);
  const auto snapshot = table.Get("k");
  ASSERT_TRUE(snapshot.has_value());

  table.Delete("k", 0, 15);
  const CasOutcome outcome =
      table.PutIfLatest("k", "resurrection", 0, 20, snapshot->clock);
  EXPECT_FALSE(outcome.applied);
  ASSERT_TRUE(outcome.conflicting.has_value());
  EXPECT_TRUE(outcome.conflicting->tombstone);
  // The deletion stands: no readable value.
  EXPECT_FALSE(table.Get("k").has_value());
}

TEST(CasConflictTest, EmptyRowCommitsAgainstEmptyExpectation) {
  KvTable table;
  const CasOutcome outcome =
      table.PutIfLatest("fresh", "v1", 0, 10, VectorClock{});
  EXPECT_TRUE(outcome.applied);
  EXPECT_TRUE(outcome.superseded.empty());
  EXPECT_EQ(table.Get("fresh")->value, "v1");
}

TEST(CasConflictTest, ExactlyOneOfManyConcurrentCasCommits) {
  KvTable table;
  table.Put("k", "base", 0, 10);
  const auto snapshot = table.Get("k");
  ASSERT_TRUE(snapshot.has_value());

  // N threads race ApplyIfLatest with the *same* expected version: the
  // shard lock serializes them, the first wins, every later one observes
  // the winner's fresher clock and fails.
  constexpr int kThreads = 8;
  std::atomic<int> applied{0};
  std::vector<std::thread> racers;
  racers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    racers.emplace_back([&table, &snapshot, &applied, t] {
      const CasOutcome outcome = table.PutIfLatest(
          "k", "winner-" + std::to_string(t), /*replica=*/0,
          /*timestamp=*/static_cast<common::SimTime>(100 + t),
          snapshot->clock);
      if (outcome.applied) applied.fetch_add(1);
    });
  }
  for (auto& r : racers) r.join();
  EXPECT_EQ(applied.load(), 1);
  EXPECT_EQ(table.LiveVersions("k").size(), 1u);
}

TEST(CasConflictTest, ConcurrentReplicaVersionsBlockUntilResolved) {
  KvTable table;
  // Two replicas write concurrently (neither clock dominates): the row
  // holds both, and a CAS against either snapshot must fail — committing
  // would silently drop the other replica's write.
  Version a;
  a.value = "from-dc0";
  a.timestamp = 10;
  a.origin = 0;
  a.clock.Increment(0);
  Version b;
  b.value = "from-dc1";
  b.timestamp = 11;
  b.origin = 1;
  b.clock.Increment(1);
  table.Apply("k", a);
  table.Apply("k", b);
  ASSERT_EQ(table.LiveVersions("k").size(), 2u);

  EXPECT_FALSE(table.ApplyIfLatest("k", a.clock, a).applied);
  EXPECT_FALSE(table.ApplyIfLatest("k", b.clock, b).applied);

  // Conflict-then-resolve ordering: after last-writer-wins resolution the
  // winner's clock absorbs the losers', and a CAS against the *resolved*
  // snapshot commits.
  const auto losers = table.ResolveConflict("k");
  EXPECT_EQ(losers.size(), 1u);
  const auto resolved = table.Get("k");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->value, "from-dc1");  // fresher timestamp won
  const CasOutcome outcome =
      table.PutIfLatest("k", "post-resolve", 0, 20, resolved->clock);
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(table.Get("k")->value, "post-resolve");
}

TEST(CasConflictTest, ReplicatedStoreCommitReplicatesAndConflictDoesNot) {
  ReplicatedStore db(2);
  ASSERT_TRUE(db.Put(0, "metadata", "k", "v1", 10).ok());
  db.SyncAll();
  const auto snapshot = db.Get(0, "metadata", "k");
  ASSERT_TRUE(snapshot.ok());

  // Applied CAS replicates like a Put.
  auto committed = db.PutIfLatest(0, "metadata", "k", "v2", 20,
                                  snapshot->clock);
  ASSERT_TRUE(committed.ok());
  EXPECT_TRUE(committed->applied);
  db.SyncAll();
  EXPECT_EQ(db.Get(1, "metadata", "k")->value, "v2");

  // A CAS against the now-stale snapshot fails and enqueues nothing.
  const std::size_t pending_before = db.PendingReplication();
  auto lost = db.PutIfLatest(0, "metadata", "k", "v3", 30, snapshot->clock);
  ASSERT_TRUE(lost.ok());
  EXPECT_FALSE(lost->applied);
  ASSERT_TRUE(lost->conflicting.has_value());
  EXPECT_EQ(lost->conflicting->value, "v2");
  EXPECT_EQ(db.PendingReplication(), pending_before);
  EXPECT_EQ(db.Get(0, "metadata", "k")->value, "v2");
}

TEST(CasConflictTest, ReplicatedStoreCasAtDownDatacenterIsUnavailable) {
  ReplicatedStore db(2);
  ASSERT_TRUE(db.Put(0, "metadata", "k", "v1", 10).ok());
  const auto snapshot = db.Get(0, "metadata", "k");
  ASSERT_TRUE(snapshot.ok());
  db.SetDatacenterUp(0, false);
  auto outcome = db.PutIfLatest(0, "metadata", "k", "v2", 20,
                                snapshot->clock);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), common::StatusCode::kUnavailable);
}

TEST(CasConflictTest, RepeatedLostCasIsIdempotent) {
  // The engine GCs staged chunks after every aborted commit; the store side
  // of that abort must be re-runnable without disturbing the winner (e.g. a
  // crashed-and-retried migration aborting twice).
  KvTable table;
  table.Put("k", "base", 0, 10);
  const auto snapshot = table.Get("k");
  ASSERT_TRUE(snapshot.has_value());
  table.Put("k", "acked", 0, 15);

  for (int attempt = 0; attempt < 3; ++attempt) {
    const CasOutcome outcome =
        table.PutIfLatest("k", "stale", 0, 20, snapshot->clock);
    EXPECT_FALSE(outcome.applied);
    EXPECT_EQ(table.Get("k")->value, "acked");
    EXPECT_EQ(table.LiveVersions("k").size(), 1u);
  }
}

TEST(CasConflictTest, MvccRowConflictLeavesRowUntouched) {
  MvccRow row;
  Version v1;
  v1.value = "v1";
  v1.timestamp = 10;
  v1.origin = 0;
  v1.clock.Increment(0);
  row.Apply(v1);
  // Stale expectation: empty clock while v1 is live.
  Version v2;
  v2.value = "v2";
  v2.timestamp = 20;
  v2.origin = 1;
  const CasOutcome outcome = row.ApplyIfLatest(VectorClock{}, v2);
  EXPECT_FALSE(outcome.applied);
  ASSERT_EQ(row.live().size(), 1u);
  EXPECT_EQ(row.live()[0].value, "v1");
}

}  // namespace
}  // namespace scalia::store
