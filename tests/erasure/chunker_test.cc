#include "erasure/chunker.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scalia::erasure {
namespace {

std::string RandomObject(std::size_t size, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string s(size, '\0');
  for (auto& c : s) c = static_cast<char>(rng() & 0xff);
  return s;
}

struct SplitCase {
  std::size_t size;
  std::size_t m;
  std::size_t n;
};

class ChunkerRoundTripTest : public ::testing::TestWithParam<SplitCase> {};

TEST_P(ChunkerRoundTripTest, SplitJoinRoundTrip) {
  const auto [size, m, n] = GetParam();
  const std::string object = RandomObject(size, size + m * 31 + n);
  auto chunks = Chunker::Split(object, m, n);
  ASSERT_TRUE(chunks.ok());
  ASSERT_EQ(chunks->size(), n);
  // Every chunk has the advertised payload size.
  const common::Bytes expected_payload = std::max<common::Bytes>(
      1, Chunker::ChunkPayloadSize(size, m));
  for (const auto& c : *chunks) {
    EXPECT_EQ(c.size(), expected_payload);
    EXPECT_EQ(c.m, m);
    EXPECT_EQ(c.n, n);
    EXPECT_EQ(c.object_size, size);
  }
  // Join from the first m chunks and from the last m chunks.
  std::vector<Chunk> head(chunks->begin(),
                          chunks->begin() + static_cast<long>(m));
  auto joined = Chunker::Join(head);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, object);

  std::vector<Chunk> tail(chunks->end() - static_cast<long>(m),
                          chunks->end());
  auto joined_tail = Chunker::Join(tail);
  ASSERT_TRUE(joined_tail.ok());
  EXPECT_EQ(*joined_tail, object);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndShapes, ChunkerRoundTripTest,
    ::testing::Values(SplitCase{0, 1, 2}, SplitCase{1, 1, 2},
                      SplitCase{1, 3, 5}, SplitCase{10, 3, 4},
                      SplitCase{1000, 1, 1}, SplitCase{1000, 4, 5},
                      SplitCase{65537, 3, 4}, SplitCase{250000, 2, 3},
                      SplitCase{1000000, 4, 5}, SplitCase{7, 5, 8}),
    [](const ::testing::TestParamInfo<SplitCase>& tpi) {
      std::string name = "s";
      name += std::to_string(tpi.param.size);
      name += 'm';
      name += std::to_string(tpi.param.m);
      name += 'n';
      name += std::to_string(tpi.param.n);
      return name;
    });

TEST(ChunkerTest, ChunkPayloadSizeCeil) {
  EXPECT_EQ(Chunker::ChunkPayloadSize(10, 3), 4u);
  EXPECT_EQ(Chunker::ChunkPayloadSize(9, 3), 3u);
  EXPECT_EQ(Chunker::ChunkPayloadSize(1, 4), 1u);
}

TEST(ChunkerTest, CorruptedPayloadDetected) {
  const std::string object = RandomObject(5000, 42);
  auto chunks = Chunker::Split(object, 2, 4);
  ASSERT_TRUE(chunks.ok());
  (*chunks)[0].payload[10] ^= 0xff;
  std::vector<Chunk> subset = {(*chunks)[0], (*chunks)[1]};
  auto joined = Chunker::Join(subset);
  EXPECT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), common::StatusCode::kInternal);
}

TEST(ChunkerTest, MixedObjectsRejected) {
  auto a = Chunker::Split(RandomObject(100, 1), 2, 3);
  auto b = Chunker::Split(RandomObject(100, 2), 2, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same shape but different object checksums/payloads: shard checksum of
  // each is fine, but object checksum differs -> decode mismatch reported.
  std::vector<Chunk> mixed = {(*a)[0], (*b)[1]};
  auto joined = Chunker::Join(mixed);
  EXPECT_FALSE(joined.ok());
}

TEST(ChunkerTest, JoinNeedsChunks) {
  EXPECT_FALSE(Chunker::Join({}).ok());
}

TEST(ChunkerTest, SerializeDeserializeRoundTrip) {
  const std::string object = RandomObject(1234, 3);
  auto chunks = Chunker::Split(object, 3, 5);
  ASSERT_TRUE(chunks.ok());
  for (const auto& c : *chunks) {
    auto parsed = Chunk::Deserialize(c.Serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->index, c.index);
    EXPECT_EQ(parsed->m, c.m);
    EXPECT_EQ(parsed->n, c.n);
    EXPECT_EQ(parsed->object_size, c.object_size);
    EXPECT_EQ(parsed->payload, c.payload);
    EXPECT_EQ(parsed->shard_checksum, c.shard_checksum);
    EXPECT_EQ(parsed->object_checksum, c.object_checksum);
  }
}

TEST(ChunkerTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Chunk::Deserialize("").ok());
  EXPECT_FALSE(Chunk::Deserialize("short").ok());
  std::string bad(100, 'x');
  EXPECT_FALSE(Chunk::Deserialize(bad).ok());
}

TEST(ChunkerTest, RepairRebuildsChunk) {
  const std::string object = RandomObject(4096, 4);
  auto chunks = Chunker::Split(object, 3, 5);
  ASSERT_TRUE(chunks.ok());
  // Chunk 4 is lost; rebuild from chunks {0, 2, 3}.
  std::vector<Chunk> survivors = {(*chunks)[0], (*chunks)[2], (*chunks)[3]};
  auto rebuilt = Chunker::Repair(survivors, 4);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->payload, (*chunks)[4].payload);
  EXPECT_EQ(rebuilt->index, 4u);
  EXPECT_EQ(rebuilt->shard_checksum, (*chunks)[4].shard_checksum);

  // The repaired stripe still reconstructs the object.
  std::vector<Chunk> with_repaired = {(*chunks)[1], *rebuilt, (*chunks)[0]};
  auto joined = Chunker::Join(with_repaired);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(*joined, object);
}

TEST(ChunkerTest, InvalidShapeRejected) {
  EXPECT_FALSE(Chunker::Split("data", 0, 3).ok());
  EXPECT_FALSE(Chunker::Split("data", 4, 3).ok());
}

}  // namespace
}  // namespace scalia::erasure
