#include "erasure/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "erasure/gf256.h"

namespace scalia::erasure {
namespace {

GfMatrix RandomMatrix(std::size_t n, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  GfMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.At(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
    }
  }
  return m;
}

TEST(GfMatrixTest, IdentityMultiplication) {
  const GfMatrix id = GfMatrix::Identity(4);
  const GfMatrix m = RandomMatrix(4, 1);
  EXPECT_EQ(id.Multiply(m), m);
  EXPECT_EQ(m.Multiply(id), m);
}

TEST(GfMatrixTest, IdentityInverseIsIdentity) {
  const GfMatrix id = GfMatrix::Identity(5);
  auto inv = id.Inverted();
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*inv, id);
}

TEST(GfMatrixTest, InverseRoundTripProperty) {
  // Random square matrices are invertible with probability ~0.996 over
  // GF(256); skip the singular draws.
  int verified = 0;
  for (std::uint64_t seed = 0; seed < 40 && verified < 25; ++seed) {
    for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
      const GfMatrix m = RandomMatrix(n, seed * 10 + n);
      auto inv = m.Inverted();
      if (!inv.ok()) continue;
      EXPECT_EQ(m.Multiply(*inv), GfMatrix::Identity(n));
      EXPECT_EQ(inv->Multiply(m), GfMatrix::Identity(n));
      ++verified;
    }
  }
  EXPECT_GE(verified, 25);
}

TEST(GfMatrixTest, SingularMatrixReported) {
  GfMatrix m(2, 2);  // all zeros
  auto inv = m.Inverted();
  EXPECT_FALSE(inv.ok());
  EXPECT_EQ(inv.status().code(), common::StatusCode::kInvalidArgument);

  // Duplicate rows are singular too.
  GfMatrix dup(2, 2);
  dup.At(0, 0) = 3;
  dup.At(0, 1) = 7;
  dup.At(1, 0) = 3;
  dup.At(1, 1) = 7;
  EXPECT_FALSE(dup.Inverted().ok());
}

TEST(GfMatrixTest, NonSquareInversionRejected) {
  GfMatrix m(2, 3);
  EXPECT_FALSE(m.Inverted().ok());
}

TEST(GfMatrixTest, SelectRows) {
  GfMatrix m(3, 2);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      m.At(r, c) = static_cast<std::uint8_t>(10 * r + c);
    }
  }
  const GfMatrix sel = m.SelectRows({2, 0});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_EQ(sel.At(0, 0), 20);
  EXPECT_EQ(sel.At(1, 1), 1);
}

struct CauchyCase {
  std::size_t m;
  std::size_t n;
};

class CauchyMatrixTest : public ::testing::TestWithParam<CauchyCase> {};

// The MDS property: *every* m-subset of the n encoding rows must be
// invertible — the paper's "any m-subset of the n chunks contains a
// complete copy of the data" (Fig. 1).
TEST_P(CauchyMatrixTest, EveryRowSubsetInvertible) {
  const auto [m, n] = GetParam();
  const GfMatrix enc = BuildCauchyEncodingMatrix(m, n);
  ASSERT_EQ(enc.rows(), n);
  ASSERT_EQ(enc.cols(), m);

  // Enumerate all m-subsets of rows.
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;
  for (;;) {
    auto sub = enc.SelectRows(idx);
    EXPECT_TRUE(sub.Inverted().ok())
        << "singular submatrix for m=" << m << " n=" << n;
    // next combination
    std::size_t i = m;
    while (i-- > 0) {
      if (idx[i] != i + n - m) {
        ++idx[i];
        for (std::size_t j = i + 1; j < m; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CauchyMatrixTest,
    ::testing::Values(CauchyCase{1, 2}, CauchyCase{1, 4}, CauchyCase{2, 3},
                      CauchyCase{2, 4}, CauchyCase{3, 4}, CauchyCase{3, 5},
                      CauchyCase{4, 5}, CauchyCase{4, 8}, CauchyCase{5, 9},
                      CauchyCase{2, 10}),
    [](const ::testing::TestParamInfo<CauchyCase>& tpi) {
      std::string name = "m";
      name += std::to_string(tpi.param.m);
      name += 'n';
      name += std::to_string(tpi.param.n);
      return name;
    });

TEST(CauchyMatrixTest, TopIsIdentity) {
  const GfMatrix enc = BuildCauchyEncodingMatrix(3, 5);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(enc.At(r, c), r == c ? 1 : 0);
    }
  }
}

}  // namespace
}  // namespace scalia::erasure
