#include "erasure/reed_solomon.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scalia::erasure {
namespace {

std::vector<Shard> RandomShards(std::size_t m, std::size_t len,
                                std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::vector<Shard> shards(m, Shard(len));
  for (auto& s : shards) {
    for (auto& b : s) b = static_cast<std::uint8_t>(rng() & 0xff);
  }
  return shards;
}

TEST(ReedSolomonTest, CreateValidation) {
  EXPECT_FALSE(ReedSolomon::Create(0, 4).ok());
  EXPECT_FALSE(ReedSolomon::Create(5, 4).ok());
  EXPECT_FALSE(ReedSolomon::Create(4, 129).ok());
  EXPECT_TRUE(ReedSolomon::Create(1, 1).ok());
  EXPECT_TRUE(ReedSolomon::Create(4, 128).ok());
}

TEST(ReedSolomonTest, SystematicEncoding) {
  auto codec = ReedSolomon::Create(2, 4);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(2, 64, 1);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded->size(), 4u);
  EXPECT_EQ((*encoded)[0], data[0]);  // data shards pass through
  EXPECT_EQ((*encoded)[1], data[1]);
}

TEST(ReedSolomonTest, EncodeRejectsBadInput) {
  auto codec = ReedSolomon::Create(2, 4);
  ASSERT_TRUE(codec.ok());
  EXPECT_FALSE(codec->Encode(RandomShards(3, 8, 2)).ok());  // wrong count
  std::vector<Shard> unequal = {Shard(8, 0), Shard(9, 0)};
  EXPECT_FALSE(codec->Encode(unequal).ok());
}

struct RsCase {
  std::size_t m;
  std::size_t n;
};

class ReedSolomonAllSubsetsTest : public ::testing::TestWithParam<RsCase> {};

// The defining property of the (m, n) code: decode succeeds from *every*
// m-subset of the n shards and reproduces the data exactly.
TEST_P(ReedSolomonAllSubsetsTest, DecodesFromEveryMSubset) {
  const auto [m, n] = GetParam();
  auto codec = ReedSolomon::Create(m, n);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(m, 96, 17 * m + n);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());

  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;
  for (;;) {
    std::vector<Shard> subset;
    for (std::size_t i : idx) subset.push_back((*encoded)[i]);
    auto decoded = codec->Decode(subset, idx);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, data) << "subset failed";
    std::size_t i = m;
    bool advanced = false;
    while (i-- > 0) {
      if (idx[i] != i + n - m) {
        ++idx[i];
        for (std::size_t j = i + 1; j < m; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReedSolomonAllSubsetsTest,
    ::testing::Values(RsCase{1, 2}, RsCase{1, 5}, RsCase{2, 3}, RsCase{2, 5},
                      RsCase{3, 4}, RsCase{3, 6}, RsCase{4, 5}, RsCase{4, 8},
                      RsCase{5, 7}),
    [](const ::testing::TestParamInfo<RsCase>& tpi) {
      std::string name = "m";
      name += std::to_string(tpi.param.m);
      name += 'n';
      name += std::to_string(tpi.param.n);
      return name;
    });

TEST(ReedSolomonTest, DecodeInAnyOrder) {
  auto codec = ReedSolomon::Create(3, 5);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(3, 32, 5);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  // Shards out of order, parity first.
  std::vector<Shard> shards = {(*encoded)[4], (*encoded)[1], (*encoded)[3]};
  auto decoded = codec->Decode(shards, {4, 1, 3});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, DecodeIgnoresDuplicateIndices) {
  auto codec = ReedSolomon::Create(2, 4);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(2, 16, 6);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  std::vector<Shard> shards = {(*encoded)[2], (*encoded)[2], (*encoded)[0]};
  auto decoded = codec->Decode(shards, {2, 2, 0});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, DecodeFailsWithTooFewShards) {
  auto codec = ReedSolomon::Create(3, 5);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(3, 16, 7);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  std::vector<Shard> shards = {(*encoded)[0], (*encoded)[1]};
  EXPECT_FALSE(codec->Decode(shards, {0, 1}).ok());
  // Duplicates don't count toward m distinct shards.
  std::vector<Shard> dup = {(*encoded)[0], (*encoded)[0], (*encoded)[0]};
  EXPECT_FALSE(codec->Decode(dup, {0, 0, 0}).ok());
}

TEST(ReedSolomonTest, DecodeRejectsOutOfRangeIndex) {
  auto codec = ReedSolomon::Create(2, 3);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(2, 16, 8);
  auto encoded = codec->Encode(data);
  std::vector<Shard> shards = {(*encoded)[0], (*encoded)[1]};
  EXPECT_FALSE(codec->Decode(shards, {0, 9}).ok());
}

TEST(ReedSolomonTest, RepairRebuildsAnyShard) {
  auto codec = ReedSolomon::Create(3, 6);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(3, 48, 9);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  // Rebuild every shard from a fixed 3-subset that excludes it.
  for (std::size_t target = 0; target < 6; ++target) {
    std::vector<Shard> sources;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < 6 && sources.size() < 3; ++i) {
      if (i == target) continue;
      sources.push_back((*encoded)[i]);
      indices.push_back(i);
    }
    auto rebuilt = codec->RepairShard(sources, indices, target);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(*rebuilt, (*encoded)[target]) << "target " << target;
  }
}

TEST(ReedSolomonTest, MEqualsNIsPureStriping) {
  auto codec = ReedSolomon::Create(3, 3);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(3, 16, 10);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, data);
}

TEST(ReedSolomonTest, MOneIsReplication) {
  // RAID-1 (§II-A.1): m = 1 means every chunk alone rebuilds the object.
  auto codec = ReedSolomon::Create(1, 3);
  ASSERT_TRUE(codec.ok());
  const auto data = RandomShards(1, 32, 11);
  auto encoded = codec->Encode(data);
  ASSERT_TRUE(encoded.ok());
  for (std::size_t i = 0; i < 3; ++i) {
    auto decoded = codec->Decode({(*encoded)[i]}, {i});
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ((*decoded)[0], data[0]);
  }
}

}  // namespace
}  // namespace scalia::erasure
