#include "erasure/gf256.h"

#include <gtest/gtest.h>

namespace scalia::erasure {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(GfAdd(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GfAdd(7, 7), 0);  // characteristic 2: x + x = 0
}

TEST(Gf256Test, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, 1), x);
    EXPECT_EQ(GfMul(1, x), x);
    EXPECT_EQ(GfMul(x, 0), 0);
    EXPECT_EQ(GfMul(0, x), 0);
  }
}

TEST(Gf256Test, MultiplicationCommutes) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(GfMul(static_cast<std::uint8_t>(a),
                      static_cast<std::uint8_t>(b)),
                GfMul(static_cast<std::uint8_t>(b),
                      static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, MultiplicationAssociates) {
  for (int a = 1; a < 256; a += 31) {
    for (int b = 1; b < 256; b += 29) {
      for (int c = 1; c < 256; c += 37) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(GfMul(GfMul(x, y), z), GfMul(x, GfMul(y, z)));
      }
    }
  }
}

TEST(Gf256Test, DistributesOverAddition) {
  for (int a = 0; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 17) {
      for (int c = 0; c < 256; c += 19) {
        const auto x = static_cast<std::uint8_t>(a);
        const auto y = static_cast<std::uint8_t>(b);
        const auto z = static_cast<std::uint8_t>(c);
        EXPECT_EQ(GfMul(x, GfAdd(y, z)), GfAdd(GfMul(x, y), GfMul(x, z)));
      }
    }
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, GfInv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 7) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(GfMul(GfDiv(x, y), y), x);
    }
  }
}

namespace {
// Schoolbook carry-less multiply modulo x^8 + x^4 + x^3 + x^2 + 1 (0x11d),
// the reference implementation the table-driven GfMul must match.
std::uint8_t SlowMul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t product = 0;
  std::uint16_t shifted = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1u << bit)) product ^= static_cast<std::uint16_t>(shifted << bit);
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (product & (1u << bit)) {
      product ^= static_cast<std::uint16_t>(0x11d << (bit - 8));
    }
  }
  return static_cast<std::uint8_t>(product);
}
}  // namespace

TEST(Gf256Test, TableMultiplicationMatchesSchoolbook) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(GfMul(x, y), SlowMul(x, y)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256Test, PowMatchesRepeatedMultiplication) {
  for (int a = 1; a < 256; a += 23) {
    const auto x = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (unsigned p = 0; p < 10; ++p) {
      EXPECT_EQ(GfPow(x, p), acc) << "a=" << a << " p=" << p;
      acc = GfMul(acc, x);
    }
  }
  EXPECT_EQ(GfPow(0, 0), 1);
  EXPECT_EQ(GfPow(0, 5), 0);
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // x = 2 generates the multiplicative group: 2^255 = 1 and no smaller
  // power of 255's prime factors (3, 5, 17) gives 1.
  EXPECT_EQ(GfPow(2, 255), 1);
  EXPECT_NE(GfPow(2, 85), 1);
  EXPECT_NE(GfPow(2, 51), 1);
  EXPECT_NE(GfPow(2, 15), 1);
}

TEST(Gf256Test, MulRowMatchesGfMul) {
  for (int a = 0; a < 256; a += 9) {
    const std::uint8_t* row = GfMulRow(static_cast<std::uint8_t>(a));
    for (int b = 0; b < 256; b += 3) {
      EXPECT_EQ(row[b], GfMul(static_cast<std::uint8_t>(a),
                              static_cast<std::uint8_t>(b)));
    }
  }
}

}  // namespace
}  // namespace scalia::erasure
