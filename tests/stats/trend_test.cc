#include "stats/trend.h"

#include <gtest/gtest.h>

namespace scalia::stats {
namespace {

TEST(TrendDetectorTest, FlatSeriesNeverFiresAfterStart) {
  TrendDetector detector;
  detector.Observe(100.0);  // first observation of an active object fires
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(detector.Observe(100.0)) << "period " << i;
  }
}

TEST(TrendDetectorTest, IdleObjectNeverFires) {
  TrendDetector detector;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(detector.Observe(0.0));
  }
}

TEST(TrendDetectorTest, StepUpFires) {
  TrendDetector detector;
  detector.Observe(0.0);
  detector.Observe(0.0);
  EXPECT_TRUE(detector.Observe(100.0));  // flash crowd onset
}

TEST(TrendDetectorTest, StepDownFires) {
  TrendDetector detector;
  for (int i = 0; i < 5; ++i) detector.Observe(100.0);
  EXPECT_TRUE(detector.Observe(10.0));
}

TEST(TrendDetectorTest, SmallFluctuationsBelowLimitIgnored) {
  TrendDetector detector(TrendConfig{.window = 3, .limit = 0.1,
                                     .min_activity = 1.0});
  detector.Observe(100.0);
  detector.Observe(100.0);
  detector.Observe(100.0);
  // SMA moves by < 10 %: 100,100,104 -> 101.3 (1.3 % momentum).
  EXPECT_FALSE(detector.Observe(104.0));
  EXPECT_FALSE(detector.Observe(98.0));
}

TEST(TrendDetectorTest, GoingColdFiresOnce) {
  TrendDetector detector;
  for (double v : {50.0, 40.0, 30.0}) detector.Observe(v);
  // Decay to zero: the last transition to SMA == 0 must fire (the post-peak
  // recomputation of Fig. 8).
  bool fired_cold = false;
  for (int i = 0; i < 6; ++i) {
    if (detector.Observe(0.0)) fired_cold = true;
  }
  EXPECT_TRUE(fired_cold);
  // Once cold, stays quiet.
  EXPECT_FALSE(detector.Observe(0.0));
}

TEST(TrendDetectorTest, TricklePauseDoesNotFireCold) {
  // Sub-floor activity (SMA < min_activity) pausing is not a trend change.
  TrendDetector detector(TrendConfig{.window = 3, .limit = 0.1,
                                     .min_activity = 1.0});
  detector.Observe(0.0);
  detector.Observe(1.0);  // SMA 0.5, below the floor
  EXPECT_FALSE(detector.Observe(0.0));
  EXPECT_FALSE(detector.Observe(0.0));
  EXPECT_FALSE(detector.Observe(0.0));
}

TEST(TrendDetectorTest, WindowSmoothsSpikes) {
  // w = 3 means a single-period spike moves the SMA by only a third.
  TrendDetector w3(TrendConfig{.window = 3, .limit = 0.5,
                               .min_activity = 1.0});
  w3.Observe(90.0);
  w3.Observe(90.0);
  w3.Observe(90.0);
  EXPECT_FALSE(w3.Observe(120.0));  // SMA 90 -> 100: 11 % < 50 %

  TrendDetector w1(TrendConfig{.window = 1, .limit = 0.25,
                               .min_activity = 1.0});
  w1.Observe(90.0);
  EXPECT_TRUE(w1.Observe(120.0));  // SMA 90 -> 120: 33 % > 25 %
}

TEST(TrendDetectorTest, DynamicLimitAdjustment) {
  TrendDetector detector(TrendConfig{.window = 3, .limit = 0.5,
                                     .min_activity = 1.0});
  detector.Observe(100.0);
  detector.Observe(100.0);
  EXPECT_FALSE(detector.Observe(130.0));  // 10 % momentum < 50 % limit
  detector.SetLimit(0.05);
  EXPECT_DOUBLE_EQ(detector.limit(), 0.05);
  EXPECT_TRUE(detector.Observe(160.0));  // now above the tightened limit
}

TEST(TrendDetectorTest, CurrentSmaTracksWindow) {
  TrendDetector detector;
  detector.Observe(30.0);
  EXPECT_DOUBLE_EQ(detector.CurrentSma(), 30.0);
  detector.Observe(60.0);
  EXPECT_DOUBLE_EQ(detector.CurrentSma(), 45.0);
  detector.Observe(90.0);
  EXPECT_DOUBLE_EQ(detector.CurrentSma(), 60.0);
  detector.Observe(90.0);  // window slides: (60+90+90)/3
  EXPECT_DOUBLE_EQ(detector.CurrentSma(), 80.0);
}

TEST(TrendDetectorTest, ResetForgetsEverything) {
  TrendDetector detector;
  for (int i = 0; i < 5; ++i) detector.Observe(100.0);
  detector.Reset();
  EXPECT_EQ(detector.Observations(), 0u);
  EXPECT_DOUBLE_EQ(detector.CurrentSma(), 0.0);
  EXPECT_TRUE(detector.Observe(100.0));  // first active observation again
}

class TrendLimitSweepTest : public ::testing::TestWithParam<double> {};

// Property: a larger limit never detects more changes than a smaller one on
// the same series.
TEST_P(TrendLimitSweepTest, MonotoneInLimit) {
  const double limit = GetParam();
  auto count_changes = [](double lim) {
    TrendDetector d(TrendConfig{.window = 3, .limit = lim,
                                .min_activity = 1.0});
    std::size_t fired = 0;
    // A bursty deterministic series.
    for (int i = 0; i < 200; ++i) {
      double v = 50.0 + 40.0 * ((i / 10) % 2);
      if (i > 150) v = 5.0;
      if (d.Observe(v)) ++fired;
    }
    return fired;
  };
  EXPECT_GE(count_changes(limit / 2), count_changes(limit));
  EXPECT_GE(count_changes(limit), count_changes(limit * 2));
}

INSTANTIATE_TEST_SUITE_P(Limits, TrendLimitSweepTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

}  // namespace
}  // namespace scalia::stats
