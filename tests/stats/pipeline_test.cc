#include "stats/pipeline.h"

#include <gtest/gtest.h>

#include <thread>

#include "stats/stats_db.h"
#include "support/wait.h"

namespace scalia::stats {
namespace {

TEST(PipelineTest, FoldsEventsIntoPeriodStats) {
  LogAggregator aggregator;
  LogAgent agent(&aggregator);
  agent.Log({.row_key = "obj1", .kind = AccessKind::kRead,
             .bytes = common::kMB, .timestamp = 0});
  agent.Log({.row_key = "obj1", .kind = AccessKind::kRead,
             .bytes = common::kMB, .timestamp = 10});
  agent.Log({.row_key = "obj1", .kind = AccessKind::kWrite,
             .bytes = 2 * common::kMB, .timestamp = 20});
  agent.Log({.row_key = "obj2", .kind = AccessKind::kDelete, .bytes = 0,
             .timestamp = 30});
  aggregator.Pump();

  auto flushed = aggregator.Flush();
  ASSERT_EQ(flushed.size(), 2u);
  const PeriodStats& s1 = flushed.at("obj1");
  EXPECT_DOUBLE_EQ(s1.reads, 2.0);
  EXPECT_DOUBLE_EQ(s1.writes, 1.0);
  EXPECT_DOUBLE_EQ(s1.ops, 3.0);
  EXPECT_NEAR(s1.bw_out_gb, 0.002, 1e-9);
  EXPECT_NEAR(s1.bw_in_gb, 0.002, 1e-9);
  const PeriodStats& s2 = flushed.at("obj2");
  EXPECT_DOUBLE_EQ(s2.ops, 1.0);
  EXPECT_DOUBLE_EQ(s2.reads, 0.0);
}

TEST(PipelineTest, FlushClearsAggregates) {
  LogAggregator aggregator;
  LogAgent agent(&aggregator);
  agent.Log({.row_key = "o", .kind = AccessKind::kRead, .bytes = 1,
             .timestamp = 0});
  aggregator.Pump();
  EXPECT_EQ(aggregator.Flush().size(), 1u);
  EXPECT_TRUE(aggregator.Flush().empty());
}

TEST(PipelineTest, TouchedSetTracksAndClears) {
  LogAggregator aggregator;
  LogAgent agent(&aggregator);
  agent.Log({.row_key = "a", .kind = AccessKind::kRead, .bytes = 1,
             .timestamp = 0});
  agent.Log({.row_key = "b", .kind = AccessKind::kWrite, .bytes = 1,
             .timestamp = 0});
  agent.Log({.row_key = "a", .kind = AccessKind::kRead, .bytes = 1,
             .timestamp = 1});
  aggregator.Pump();
  auto touched = aggregator.TakeTouched();
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(aggregator.TakeTouched().empty());
}

TEST(PipelineTest, BackgroundThreadDrains) {
  LogAggregator aggregator;
  aggregator.StartBackground();
  LogAgent agent(&aggregator);
  for (int i = 0; i < 1000; ++i) {
    agent.Log({.row_key = "obj", .kind = AccessKind::kRead, .bytes = 100,
               .timestamp = i});
  }
  // Wait for the background drain to catch up.
  ASSERT_TRUE(
      testing::WaitUntil([&] { return aggregator.queue().Size() == 0; }));
  aggregator.Pump();
  const auto flushed = aggregator.Flush();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_DOUBLE_EQ(flushed.at("obj").reads, 1000.0);
  EXPECT_EQ(agent.dropped(), 0u);
}

TEST(PipelineTest, SaturationDropsInsteadOfBlocking) {
  LogAggregator aggregator(/*queue_capacity=*/4);
  LogAgent agent(&aggregator);
  for (int i = 0; i < 10; ++i) {
    agent.Log({.row_key = "o", .kind = AccessKind::kRead, .bytes = 1,
               .timestamp = i});
  }
  EXPECT_EQ(agent.dropped(), 6u);
  aggregator.Pump();
  EXPECT_DOUBLE_EQ(aggregator.Flush().at("o").reads, 4.0);
}

TEST(StatsDbTest, ObjectLifecycle) {
  StatsDb db(nullptr, 0);
  db.RecordObjectCreated("rk", "cls", common::kMB, 10 * common::kHour);
  auto rec = db.GetObject("rk");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->class_id, "cls");
  EXPECT_EQ(rec->size, common::kMB);
  EXPECT_EQ(db.ObjectCount(), 1u);

  db.RecordObjectDeleted("rk", 14 * common::kHour);
  EXPECT_FALSE(db.GetObject("rk").has_value());
  // The 4-hour lifetime landed in the class statistics.
  const auto* cls = db.classes().Find("cls");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->lifetime_samples(), 1u);
  EXPECT_NEAR(common::ToHours(cls->ExpectedLifetime()), 4.0, 0.55);
}

TEST(StatsDbTest, HistoryAppendsAndClassUsageAccrues) {
  StatsDb db(nullptr, 0);
  db.RecordObjectCreated("rk", "cls", common::kMB, 0);
  PeriodStats s{.storage_gb = 0.001, .bw_in_gb = 0, .bw_out_gb = 0.01,
                .ops = 10, .reads = 10, .writes = 0};
  db.AppendPeriodStats("rk", 0, s, common::kHour);
  db.AppendPeriodStats("rk", 1, s, 2 * common::kHour);
  const auto history = db.GetHistory("rk");
  EXPECT_EQ(history.size(), 2u);
  EXPECT_DOUBLE_EQ(history.Latest().ops, 10.0);
  const auto* cls = db.classes().Find("cls");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->usage_samples(), 2u);
}

TEST(StatsDbTest, AccessedSinceFiltersByTime) {
  StatsDb db(nullptr, 0);
  db.RecordObjectCreated("early", "c", 1, 0);
  db.RecordObjectCreated("late", "c", 1, 0);
  db.TouchObject("early", 5 * common::kHour);
  db.TouchObject("late", 10 * common::kHour);
  auto all = db.AccessedSince(0);
  EXPECT_EQ(all.size(), 2u);
  auto recent = db.AccessedSince(7 * common::kHour);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0], "late");
}

TEST(StatsDbTest, WriteThroughPersistsRows) {
  store::ReplicatedStore backing(2);
  StatsDb db(&backing, 0);
  db.RecordObjectCreated("rk", "cls", common::kMB, 0);
  PeriodStats s{.storage_gb = 0.001, .bw_in_gb = 0, .bw_out_gb = 0.01,
                .ops = 5, .reads = 5, .writes = 0};
  db.AppendPeriodStats("rk", 7, s, common::kHour);
  auto row = backing.Get(0, "stats", "ostat|rk|7");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value.substr(0, 4), "cls;");
  // Statistics rows replicate like any other row.
  backing.SyncAll();
  EXPECT_TRUE(backing.Get(1, "stats", "ostat|rk|7").ok());
}

TEST(StatsDbTest, MapReduceRefreshRebuildsClassMeans) {
  store::ReplicatedStore backing(1);
  StatsDb db(&backing, 0);
  db.RecordObjectCreated("o1", "clsA", common::kMB, 0);
  db.RecordObjectCreated("o2", "clsA", common::kMB, 0);
  PeriodStats hot{.storage_gb = 0.001, .bw_in_gb = 0, .bw_out_gb = 0.1,
                  .ops = 100, .reads = 100, .writes = 0};
  PeriodStats cold{.storage_gb = 0.001, .bw_in_gb = 0, .bw_out_gb = 0,
                   .ops = 2, .reads = 2, .writes = 0};
  db.AppendPeriodStats("o1", 0, hot, common::kHour);
  db.AppendPeriodStats("o2", 0, cold, common::kHour);

  common::ThreadPool pool(4);
  const std::size_t refreshed = db.RefreshClassStatsMapReduce(pool);
  EXPECT_EQ(refreshed, 1u);
  const auto* cls = db.classes().Find("clsA");
  ASSERT_NE(cls, nullptr);
  const auto mean = cls->MeanUsage();
  ASSERT_TRUE(mean.has_value());
  EXPECT_GT(mean->ops, 0.0);
}

TEST(StatsDbTest, UnknownObjectQueriesAreSafe) {
  StatsDb db(nullptr, 0);
  EXPECT_FALSE(db.GetObject("nope").has_value());
  EXPECT_TRUE(db.GetHistory("nope").empty());
  db.TouchObject("nope", 1);                      // no-op
  db.AppendPeriodStats("nope", 0, {}, 1);         // no-op
  db.RecordObjectDeleted("nope", 1);              // no-op
  EXPECT_EQ(db.ObjectCount(), 0u);
}

}  // namespace
}  // namespace scalia::stats
