#include <gtest/gtest.h>

#include "stats/access_history.h"
#include "stats/object_class.h"
#include "stats/period_stats.h"

namespace scalia::stats {
namespace {

TEST(PeriodStatsTest, CsvRoundTrip) {
  PeriodStats s{.storage_gb = 1.5,
                .bw_in_gb = 0.25,
                .bw_out_gb = 2.75,
                .ops = 100,
                .reads = 90,
                .writes = 10};
  const PeriodStats parsed = PeriodStats::FromCsv(s.ToCsv());
  EXPECT_DOUBLE_EQ(parsed.storage_gb, 1.5);
  EXPECT_DOUBLE_EQ(parsed.bw_in_gb, 0.25);
  EXPECT_DOUBLE_EQ(parsed.bw_out_gb, 2.75);
  EXPECT_DOUBLE_EQ(parsed.ops, 100);
  EXPECT_DOUBLE_EQ(parsed.reads, 90);
  EXPECT_DOUBLE_EQ(parsed.writes, 10);
}

TEST(PeriodStatsTest, AccumulateAndScale) {
  PeriodStats a{.storage_gb = 1, .bw_in_gb = 2, .bw_out_gb = 3, .ops = 4,
                .reads = 3, .writes = 1};
  PeriodStats b = a;
  a += b;
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a.storage_gb, 1);
  EXPECT_DOUBLE_EQ(a.ops, 4);
  EXPECT_TRUE(PeriodStats{}.IsZero());
  EXPECT_FALSE(a.IsZero());
}

TEST(AccessHistoryTest, RingBounded) {
  AccessHistory h(3);
  for (int i = 1; i <= 5; ++i) {
    h.Append(PeriodStats{.storage_gb = 0, .bw_in_gb = 0, .bw_out_gb = 0,
                         .ops = static_cast<double>(i), .reads = 0,
                         .writes = 0});
  }
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.Latest().ops, 5);
  const auto last2 = h.LastPeriods(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_DOUBLE_EQ(last2[0].ops, 4);  // oldest first
  EXPECT_DOUBLE_EQ(last2[1].ops, 5);
}

TEST(AccessHistoryTest, AverageOverWindow) {
  AccessHistory h(10);
  for (double v : {10.0, 20.0, 30.0}) {
    h.Append(PeriodStats{.storage_gb = 0, .bw_in_gb = 0, .bw_out_gb = 0,
                         .ops = v, .reads = 0, .writes = 0});
  }
  EXPECT_DOUBLE_EQ(h.AverageOver(2).ops, 25.0);
  EXPECT_DOUBLE_EQ(h.AverageOver(3).ops, 20.0);
  EXPECT_DOUBLE_EQ(h.AverageOver(100).ops, 20.0);  // clamped to size
  EXPECT_DOUBLE_EQ(AccessHistory(5).AverageOver(3).ops, 0.0);
  EXPECT_DOUBLE_EQ(AccessHistory(5).Latest().ops, 0.0);
}

TEST(ObjectClassTest, DiscretizeRoundsUpToMegabyte) {
  EXPECT_EQ(DiscretizeSize(1), common::kMB);
  EXPECT_EQ(DiscretizeSize(common::kMB), common::kMB);
  EXPECT_EQ(DiscretizeSize(common::kMB + 1), 2 * common::kMB);
  EXPECT_EQ(DiscretizeSize(0), 0u);
}

TEST(ObjectClassTest, ClassificationGroupsSimilarObjects) {
  // Same MIME and same discretized size -> same class.
  EXPECT_EQ(ClassifyObject("image/gif", 300 * common::kKB),
            ClassifyObject("image/gif", 700 * common::kKB));
  // Different MIME or size bucket -> different class.
  EXPECT_NE(ClassifyObject("image/gif", 300 * common::kKB),
            ClassifyObject("image/png", 300 * common::kKB));
  EXPECT_NE(ClassifyObject("image/gif", 300 * common::kKB),
            ClassifyObject("image/gif", 5 * common::kMB));
}

TEST(ClassStatsTest, Fig5ReferenceExample) {
  // The Fig. 5 class: 20 objects, lifetimes 0-6 h, E[TTL|0] = 3.25 h and
  // E[TTL|2h] = 1.55 h.
  ClassStats cls(common::kHour * 8);
  const double lifetimes[20] = {0.5, 0.5, 2.5, 2.5, 2.5, 2.5, 2.5,
                                2.5, 3.5, 3.5, 3.5, 3.5, 3.5, 3.5,
                                4.5, 4.5, 4.5, 4.5, 4.5, 5.5};
  for (double h : lifetimes) cls.RecordLifetime(common::FromHours(h));
  EXPECT_EQ(cls.lifetime_samples(), 20u);
  EXPECT_NEAR(common::ToHours(cls.ExpectedLifetime()), 3.25, 0.01);
  EXPECT_NEAR(
      common::ToHours(cls.ExpectedTimeLeftToLive(2 * common::kHour)), 1.56,
      0.01);
}

TEST(ClassStatsTest, ResidualDecreasesWithAge) {
  ClassStats cls(common::kHour * 100);
  for (int i = 1; i <= 50; ++i) {
    cls.RecordLifetime(common::FromHours(static_cast<double>(i)));
  }
  common::Duration prev = cls.ExpectedTimeLeftToLive(0);
  for (double age = 5; age <= 40; age += 5) {
    const auto ttl = cls.ExpectedTimeLeftToLive(common::FromHours(age));
    EXPECT_LE(ttl, prev + common::kHour);  // monotone modulo binning
    prev = ttl;
    EXPECT_GT(ttl, 0);
  }
}

TEST(ClassStatsTest, OutlivedClassFallsBackToMean) {
  ClassStats cls(common::kHour * 10);
  cls.RecordLifetime(common::FromHours(2.0));
  // An object older than every recorded lifetime still gets an estimate.
  const auto ttl = cls.ExpectedTimeLeftToLive(common::FromHours(9.0));
  EXPECT_GT(ttl, 0);
}

TEST(ClassStatsTest, NoSamplesMeansZeroEstimates) {
  ClassStats cls;
  EXPECT_EQ(cls.ExpectedLifetime(), 0);
  EXPECT_EQ(cls.ExpectedTimeLeftToLive(common::kHour), 0);
  EXPECT_FALSE(cls.MeanUsage().has_value());
}

TEST(ClassStatsTest, MeanUsage) {
  ClassStats cls;
  cls.RecordUsage(PeriodStats{.storage_gb = 1, .bw_in_gb = 0, .bw_out_gb = 4,
                              .ops = 10, .reads = 10, .writes = 0});
  cls.RecordUsage(PeriodStats{.storage_gb = 1, .bw_in_gb = 0, .bw_out_gb = 2,
                              .ops = 20, .reads = 20, .writes = 0});
  const auto mean = cls.MeanUsage();
  ASSERT_TRUE(mean.has_value());
  EXPECT_DOUBLE_EQ(mean->bw_out_gb, 3.0);
  EXPECT_DOUBLE_EQ(mean->ops, 15.0);
  EXPECT_EQ(cls.usage_samples(), 2u);
}

TEST(ClassRegistryTest, CreatesAndFinds) {
  ClassRegistry registry;
  EXPECT_EQ(registry.Find("unknown"), nullptr);
  ClassStats& cls = registry.ForClass("abc");
  cls.RecordLifetime(common::kHour);
  EXPECT_EQ(registry.Find("abc"), &cls);
  EXPECT_EQ(registry.ClassCount(), 1u);
  (void)registry.ForClass("def");
  EXPECT_EQ(registry.ClassCount(), 2u);
}

}  // namespace
}  // namespace scalia::stats
