#include "net/latency.h"

#include <gtest/gtest.h>

#include "net/geo.h"
#include "provider/spec.h"

namespace scalia::net {
namespace {

using common::kMB;
using provider::Zone;

provider::ProviderSpec ZonedSpec(std::string id, provider::ZoneSet zones,
                                 double ttfb_ms = 10.0) {
  provider::ProviderSpec spec;
  spec.id = std::move(id);
  spec.sla = {.durability = 0.9999, .availability = 0.999};
  spec.zones = zones;
  spec.read_latency_ms = ttfb_ms;
  return spec;
}

TEST(TrafficMixTest, SharesSumToOne) {
  TrafficMix mix;
  double sum = 0.0;
  for (Region r : kAllRegions) sum += mix.Share(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The paper's ordering: Europe dominates, then NA, then Asia.
  EXPECT_GT(mix.Share(Region::kEurope), mix.Share(Region::kNorthAmerica));
  EXPECT_GT(mix.Share(Region::kNorthAmerica), mix.Share(Region::kAsia));
}

TEST(TrafficMixTest, PickCoversAllRegionsAndRespectsBoundaries) {
  TrafficMix mix;
  EXPECT_EQ(mix.Pick(0.0), Region::kEurope);
  EXPECT_EQ(mix.Pick(mix.Share(Region::kEurope) + 1e-6),
            Region::kNorthAmerica);
  EXPECT_EQ(mix.Pick(0.999999), Region::kAsia);
}

TEST(GeoTest, HomeZoneAndNearestRegionAreInverse) {
  for (Region r : kAllRegions) {
    EXPECT_EQ(NearestRegion(HomeZone(r)), r);
  }
}

TEST(LatencyModelTest, IntraRegionBeatsCrossRegion) {
  const LatencyModel model;
  for (Region r : kAllRegions) {
    const double local = model.Link(r, HomeZone(r)).rtt_ms;
    for (Zone z : {Zone::kEU, Zone::kUS, Zone::kAPAC}) {
      if (z == HomeZone(r)) continue;
      EXPECT_LT(local, model.Link(r, z).rtt_ms)
          << RegionName(r) << " -> " << provider::ZoneName(z);
    }
  }
}

TEST(LatencyModelTest, OnPremIsLanOnlyFromHomeRegion) {
  LatencyModel model;
  model.set_home_region(Region::kEurope);
  // LAN at home.
  EXPECT_LT(model.Link(Region::kEurope, Zone::kOnPrem).rtt_ms, 5.0);
  // Everyone else pays the WAN RTT to the home region's zone.
  EXPECT_DOUBLE_EQ(model.Link(Region::kAsia, Zone::kOnPrem).rtt_ms,
                   model.Link(Region::kAsia, Zone::kEU).rtt_ms);
  EXPECT_DOUBLE_EQ(model.Link(Region::kNorthAmerica, Zone::kOnPrem).rtt_ms,
                   model.Link(Region::kNorthAmerica, Zone::kEU).rtt_ms);
}

TEST(LatencyModelTest, ServingZonePicksNearestOperatedZone) {
  const LatencyModel model;
  const auto multi = ZonedSpec("multi", {Zone::kEU, Zone::kUS, Zone::kAPAC});
  EXPECT_EQ(model.ServingZone(Region::kEurope, multi), Zone::kEU);
  EXPECT_EQ(model.ServingZone(Region::kNorthAmerica, multi), Zone::kUS);
  EXPECT_EQ(model.ServingZone(Region::kAsia, multi), Zone::kAPAC);

  const auto us_only = ZonedSpec("us", {Zone::kUS});
  EXPECT_EQ(model.ServingZone(Region::kEurope, us_only), Zone::kUS);
}

TEST(LatencyModelTest, ChunkFetchGrowsWithSizeAndDistance) {
  const LatencyModel model;
  const auto eu = ZonedSpec("eu", {Zone::kEU});
  // Monotone in chunk size.
  const double small = model.ChunkFetchMs(Region::kEurope, eu, 100 * kMB / 100);
  const double large = model.ChunkFetchMs(Region::kEurope, eu, 100 * kMB);
  EXPECT_LT(small, large);
  // Monotone in distance for the same payload.
  EXPECT_LT(model.ChunkFetchMs(Region::kEurope, eu, kMB),
            model.ChunkFetchMs(Region::kAsia, eu, kMB));
}

TEST(LatencyModelTest, TtfbContributes) {
  const LatencyModel model;
  const auto fast = ZonedSpec("fast", {Zone::kEU}, 5.0);
  const auto slow = ZonedSpec("slow", {Zone::kEU}, 80.0);
  EXPECT_NEAR(model.ChunkFetchMs(Region::kEurope, slow, 0) -
                  model.ChunkFetchMs(Region::kEurope, fast, 0),
              75.0, 1e-9);
}

TEST(LatencyModelTest, ObjectReadIsMThSmallestFetch) {
  const LatencyModel model;
  const std::vector<provider::ProviderSpec> pset = {
      ZonedSpec("eu", {Zone::kEU}, 10.0),
      ZonedSpec("us", {Zone::kUS}, 10.0),
      ZonedSpec("apac", {Zone::kAPAC}, 10.0),
  };
  const common::Bytes size = 3 * kMB;
  // m=1 from Europe: only the EU chunk is needed.
  const double m1 = model.ObjectReadMs(Region::kEurope, pset, 1, size);
  EXPECT_NEAR(m1, model.ChunkFetchMs(Region::kEurope, pset[0], size), 1e-9);
  // m=2: EU+US in parallel; the US fetch dominates.
  const double m2 = model.ObjectReadMs(Region::kEurope, pset, 2, size);
  const common::Bytes half = common::CeilDiv(size, 2);
  EXPECT_NEAR(m2, model.ChunkFetchMs(Region::kEurope, pset[1], half), 1e-9);
  // m=3: APAC dominates.
  const double m3 = model.ObjectReadMs(Region::kEurope, pset, 3, size);
  const common::Bytes third = common::CeilDiv(size, 3);
  EXPECT_NEAR(m3, model.ChunkFetchMs(Region::kEurope, pset[2], third), 1e-9);
  // Larger m trades smaller chunks against slower stragglers; here the
  // straggler wins every time.
  EXPECT_LT(m1, m2);
  EXPECT_LT(m2, m3);
}

TEST(LatencyModelTest, ObjectReadDegenerateInputs) {
  const LatencyModel model;
  const std::vector<provider::ProviderSpec> pset = {
      ZonedSpec("eu", {Zone::kEU})};
  EXPECT_DOUBLE_EQ(model.ObjectReadMs(Region::kEurope, {}, 1, kMB), 0.0);
  EXPECT_DOUBLE_EQ(model.ObjectReadMs(Region::kEurope, pset, 0, kMB), 0.0);
  EXPECT_DOUBLE_EQ(model.ObjectReadMs(Region::kEurope, pset, 2, kMB), 0.0);
}

TEST(LatencyModelTest, SetLinkOverridesDefaults) {
  LatencyModel model;
  model.SetLink(Region::kEurope, Zone::kEU,
                LinkSpec{.rtt_ms = 1.0, .throughput_mbps = 10000.0});
  EXPECT_DOUBLE_EQ(model.Link(Region::kEurope, Zone::kEU).rtt_ms, 1.0);
}

}  // namespace
}  // namespace scalia::net
