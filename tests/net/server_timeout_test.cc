// Read/idle deadline coverage for the epoll serving loop (PR 4): a client
// that stalls mid-request (slowloris) or never sends one is answered
// `408 Request Timeout` and its slot reclaimed, while connections that keep
// making progress are never expired.
#include "net/server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"

namespace scalia::net {
namespace {

constexpr common::SimTime kNow = 1000;

/// Raw blocking loopback socket: deliberately stalls mid-request, which
/// net::HttpClient is too well-behaved to do.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] int fd() const { return fd_; }

  void Send(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Blocks until the server closes the connection; returns all bytes read.
  [[nodiscard]] std::string ReadUntilEof() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class ServerTimeoutTest : public ::testing::Test {
 protected:
  void StartServer(long idle_timeout_ms) {
    ServerConfig config;
    config.clock = [] { return kNow; };
    config.idle_timeout_ms = idle_timeout_ms;
    server_ = std::make_unique<HttpServer>(
        std::move(config),
        [](common::SimTime, const api::HttpRequest& request) {
          api::HttpResponse response;
          response.status = 200;
          response.body = "echo " + request.path;
          return response;
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServerTimeoutTest, SlowlorisMidRequestGets408AndClose) {
  StartServer(/*idle_timeout_ms=*/200);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  // A request that never finishes: headers trickle in, then silence.
  conn.Send("GET /stalled HTTP/1.1\r\nHost: x\r\nX-Slow");
  const std::string answer = conn.ReadUntilEof();  // blocks until close
  EXPECT_NE(answer.find("408"), std::string::npos) << answer;
  EXPECT_NE(answer.find("deadline"), std::string::npos) << answer;
  EXPECT_GE(server_->stats().connections_timed_out, 1u);
}

TEST_F(ServerTimeoutTest, IdleConnectionWithNoBytesIsExpired) {
  StartServer(/*idle_timeout_ms=*/200);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  // Send nothing at all: the slot must still be reclaimed.
  const std::string answer = conn.ReadUntilEof();
  EXPECT_NE(answer.find("408"), std::string::npos) << answer;
}

TEST_F(ServerTimeoutTest, ManyStalledClientsAllReclaimed) {
  StartServer(/*idle_timeout_ms=*/200);
  std::vector<std::unique_ptr<RawConn>> stalled;
  for (int i = 0; i < 8; ++i) {
    stalled.push_back(std::make_unique<RawConn>(server_->port()));
    ASSERT_TRUE(stalled.back()->connected());
    stalled.back()->Send("PUT /b/k HTTP/1.1\r\ncontent-length: 100\r\n\r\nxx");
  }
  for (auto& conn : stalled) {
    EXPECT_NE(conn->ReadUntilEof().find("408"), std::string::npos);
  }
  EXPECT_GE(server_->stats().connections_timed_out, 8u);
  // The serving loop is healthy afterwards: a real request still works.
  HttpClient client("127.0.0.1", server_->port());
  api::HttpRequest request;
  request.method = api::HttpMethod::kGet;
  request.path = "/after";
  const auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
}

TEST_F(ServerTimeoutTest, ActiveKeepAliveConnectionIsNeverExpired) {
  StartServer(/*idle_timeout_ms=*/600);
  HttpClient client("127.0.0.1", server_->port());
  // Each request renews the deadline; total wall time far exceeds the
  // timeout, but the gaps never do.
  for (int i = 0; i < 6; ++i) {
    api::HttpRequest request;
    request.method = api::HttpMethod::kGet;
    request.path = "/tick-" + std::to_string(i);
    const auto response = client.RoundTrip(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_EQ(server_->stats().connections_timed_out, 0u);
}

TEST_F(ServerTimeoutTest, ZeroDisablesTheDeadline) {
  StartServer(/*idle_timeout_ms=*/0);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // Still serveable after sitting idle: no deadline fired.
  conn.Send("GET /alive HTTP/1.1\r\nconnection: close\r\n\r\n");
  const std::string answer = conn.ReadUntilEof();
  EXPECT_NE(answer.find("200"), std::string::npos) << answer;
  EXPECT_EQ(server_->stats().connections_timed_out, 0u);
}

TEST_F(ServerTimeoutTest, ByteTricklingAfter408CannotDodgeForceClose) {
  StartServer(/*idle_timeout_ms=*/200);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("GET /x HTTP/1.1\r\nX-Slow");
  // Wait for the 408 to land, then keep trickling bytes faster than the
  // deadline: once lingering, bytes are not progress, so the force-close
  // one deadline later must still happen.
  std::thread trickler([&] {
    for (int i = 0; i < 40; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (::send(conn.fd(), "y", 1, MSG_NOSIGNAL) <= 0) return;
    }
  });
  const auto start = std::chrono::steady_clock::now();
  const std::string answer = conn.ReadUntilEof();  // returns on force-close
  const auto elapsed = std::chrono::steady_clock::now() - start;
  trickler.join();
  EXPECT_NE(answer.find("408"), std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST_F(ServerTimeoutTest, SilentTimedOutClientIsForceClosedEventually) {
  StartServer(/*idle_timeout_ms=*/150);
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("GET /x HTTP/1.1\r\nX-Half");
  // Do not read: the server sends 408, half-closes, lingers one more
  // deadline, then force-closes.  ReadUntilEof must terminate either way.
  const auto start = std::chrono::steady_clock::now();
  const std::string answer = conn.ReadUntilEof();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_NE(answer.find("408"), std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            30);
}

}  // namespace
}  // namespace scalia::net
