// Multi-loop serving-path tests (PR 6): SO_REUSEPORT accept distribution
// across per-shard event loops, the logged single-loop fallback when the
// option is unavailable, per-loop counter plumbing, and the 408-framing
// regression — an idle sweep must never splice a 408 into a half-flushed
// response stream.
#include "net/server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "net/server/http_parser.h"
#include "support/wait.h"

namespace scalia::net {
namespace {

constexpr common::SimTime kNow = 1000;

/// Raw blocking loopback socket; optionally shrinks SO_RCVBUF before
/// connecting so the kernel cannot swallow a large response behind the
/// test's back.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof rcvbuf_bytes);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void Send(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  [[nodiscard]] std::string ReadUntilEof() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  [[nodiscard]] std::vector<api::HttpResponse> ReadResponses(int count) {
    std::vector<api::HttpResponse> out;
    ResponseParser parser;
    char buf[4096];
    while (static_cast<int>(out.size()) < count) {
      while (auto parsed = parser.Next(false)) {
        out.push_back(std::move(parsed->response));
        if (static_cast<int>(out.size()) == count) return out;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class MultiLoopServerTest : public ::testing::Test {
 protected:
  void StartEcho(ServerConfig config) {
    config.clock = [] { return kNow; };
    server_ = std::make_unique<HttpServer>(
        std::move(config),
        [](common::SimTime, const api::HttpRequest& request) {
          api::HttpResponse response;
          response.status = 200;
          response.headers.Set("x-echo-path", request.path);
          response.body = "echo:" + request.path;
          return response;
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(MultiLoopServerTest, ReuseportSpreadsAcceptsAcrossLoops) {
  ServerConfig config;
  config.num_loops = 4;
  config.max_connections = 256;
  StartEcho(std::move(config));
  ASSERT_EQ(server_->num_loops(), 4u);

  constexpr int kConns = 48;
  for (int i = 0; i < kConns; ++i) {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    conn.Send("GET /spread/" + std::to_string(i) + " HTTP/1.1\r\n\r\n");
    const auto responses = conn.ReadResponses(1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, 200);
  }

  const ServerStats stats = server_->stats();
  ASSERT_EQ(stats.loops.size(), 4u);
  std::uint64_t accepted = 0;
  std::uint64_t loop_bytes = 0;
  std::uint64_t loop_writev = 0;
  std::size_t loops_used = 0;
  for (const LoopStats& loop : stats.loops) {
    accepted += loop.connections_accepted;
    loop_bytes += loop.bytes_written;
    loop_writev += loop.writev_calls;
    if (loop.connections_accepted > 0) ++loops_used;
  }
  EXPECT_EQ(accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(stats.connections_accepted, accepted);
  // The kernel hashes the 4-tuple; 48 distinct source ports landing on a
  // single loop of four would mean SO_REUSEPORT balancing is not engaged.
  EXPECT_GE(loops_used, 2u);
  // Aggregate counters are exactly the per-loop shares summed.
  EXPECT_EQ(stats.bytes_out, loop_bytes);
  EXPECT_EQ(stats.writev_calls, loop_writev);
  EXPECT_EQ(stats.requests_served, static_cast<std::uint64_t>(kConns));
}

TEST_F(MultiLoopServerTest, FallsBackToOneLoopWhenReuseportUnavailable) {
  ServerConfig config;
  config.num_loops = 4;
  config.simulate_reuseport_unavailable = true;
  StartEcho(std::move(config));

  // Degraded, warned (log side), and still serving.
  EXPECT_EQ(server_->num_loops(), 1u);
  EXPECT_EQ(server_->stats().loops.size(), 1u);

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("GET /fallback HTTP/1.1\r\n\r\n");
  const auto responses = conn.ReadResponses(1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, "echo:/fallback");
  EXPECT_EQ(server_->stats().loops[0].connections_accepted, 1u);
}

TEST_F(MultiLoopServerTest, PipelinedBurstStaysInOrderOnAMultiLoopServer) {
  ServerConfig config;
  config.num_loops = 4;
  StartEcho(std::move(config));

  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  std::string burst;
  constexpr int kRequests = 16;
  for (int i = 0; i < kRequests; ++i) {
    burst += "GET /pipe/" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  conn.Send(burst);
  const auto responses = conn.ReadResponses(kRequests);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(responses[i].status, 200);
    EXPECT_EQ(responses[i].headers.Get("x-echo-path"),
              "/pipe/" + std::to_string(i));
  }
}

// Regression for the PR-6 408 framing fix: a connection whose out-queue is
// still half-flushed when the idle deadline fires must be closed, never
// answered 408 — splicing `HTTP/1.1 408` bytes into the middle of an
// in-flight response corrupts the client's framing.
TEST_F(MultiLoopServerTest, IdleSweepNeverSplicesA408IntoAHalfFlushedStream) {
  // Big enough that loopback sndbuf + a 4 KiB client rcvbuf cannot hold it:
  // the out-queue is guaranteed non-empty when the idle deadline fires.
  const std::string big_body(64 * 1024 * 1024, 'A');
  ServerConfig config;
  config.idle_timeout_ms = 200;
  config.clock = [] { return kNow; };
  server_ = std::make_unique<HttpServer>(
      std::move(config),
      [&big_body](common::SimTime, const api::HttpRequest&) {
        api::HttpResponse response;
        response.status = 200;
        response.body = big_body;
        return response;
      });
  ASSERT_TRUE(server_->Start().ok());

  RawConn conn(server_->port(), /*rcvbuf_bytes=*/4096);
  ASSERT_TRUE(conn.connected());
  conn.Send("GET /huge HTTP/1.1\r\n\r\n");
  // Read nothing while the deadline expires (the stalled response pins the
  // out-queue), then drain whatever the kernel buffered until the close.
  ASSERT_TRUE(testing::WaitUntil(
      [&] { return server_->stats().connections_timed_out >= 1; }));
  const std::string stream = conn.ReadUntilEof();

  ASSERT_GE(stream.size(), 15u);
  EXPECT_EQ(stream.substr(0, 15), "HTTP/1.1 200 OK");
  EXPECT_EQ(stream.find("HTTP/1.1 408"), std::string::npos)
      << "408 spliced into a half-flushed response stream";
  // The connection was cut short, not completed.
  EXPECT_LT(stream.size(), big_body.size());
  EXPECT_EQ(server_->stats().connections_timed_out, 1u);
}

}  // namespace
}  // namespace scalia::net
