// Loopback tests for the networked gateway: a real TCP port, real sockets.
//
// Covers the serving loop itself (keep-alive, pipelining, wire-level limit
// answers, graceful shutdown) with an echo handler, then the full stack —
// net::HttpClient → HttpServer → S3Gateway → ScaliaCluster — including an
// N-thread mixed PUT/GET/DELETE stress run asserting no lost and no
// cross-tenant responses.
#include "net/server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/auth.h"
#include "api/gateway.h"
#include "core/cluster.h"
#include "net/client.h"
#include "net/server/http_parser.h"
#include "provider/spec.h"

namespace scalia::net {
namespace {

constexpr common::SimTime kNow = 1000;

/// Raw blocking loopback socket for wire-level cases HttpClient is too
/// well-behaved to produce (pipelining bursts, oversized headers, …).
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void Send(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads until EOF (server closed) — for connection: close flows.
  [[nodiscard]] std::string ReadUntilEof() {
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Reads `count` complete responses through a ResponseParser.
  [[nodiscard]] std::vector<api::HttpResponse> ReadResponses(int count) {
    std::vector<api::HttpResponse> out;
    ResponseParser parser;
    char buf[4096];
    while (static_cast<int>(out.size()) < count) {
      while (auto parsed = parser.Next(false)) {
        out.push_back(std::move(parsed->response));
        if (static_cast<int>(out.size()) == count) return out;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// Server over a handler that echoes method, path and body back.
class EchoServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerConfig config = {}) {
    config.clock = [] { return kNow; };
    server_ = std::make_unique<HttpServer>(
        std::move(config),
        [](common::SimTime, const api::HttpRequest& request) {
          api::HttpResponse response;
          response.status = 200;
          response.headers.Set("x-echo-path", request.path);
          response.body = std::string(api::MethodName(request.method)) + " " +
                          request.path + " [" + request.body + "]";
          return response;
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(EchoServerTest, BindsARealEphemeralPortAndServes) {
  StartServer();
  HttpClient client("127.0.0.1", server_->port());
  api::HttpRequest request;
  request.method = api::HttpMethod::kGet;
  request.path = "/hello/world";
  const auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->body, "GET /hello/world []");
  EXPECT_EQ(response->headers.Get("x-echo-path"), "/hello/world");
}

TEST_F(EchoServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 50; ++i) {
    api::HttpRequest request;
    request.method = api::HttpMethod::kPut;
    request.path = "/obj/" + std::to_string(i);
    request.body = "payload-" + std::to_string(i);
    const auto response = client.RoundTrip(request);
    ASSERT_TRUE(response.ok()) << i;
    EXPECT_EQ(response->body, "PUT /obj/" + std::to_string(i) + " [payload-" +
                                  std::to_string(i) + "]");
  }
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);  // one connection, reused
  EXPECT_EQ(stats.requests_served, 50u);
}

TEST_F(EchoServerTest, PipelinedBurstAnswersInOrder) {
  StartServer();
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    burst += "GET /pipelined/" + std::to_string(i) + " HTTP/1.1\r\n\r\n";
  }
  conn.Send(burst);
  const auto responses = conn.ReadResponses(10);
  ASSERT_EQ(responses.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].body,
              "GET /pipelined/" + std::to_string(i) + " []")
        << "response " << i << " out of order";
  }
}

TEST_F(EchoServerTest, OversizedHeadersAnswer431AndClose) {
  ServerConfig config;
  config.limits.max_header_bytes = 512;
  StartServer(std::move(config));
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("GET /x HTTP/1.1\r\nx-padding: " + std::string(600, 'p') +
            "\r\n\r\n");
  const std::string wire = conn.ReadUntilEof();  // EOF: server closed
  EXPECT_NE(wire.find("431"), std::string::npos) << wire;
  EXPECT_EQ(server_->stats().protocol_errors, 1u);
}

TEST_F(EchoServerTest, OversizedBodyAnswers413AndClose) {
  ServerConfig config;
  config.limits.max_body_bytes = 1024;
  StartServer(std::move(config));
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("PUT /x HTTP/1.1\r\ncontent-length: 4096\r\n\r\n");
  const std::string wire = conn.ReadUntilEof();
  EXPECT_NE(wire.find("413"), std::string::npos) << wire;
}

TEST_F(EchoServerTest, OversizedBodyStillMidSendReceivesThe413) {
  // Lingering close: the client has already streamed the oversized body
  // when it reads; the server must drain it (half-close) rather than
  // close() with unread data, which would RST away the 413 answer.
  ServerConfig config;
  config.limits.max_body_bytes = 1024;
  StartServer(std::move(config));
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("PUT /x HTTP/1.1\r\ncontent-length: 8192\r\n\r\n" +
            std::string(8192, 'b'));
  const std::string wire = conn.ReadUntilEof();
  EXPECT_NE(wire.find("413"), std::string::npos) << wire;
}

TEST_F(EchoServerTest, MalformedRequestAnswers400AndClose) {
  StartServer();
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("NONSENSE\r\n\r\n");
  const std::string wire = conn.ReadUntilEof();
  EXPECT_NE(wire.find("400"), std::string::npos) << wire;
}

TEST_F(EchoServerTest, ConnectionCloseIsHonoured) {
  StartServer();
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.Send("GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string wire = conn.ReadUntilEof();  // terminates: server closed
  EXPECT_NE(wire.find("connection: close"), std::string::npos) << wire;
  EXPECT_NE(wire.find("GET /bye []"), std::string::npos) << wire;
}

TEST_F(EchoServerTest, LargeBodyRoundTripsAcrossManyRecvBoundaries) {
  StartServer();
  HttpClient client("127.0.0.1", server_->port());
  api::HttpRequest request;
  request.method = api::HttpMethod::kPut;
  request.path = "/big/object";
  request.body.assign(3 * 1024 * 1024, 'z');  // > one 64 KiB read, many times
  const auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body.size(), request.body.size() +
                                       std::string("PUT /big/object []").size());
}

TEST_F(EchoServerTest, StopIsGracefulAndIdempotent) {
  StartServer();
  {
    HttpClient client("127.0.0.1", server_->port());
    api::HttpRequest request;
    request.method = api::HttpMethod::kGet;
    request.path = "/before/stop";
    ASSERT_TRUE(client.RoundTrip(request).ok());
  }
  server_->Stop();
  server_->Stop();  // idempotent
  EXPECT_EQ(server_->stats().requests_served, 1u);
}

TEST_F(EchoServerTest, SecondServerOnSamePortFailsCleanly) {
  StartServer();
  ServerConfig config;
  config.port = server_->port();
  HttpServer second(std::move(config),
                    [](common::SimTime, const api::HttpRequest&) {
                      return api::HttpResponse{};
                    });
  const common::Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kUnavailable);
}

/// Full stack: HttpClient → HttpServer → S3Gateway → ScaliaCluster.
class GatewayServerTest : public ::testing::Test {
 protected:
  GatewayServerTest() {
    core::ClusterConfig config;
    config.num_datacenters = 1;
    config.engines_per_dc = 2;
    config.engine.default_rule =
        core::StorageRule{.name = "default",
                          .durability = 0.999999,
                          .availability = 0.9999,
                          .allowed_zones = provider::ZoneSet::All(),
                          .lockin = 0.5,
                          .ttl_hint = std::nullopt};
    cluster_ = std::make_unique<core::ScaliaCluster>(config);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(cluster_->registry().Register(std::move(spec)).ok());
    }
    for (const auto& creds : {acme_, globex_}) auth_.AddCredentials(creds);
    gateway_ = std::make_unique<api::S3Gateway>(
        &auth_, [this]() -> core::Engine& { return cluster_->RouteRequest(); });

    ServerConfig server_config;
    server_config.clock = [] { return kNow; };
    server_ = std::make_unique<HttpServer>(
        std::move(server_config),
        [this](common::SimTime now, const api::HttpRequest& request) {
          return gateway_->Handle(now, request);
        });
    EXPECT_TRUE(server_->Start().ok());
  }

  /// Signs (with a unique nonce, so repeated identical calls never trip the
  /// replay guard) and sends one request over `client`.
  common::Result<api::HttpResponse> Call(HttpClient& client,
                                         const api::Credentials& creds,
                                         api::HttpMethod method,
                                         const std::string& path,
                                         std::string body = {}) {
    api::HttpRequest request;
    request.method = method;
    request.path = path;
    request.body = std::move(body);
    request.query["nonce"] =
        std::to_string(nonce_.fetch_add(1, std::memory_order_relaxed));
    api::RequestSigner(creds).Sign(&request, kNow);
    return client.RoundTrip(request);
  }

  const api::Credentials acme_{.access_key_id = "ACME-1",
                               .secret = "acme-secret",
                               .tenant = "acme"};
  const api::Credentials globex_{.access_key_id = "GLOBEX-1",
                                 .secret = "globex-secret",
                                 .tenant = "globex"};
  std::unique_ptr<core::ScaliaCluster> cluster_;
  api::Authenticator auth_;
  std::unique_ptr<api::S3Gateway> gateway_;
  std::unique_ptr<HttpServer> server_;
  std::atomic<std::uint64_t> nonce_{0};
};

TEST_F(GatewayServerTest, SignedPutGetHeadDeleteOverTheWire) {
  HttpClient client("127.0.0.1", server_->port());
  const std::string blob(100 * 1024, 'q');

  auto put = Call(client, acme_, api::HttpMethod::kPut, "/docs/report", blob);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(put->status, 201);
  cluster_->metadata_store().SyncAll();

  auto get = Call(client, acme_, api::HttpMethod::kGet, "/docs/report");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 200);
  EXPECT_EQ(get->body, blob);

  auto head = Call(client, acme_, api::HttpMethod::kHead, "/docs/report");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->status, 200);
  EXPECT_EQ(head->headers.Get("content-length"),
            std::to_string(blob.size()));
  EXPECT_TRUE(head->body.empty());

  auto list = Call(client, acme_, api::HttpMethod::kGet, "/docs");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->status, 200);
  EXPECT_NE(list->body.find("report"), std::string::npos);

  auto del = Call(client, acme_, api::HttpMethod::kDelete, "/docs/report");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->status, 204);
  cluster_->metadata_store().SyncAll();
  auto gone = Call(client, acme_, api::HttpMethod::kGet, "/docs/report");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status, 404);
}

TEST_F(GatewayServerTest, HeadErrorResponseDoesNotDesyncKeepAlive) {
  // A 404 to a HEAD carries no body on the wire (RFC 9110 §9.3.2) even
  // though the handler produced an error body; if the server wrote it, the
  // next response on this kept-alive connection would misparse.
  HttpClient client("127.0.0.1", server_->port());
  auto head = Call(client, acme_, api::HttpMethod::kHead, "/void/missing");
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(head->status, 404);
  EXPECT_TRUE(head->body.empty());

  auto put = Call(client, acme_, api::HttpMethod::kPut, "/void/now", "x");
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(put->status, 201);
}

TEST_F(GatewayServerTest, TenantsAreIsolatedOverTheWire) {
  HttpClient client("127.0.0.1", server_->port());
  auto put =
      Call(client, acme_, api::HttpMethod::kPut, "/shared/secret", "acme-data");
  ASSERT_TRUE(put.ok());
  ASSERT_EQ(put->status, 201);
  cluster_->metadata_store().SyncAll();

  // Same path, different tenant: a different namespace entirely.
  auto other = Call(client, globex_, api::HttpMethod::kGet, "/shared/secret");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->status, 404);
}

TEST_F(GatewayServerTest, UnsignedRequestRejected401UnlessAnonymousEnabled) {
  HttpClient client("127.0.0.1", server_->port());
  api::HttpRequest request;
  request.method = api::HttpMethod::kGet;
  request.path = "/docs";
  auto response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 401);

  auth_.AllowAnonymous("public");
  response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);  // empty container listing
}

TEST_F(GatewayServerTest, MixedPutGetDeleteStressLosesNothing) {
  // N client threads × mixed ops over two tenants on one server: every
  // response arrives (closed loop), every GET body is the caller's own
  // latest PUT — a cross-tenant or cross-thread mixup would mismatch.
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      const api::Credentials& creds = (t % 2 == 0) ? acme_ : globex_;
      const std::string container = "/stress";
      const std::string key = "/obj-" + std::to_string(t);
      HttpClient client("127.0.0.1", server_->port());
      std::string last_body;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int op = i % 6;
        if (op <= 1) {  // PUT a fresh version
          last_body = creds.tenant + ":" + std::to_string(t) + ":" +
                      std::to_string(i) + ":" + std::string(512, 'd');
          auto r = Call(client, creds, api::HttpMethod::kPut, container + key,
                        last_body);
          if (!r.ok() || r->status != 201) ++failures;
        } else if (op <= 4) {  // GET must be our own latest PUT
          auto r = Call(client, creds, api::HttpMethod::kGet, container + key);
          if (!r.ok() || r->status != 200 || r->body != last_body) ++failures;
        } else {  // DELETE, then confirm 404, then re-PUT next round
          auto del =
              Call(client, creds, api::HttpMethod::kDelete, container + key);
          if (!del.ok() || del->status != 204) ++failures;
          auto gone =
              Call(client, creds, api::HttpMethod::kGet, container + key);
          if (!gone.ok() || gone->status != 404) ++failures;
          last_body = creds.tenant + ":" + std::to_string(t) + ":refill";
          auto put = Call(client, creds, api::HttpMethod::kPut,
                          container + key, last_body);
          if (!put.ok() || put->status != 201) ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Closed loop: every request got exactly one response.
  const ServerStats stats = server_->stats();
  EXPECT_GE(stats.requests_served,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

}  // namespace
}  // namespace scalia::net
