// HTTP/1.1 wire-parsing edge cases: split reads across recv boundaries,
// header/body limits, keep-alive semantics, pipelining, and the
// client-side response parser + serializers round-tripping.
#include "net/server/http_parser.h"

#include <gtest/gtest.h>

#include <string>

#include "api/http.h"

namespace scalia::net {
namespace {

ParsedRequest MustParse(RequestParser& parser) {
  auto parsed = parser.Next();
  EXPECT_EQ(parser.error_status(), 0) << parser.error_message();
  EXPECT_TRUE(parsed.has_value());
  return parsed.value_or(ParsedRequest{});
}

TEST(RequestParserTest, SimpleGetInOneFeed) {
  RequestParser parser;
  parser.Feed(
      "GET /pictures/holiday.gif HTTP/1.1\r\n"
      "Host: example.test\r\n"
      "X-Scalia-Timestamp: 42\r\n"
      "\r\n");
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_EQ(parsed.request.method, api::HttpMethod::kGet);
  EXPECT_EQ(parsed.request.path, "/pictures/holiday.gif");
  EXPECT_EQ(parsed.request.headers.Get("host"), "example.test");
  EXPECT_EQ(parsed.request.headers.Get("x-scalia-timestamp"), "42");
  EXPECT_TRUE(parsed.request.body.empty());
  EXPECT_TRUE(parsed.keep_alive);
  EXPECT_FALSE(parser.Next().has_value());  // nothing further buffered
}

TEST(RequestParserTest, SplitAcrossEveryRecvBoundary) {
  const std::string wire =
      "PUT /bucket/key HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "Content-Type: text/plain\r\n"
      "\r\n"
      "hello world";
  // Feed one byte at a time: the request must complete exactly once, at
  // the final byte, regardless of where recv() boundaries fall.
  RequestParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.Feed(wire.substr(i, 1));
    ASSERT_FALSE(parser.Next().has_value()) << "completed early at byte " << i;
    ASSERT_EQ(parser.error_status(), 0) << parser.error_message();
  }
  parser.Feed(wire.substr(wire.size() - 1));
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_EQ(parsed.request.method, api::HttpMethod::kPut);
  EXPECT_EQ(parsed.request.body, "hello world");
}

TEST(RequestParserTest, SplitInTwoAtEveryBoundary) {
  const std::string wire =
      "DELETE /bucket/old%20file HTTP/1.0\r\n"
      "Connection: keep-alive\r\n"
      "\r\n";
  for (std::size_t split = 1; split < wire.size(); ++split) {
    RequestParser parser;
    parser.Feed(wire.substr(0, split));
    parser.Feed(wire.substr(split));
    const ParsedRequest parsed = MustParse(parser);
    EXPECT_EQ(parsed.request.method, api::HttpMethod::kDelete);
    EXPECT_EQ(parsed.request.path, "/bucket/old%20file") << "split " << split;
    EXPECT_TRUE(parsed.keep_alive);  // HTTP/1.0 opted in
  }
}

TEST(RequestParserTest, PipelinedRequestsComeOutInOrder) {
  RequestParser parser;
  parser.Feed(
      "PUT /b/one HTTP/1.1\r\ncontent-length: 3\r\n\r\nAAA"
      "GET /b/two HTTP/1.1\r\n\r\n"
      "DELETE /b/three HTTP/1.1\r\n\r\n");
  EXPECT_EQ(MustParse(parser).request.path, "/b/one");
  EXPECT_EQ(MustParse(parser).request.path, "/b/two");
  EXPECT_EQ(MustParse(parser).request.path, "/b/three");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 0);
}

TEST(RequestParserTest, MissingContentLengthMeansEmptyBody) {
  RequestParser parser;
  parser.Feed("PUT /b/k HTTP/1.1\r\n\r\n");
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_TRUE(parsed.request.body.empty());
}

TEST(RequestParserTest, ZeroContentLength) {
  RequestParser parser;
  parser.Feed("PUT /b/k HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_TRUE(parsed.request.body.empty());
  EXPECT_FALSE(parsed.request.headers.Get("content-length").empty());
}

TEST(RequestParserTest, OversizedHeadersRejected431) {
  ParserLimits limits;
  limits.max_header_bytes = 256;
  RequestParser parser(limits);
  parser.Feed("GET /b/k HTTP/1.1\r\nx-padding: " + std::string(300, 'p'));
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, CompleteHeaderBlockOverLimitRejected431) {
  // The terminator arrives in the same feed, but the block itself is over
  // the limit — must still be rejected.
  ParserLimits limits;
  limits.max_header_bytes = 128;
  RequestParser parser(limits);
  parser.Feed("GET /b/k HTTP/1.1\r\nx-padding: " + std::string(150, 'p') +
              "\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, OversizedBodyRejected413BeforeTheBodyArrives) {
  ParserLimits limits;
  limits.max_body_bytes = 1024;
  RequestParser parser(limits);
  parser.Feed("PUT /b/k HTTP/1.1\r\nContent-Length: 2048\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, MalformedContentLengthRejected400) {
  // (" 5" / "5 " are accepted: optional whitespace around header values is
  // trimmed per RFC 9110 §5.5 before the value is parsed.)
  for (const char* bad : {"abc", "-1", "1e3", "", "0x10", "+5"}) {
    RequestParser parser;
    parser.Feed(std::string("PUT /b/k HTTP/1.1\r\nContent-Length: ") + bad +
                "\r\n\r\n");
    EXPECT_FALSE(parser.Next().has_value()) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParserTest, DuplicateContentLengthRejected400) {
  // Request-smuggling guard (RFC 9112 §6.3): two Content-Length headers
  // must not be silently collapsed to last-wins framing.
  RequestParser parser;
  parser.Feed(
      "PUT /b/k HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "Content-Length: 15\r\n"
      "\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, TransferEncodingRejected501) {
  RequestParser parser;
  parser.Feed(
      "PUT /b/k HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParserTest, MalformedRequestLineRejected400) {
  for (const char* bad :
       {"GET /\r\n\r\n",                       // missing version
        "GET  / HTTP/1.1\r\n\r\n",             // double space → 4 tokens
        "GET / HTTP/1.1 extra\r\n\r\n",        // trailing token
        "GET bucket/key HTTP/1.1\r\n\r\n",     // not origin-form
        "GET / HTCPCP/1.0\r\n\r\n"}) {         // not an HTTP version
    RequestParser parser;
    parser.Feed(bad);
    EXPECT_FALSE(parser.Next().has_value()) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParserTest, UnsupportedMethodRejected405) {
  RequestParser parser;
  parser.Feed("POST /b/k HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 405);
}

TEST(RequestParserTest, UnsupportedHttpVersionRejected505) {
  RequestParser parser;
  parser.Feed("GET /b/k HTTP/2.0\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(RequestParserTest, HeaderLineWithoutColonRejected400) {
  RequestParser parser;
  parser.Feed("GET /b/k HTTP/1.1\r\nnot-a-header\r\n\r\n");
  EXPECT_EQ(parser.error_status(), 0);  // only detected when parsed
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, ObsoleteLineFoldingRejected400) {
  RequestParser parser;
  parser.Feed("GET /b/k HTTP/1.1\r\nx-a: 1\r\n folded\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, ConnectionCloseAndHttp10Defaults) {
  {
    RequestParser parser;
    parser.Feed("GET /b/k HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(MustParse(parser).keep_alive);
  }
  {
    RequestParser parser;
    parser.Feed("GET /b/k HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(MustParse(parser).keep_alive);  // 1.0 defaults to close
  }
  {
    RequestParser parser;  // token list, mixed case
    parser.Feed("GET /b/k HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n");
    EXPECT_FALSE(MustParse(parser).keep_alive);
  }
}

TEST(RequestParserTest, PercentEncodedPathKeptRawForTheGateway) {
  RequestParser parser;
  parser.Feed("GET /bucket/a%20b%2Fc HTTP/1.1\r\n\r\n");
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_EQ(parsed.request.path, "/bucket/a%20b%2Fc");
  // The gateway's target parser decodes it.
  const auto target = api::ParseTarget(parsed.request.path);
  ASSERT_TRUE(target.ok());
  ASSERT_EQ(target->segments.size(), 2u);
  EXPECT_EQ(target->segments[1], "a b/c");
}

TEST(RequestParserTest, QueryStringSplitAndDecodedIntoTheRequestMap) {
  RequestParser parser;
  parser.Feed("GET /bucket/key?n=41&tag=a%20b HTTP/1.1\r\n\r\n");
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_EQ(parsed.request.path, "/bucket/key");  // query split off
  ASSERT_EQ(parsed.request.query.size(), 2u);
  EXPECT_EQ(parsed.request.query.at("n"), "41");
  EXPECT_EQ(parsed.request.query.at("tag"), "a b");
}

TEST(RequestParserTest, MalformedQueryStringRejected400) {
  RequestParser parser;
  parser.Feed("GET /bucket/key?x=%ZZ HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParserTest, BodyBytesAreNotScannedForHeaders) {
  // A body containing CRLFCRLF and request-line-looking text must pass
  // through opaquely.
  std::string body = "\r\n\r\nGET /fake HTTP/1.1\r\n\r\nbinary";
  body.push_back('\0');
  body += "data";
  RequestParser parser;
  parser.Feed("PUT /b/k HTTP/1.1\r\ncontent-length: " +
              std::to_string(body.size()) + "\r\n\r\n" + body);
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_EQ(parsed.request.body, body);
  EXPECT_FALSE(parser.Next().has_value());
  EXPECT_EQ(parser.error_status(), 0);
}

TEST(ResponseSerializationTest, RoundTripsThroughTheResponseParser) {
  api::HttpResponse response;
  response.status = 201;
  response.headers.Set("x-scalia-thing", "yes");
  response.body = "payload";
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);

  ResponseParser parser;
  parser.Feed(wire);
  auto parsed = parser.Next(/*head_response=*/false);
  ASSERT_TRUE(parsed.has_value()) << parser.error_message();
  EXPECT_EQ(parsed->response.status, 201);
  EXPECT_EQ(parsed->response.body, "payload");
  EXPECT_EQ(parsed->response.headers.Get("x-scalia-thing"), "yes");
  EXPECT_EQ(parsed->response.headers.Get("content-length"), "7");
  EXPECT_TRUE(parsed->keep_alive);
}

TEST(ResponseSerializationTest, ExplicitContentLengthPreservedForHead) {
  // A HEAD answer describes the object's size without carrying the body.
  api::HttpResponse response;
  response.status = 200;
  response.headers.Set("content-length", "123456");
  const std::string wire = SerializeResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("content-length: 123456"), std::string::npos);

  ResponseParser parser;
  parser.Feed(wire);
  auto parsed = parser.Next(/*head_response=*/true);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->response.headers.Get("content-length"), "123456");
  EXPECT_TRUE(parsed->response.body.empty());
}

TEST(ResponseSerializationTest, ConnectionCloseSignalled) {
  api::HttpResponse response;
  response.status = 400;
  const std::string wire = SerializeResponse(response, /*keep_alive=*/false);
  ResponseParser parser;
  parser.Feed(wire);
  auto parsed = parser.Next(false);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->keep_alive);
}

TEST(RequestSerializationTest, RoundTripsThroughTheRequestParser) {
  api::HttpRequest request;
  request.method = api::HttpMethod::kPut;
  request.path = "/bucket/key";
  request.query["n"] = "7";
  request.query["tag"] = "a b";
  request.headers.Set("x-scalia-rule", "rule2");
  request.body = "body bytes";
  const std::string wire = SerializeRequest(request, /*keep_alive=*/true);

  RequestParser parser;
  parser.Feed(wire);
  const ParsedRequest parsed = MustParse(parser);
  EXPECT_EQ(parsed.request.method, api::HttpMethod::kPut);
  EXPECT_EQ(parsed.request.path, "/bucket/key");
  EXPECT_EQ(parsed.request.query, request.query);
  EXPECT_EQ(parsed.request.headers.Get("x-scalia-rule"), "rule2");
  EXPECT_EQ(parsed.request.body, "body bytes");
}

TEST(ResponseParserTest, PipelinedResponsesAndByteWiseFeeding) {
  api::HttpResponse first;
  first.status = 200;
  first.body = "one";
  api::HttpResponse second;
  second.status = 404;
  second.body = "two!";
  const std::string wire =
      SerializeResponse(first, true) + SerializeResponse(second, true);

  ResponseParser parser;
  int seen = 0;
  for (char c : wire) {
    parser.Feed(std::string_view(&c, 1));
    while (auto parsed = parser.Next(false)) {
      if (seen == 0) {
        EXPECT_EQ(parsed->response.status, 200);
        EXPECT_EQ(parsed->response.body, "one");
      } else {
        EXPECT_EQ(parsed->response.status, 404);
        EXPECT_EQ(parsed->response.body, "two!");
      }
      ++seen;
    }
  }
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace scalia::net
