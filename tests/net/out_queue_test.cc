// Unit coverage for the pooled scatter-gather output path (PR 6): the
// BufferPool block recycling the per-loop serving path leans on, and the
// OutQueue segment chain — head packing, zero-copy bodies, partial-writev
// resume under an injected short writer, and error surfacing.
#include "net/server/out_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/server/buffer_pool.h"

namespace scalia::net {
namespace {

TEST(BufferPoolTest, AcquireAllocatesAndReleaseRecycles) {
  BufferPool pool(BufferPool::Config{.block_bytes = 64, .max_free_blocks = 4});
  {
    BufferPool::Block block = pool.Acquire();
    ASSERT_TRUE(block.valid());
    EXPECT_EQ(block.capacity(), 64u);
    EXPECT_EQ(block.size(), 0u);
    EXPECT_EQ(pool.stats().allocations, 1u);
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }  // destructor returns the storage
  EXPECT_EQ(pool.stats().free_blocks, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);

  BufferPool::Block again = pool.Acquire();
  EXPECT_TRUE(again.valid());
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.stats().allocations, 1u);  // no fresh heap block
}

TEST(BufferPoolTest, ReusedBlockComesBackEmpty) {
  BufferPool pool(BufferPool::Config{.block_bytes = 32, .max_free_blocks = 4});
  {
    BufferPool::Block block = pool.Acquire();
    EXPECT_EQ(block.Append("stale bytes"), 11u);
  }
  BufferPool::Block reused = pool.Acquire();
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(reused.size(), 0u);
  EXPECT_EQ(reused.remaining(), 32u);
}

TEST(BufferPoolTest, AppendTakesOnlyWhatFits) {
  BufferPool pool(BufferPool::Config{.block_bytes = 8, .max_free_blocks = 4});
  BufferPool::Block block = pool.Acquire();
  EXPECT_EQ(block.Append("0123456789"), 8u);  // capacity-bounded
  EXPECT_EQ(block.remaining(), 0u);
  EXPECT_EQ(block.Append("more"), 0u);
  EXPECT_EQ(std::string(block.data(), block.size()), "01234567");
}

TEST(BufferPoolTest, FreeListIsBoundedAndExhaustionNeverBlocks) {
  BufferPool pool(BufferPool::Config{.block_bytes = 16, .max_free_blocks = 2});
  {
    std::vector<BufferPool::Block> blocks;
    for (int i = 0; i < 5; ++i) blocks.push_back(pool.Acquire());
    EXPECT_EQ(pool.stats().allocations, 5u);  // list empty: all fresh
    EXPECT_EQ(pool.stats().outstanding, 5u);
  }
  // Only max_free_blocks came back; the rest were freed outright.
  EXPECT_EQ(pool.stats().free_blocks, 2u);
  EXPECT_EQ(pool.stats().discards, 3u);
}

TEST(BufferPoolTest, MovedFromBlockReleasesNothingTwice) {
  BufferPool pool(BufferPool::Config{.block_bytes = 16, .max_free_blocks = 4});
  BufferPool::Block a = pool.Acquire();
  BufferPool::Block b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): probing it
  EXPECT_TRUE(b.valid());
  a.Release();  // no-op
  b.Release();
  EXPECT_EQ(pool.stats().free_blocks, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

/// OutQueue over a writer that captures bytes and can be throttled to
/// short writes — the injection point the real sendmsg path is swapped
/// out through.
class OutQueueTest : public ::testing::Test {
 protected:
  OutQueueTest() : pool_(BufferPool::Config{.block_bytes = 4096}), q_(&pool_) {
    q_.set_writev_fn([this](int, const struct iovec* iov, int iovcnt) {
      return CaptureWrite(iov, iovcnt);
    });
  }

  ssize_t CaptureWrite(const struct iovec* iov, int iovcnt) {
    if (fail_errno_ != 0) {
      errno = fail_errno_;
      return -1;
    }
    std::size_t room = per_call_limit_ == 0 ? SIZE_MAX : per_call_limit_;
    std::size_t wrote = 0;
    for (int i = 0; i < iovcnt && room > 0; ++i) {
      const std::size_t take = std::min(room, iov[i].iov_len);
      captured_.append(static_cast<const char*>(iov[i].iov_base), take);
      wrote += take;
      room -= take;
    }
    max_iovcnt_seen_ = std::max(max_iovcnt_seen_, iovcnt);
    if (wrote == 0) {
      errno = EAGAIN;
      return -1;
    }
    return static_cast<ssize_t>(wrote);
  }

  BufferPool pool_;
  OutQueue q_;
  std::string captured_;
  std::size_t per_call_limit_ = 0;  // 0 = unlimited
  int fail_errno_ = 0;
  int max_iovcnt_seen_ = 0;
};

TEST_F(OutQueueTest, ConsecutiveHeadsPackIntoOneBlock) {
  for (int i = 0; i < 20; ++i) {
    q_.PushHead("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
  }
  // Twenty ~40 B heads share the first 4 KiB block: one allocation total.
  EXPECT_EQ(pool_.stats().allocations, 1u);
  const auto result = q_.Flush(/*fd=*/-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kDrained);
  EXPECT_EQ(captured_.size(), 20 * 38u);
}

TEST_F(OutQueueTest, HeadsAndBodiesFlushInOrder) {
  q_.PushHead("HTTP/1.1 200 OK\r\n\r\n");
  q_.PushBody("body-one");
  q_.PushHead("HTTP/1.1 404 Not Found\r\n\r\n");
  q_.PushBody("body-two");

  const auto result = q_.Flush(/*fd=*/-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kDrained);
  EXPECT_EQ(captured_,
            "HTTP/1.1 200 OK\r\n\r\n"
            "body-one"
            "HTTP/1.1 404 Not Found\r\n\r\n"
            "body-two");
  EXPECT_TRUE(q_.empty());
  EXPECT_EQ(result.bytes_written, captured_.size());
}

TEST_F(OutQueueTest, ShortWritesResumeWithoutLosingOrReorderingBytes) {
  std::string expected;
  for (int i = 0; i < 8; ++i) {
    const std::string head = "H" + std::to_string(i) + "|";
    const std::string body(137 + i * 31, static_cast<char>('a' + i));
    q_.PushHead(head);
    q_.PushBody(body);
    expected += head + body;
  }
  per_call_limit_ = 97;  // prime-sized short writes straddle every boundary
  std::size_t total_calls = 0;
  for (int round = 0; round < 1000 && !q_.empty(); ++round) {
    const auto result = q_.Flush(/*fd=*/-1);
    total_calls += result.writev_calls;
    ASSERT_NE(result.status, OutQueue::FlushStatus::kError);
    if (result.status == OutQueue::FlushStatus::kDrained) break;
  }
  EXPECT_TRUE(q_.empty());
  EXPECT_EQ(captured_, expected);
  EXPECT_GE(total_calls, expected.size() / 97);
}

TEST_F(OutQueueTest, WouldBlockSurfacesAndPendingBytesStayQueued) {
  q_.PushBody(std::string(512, 'x'));
  per_call_limit_ = 100;
  auto result = q_.Flush(-1);
  // The writer accepts 100 bytes per call until it returns EAGAIN-shaped
  // zero progress; Flush keeps calling while progress is made, so the
  // queue drains here.  Throttle harder: fail immediately.
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kDrained);

  q_.PushBody(std::string(64, 'y'));
  fail_errno_ = EAGAIN;
  result = q_.Flush(-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kWouldBlock);
  EXPECT_EQ(q_.pending_bytes(), 64u);
  fail_errno_ = 0;
  result = q_.Flush(-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kDrained);
  EXPECT_TRUE(q_.empty());
}

TEST_F(OutQueueTest, FatalErrnoSurfacesAsError) {
  q_.PushBody("doomed");
  fail_errno_ = EPIPE;
  const auto result = q_.Flush(-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kError);
  EXPECT_EQ(result.error, EPIPE);
}

TEST_F(OutQueueTest, ManySegmentsRespectTheIovCap) {
  std::string expected;
  for (int i = 0; i < 3 * OutQueue::kMaxIov; ++i) {
    std::string body = "seg" + std::to_string(i) + ";";
    expected += body;
    q_.PushBody(std::move(body));
  }
  const auto result = q_.Flush(-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kDrained);
  EXPECT_EQ(captured_, expected);
  EXPECT_LE(max_iovcnt_seen_, OutQueue::kMaxIov);
  EXPECT_GE(result.writev_calls, 3u);  // 192 segments / <=64 spans per call
}

TEST_F(OutQueueTest, ClearDropsEverythingAndRecyclesBlocks) {
  q_.PushHead("HTTP/1.1 200 OK\r\n\r\n");
  q_.PushBody("unsent");
  EXPECT_FALSE(q_.empty());
  q_.Clear();
  EXPECT_TRUE(q_.empty());
  EXPECT_EQ(q_.pending_bytes(), 0u);
  EXPECT_EQ(pool_.stats().outstanding, 0u);  // the head block came back
  const auto result = q_.Flush(-1);
  EXPECT_EQ(result.status, OutQueue::FlushStatus::kDrained);
  EXPECT_TRUE(captured_.empty());
}

TEST_F(OutQueueTest, EmptyBodyQueuesNothing) {
  q_.PushBody("");
  EXPECT_TRUE(q_.empty());
}

}  // namespace
}  // namespace scalia::net
