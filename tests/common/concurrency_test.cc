#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "common/bounded_queue.h"
#include "common/thread_pool.h"

namespace scalia::common {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(10,
                                [](std::size_t i) {
                                  if (i == 5) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ManySubmissionsAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&count] { count++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop(), i);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Size(), 2u);
}

TEST(BoundedQueueTest, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed to producers
  EXPECT_EQ(q.Pop(), 1);    // consumers drain
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);  // then see the close
}

TEST(BoundedQueueTest, BlockingPopWakesOnPush) {
  BoundedQueue<int> q(4);
  std::thread producer([&q] { q.Push(99); });
  EXPECT_EQ(q.Pop(), 99);
  producer.join();
}

TEST(BoundedQueueTest, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&q, &sum] {
      while (auto v = q.Pop()) sum += *v;
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  const long long expected =
      3LL * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace scalia::common
