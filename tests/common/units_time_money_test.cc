#include <gtest/gtest.h>

#include "common/money.h"
#include "common/sim_time.h"
#include "common/units.h"

namespace scalia::common {
namespace {

using namespace scalia::common::literals;

TEST(UnitsTest, DecimalConversions) {
  EXPECT_EQ(kKB, 1000u);
  EXPECT_EQ(kMB, 1000u * 1000u);
  EXPECT_EQ(kGB, 1000u * 1000u * 1000u);
  EXPECT_DOUBLE_EQ(ToGB(kGB), 1.0);
  EXPECT_DOUBLE_EQ(ToGB(250 * kMB), 0.25);
  EXPECT_EQ(FromGB(0.25), 250 * kMB);
  EXPECT_EQ(FromGB(ToGB(123456789)), 123456789u);
}

TEST(UnitsTest, Literals) {
  EXPECT_EQ(1_MB, kMB);
  EXPECT_EQ(40_MB, 40 * kMB);
  EXPECT_EQ(2_GB, 2 * kGB);
}

TEST(UnitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(5, 0), 0u);  // guarded
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1500), "1.50 KB");
  EXPECT_EQ(FormatBytes(40 * kMB), "40.00 MB");
  EXPECT_EQ(FormatBytes(3 * kGB), "3.00 GB");
}

TEST(SimTimeTest, Constants) {
  EXPECT_EQ(kHour, 3600);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kMonth, 720 * kHour);  // 30-day billing month
}

TEST(SimTimeTest, HourConversions) {
  EXPECT_DOUBLE_EQ(ToHours(kHour), 1.0);
  EXPECT_DOUBLE_EQ(ToHours(kDay), 24.0);
  EXPECT_EQ(FromHours(2.5), 2 * kHour + 30 * kMinute);
}

TEST(SimTimeTest, MonthFraction) {
  EXPECT_DOUBLE_EQ(MonthFraction(kMonth), 1.0);
  EXPECT_DOUBLE_EQ(MonthFraction(kHour), 1.0 / 720.0);
}

TEST(SimTimeTest, Format) {
  EXPECT_EQ(FormatSimTime(3 * kHour), "3h");
  EXPECT_EQ(FormatSimTime(2 * kDay + 5 * kHour), "2d 5h");
}

TEST(MoneyTest, Arithmetic) {
  Money a(1.5);
  Money b(0.25);
  EXPECT_DOUBLE_EQ((a + b).usd(), 1.75);
  EXPECT_DOUBLE_EQ((a - b).usd(), 1.25);
  EXPECT_DOUBLE_EQ((a * 2.0).usd(), 3.0);
  EXPECT_DOUBLE_EQ((2.0 * a).usd(), 3.0);
  EXPECT_DOUBLE_EQ(a / b, 6.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.usd(), 1.75);
  a -= b;
  EXPECT_DOUBLE_EQ(a.usd(), 1.5);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a.usd(), 6.0);
}

TEST(MoneyTest, Comparison) {
  EXPECT_LT(Money(1.0), Money(2.0));
  EXPECT_GT(Money(2.0), Money(1.0));
  EXPECT_EQ(Money(1.0), Money(1.0));
  EXPECT_TRUE(Money(1.0).AlmostEquals(Money(1.0 + 1e-12)));
  EXPECT_FALSE(Money(1.0).AlmostEquals(Money(1.1)));
}

TEST(MoneyTest, Formatting) {
  EXPECT_EQ(Money(1.23456).ToString(4), "$1.2346");
  EXPECT_EQ(Money(0.5).ToString(2), "$0.50");
}

TEST(MoneyTest, ZeroConstant) {
  EXPECT_DOUBLE_EQ(kZeroMoney.usd(), 0.0);
  EXPECT_EQ(kZeroMoney + Money(3.0), Money(3.0));
}

}  // namespace
}  // namespace scalia::common
