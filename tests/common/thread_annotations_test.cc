// The tooling's own coverage: common/thread_annotations.h must vanish off
// clang (GCC sees plain C++), and the common/mutex.h wrappers must behave
// exactly like the std primitives they annotate — the whole design depends
// on the wrappers adding analysis visibility and nothing else.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace scalia::common {
namespace {

#if !defined(__clang__)
// The degrade proof: outside clang every macro must expand to nothing, so
// naming a capability that does not exist anywhere still compiles.  Under
// clang the same text is a hard error, which is exactly the point — the
// attributes are real there and vapor here.
class GccNoOpProbe {
 public:
  void Touch() REQUIRES(nonexistent_capability) EXCLUDES(another_missing_one) {
    ++value_;
  }
  [[nodiscard]] int value() const { return value_; }

 private:
  int value_ GUARDED_BY(nonexistent_capability) = 0;
};

TEST(ThreadAnnotationsTest, MacrosAreNoOpsOutsideClang) {
  GccNoOpProbe probe;
  probe.Touch();
  EXPECT_EQ(probe.value(), 1);
}
#endif

TEST(MutexTest, MutualExclusionHoldsUnderContention) {
  Mutex mu;
  long counter = 0;  // all access under mu
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  // TryLock from another thread: the lock is held, so it must fail fast.
  std::thread prober([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarWakesAWaiterOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // all access under mu
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = ready;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(MutexTest, CondVarWaitForTimesOutWithoutANotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto verdict = cv.WaitFor(mu, std::chrono::milliseconds(1));
  EXPECT_EQ(verdict, std::cv_status::timeout);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  int value = 0;  // all access under mu
  {
    WriterMutexLock writer(mu);
    value = 42;
  }
  // Two reader scopes can overlap: take the second shared hold while the
  // first is still live — a writer lock here would deadlock.
  mu.LockShared();
  {
    ReaderMutexLock reader(mu);
    EXPECT_EQ(value, 42);
  }
  mu.UnlockShared();
  {
    WriterMutexLock writer(mu);
    ++value;
  }
  ReaderMutexLock reader(mu);
  EXPECT_EQ(value, 43);
}

}  // namespace
}  // namespace scalia::common
