#include "common/sha256.h"

#include <gtest/gtest.h>

namespace scalia::common {
namespace {

struct ShaCase {
  const char* input;
  const char* digest;
};

class Sha256VectorTest : public ::testing::TestWithParam<ShaCase> {};

// FIPS 180-4 / NIST reference vectors.
TEST_P(Sha256VectorTest, MatchesReferenceDigest) {
  EXPECT_EQ(Sha256::HexHash(GetParam().input), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, Sha256VectorTest,
    ::testing::Values(
        ShaCase{"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852"
                "b855"},
        ShaCase{"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f200"
                "15ad"},
        ShaCase{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db"
                "06c1"}));

TEST(Sha256Test, MillionAs) {
  const std::string million(1000000, 'a');
  EXPECT_EQ(
      Sha256::HexHash(million),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data(777, 'q');
  Sha256 h;
  h.Update(data.substr(0, 100));
  h.Update(data.substr(100));
  EXPECT_EQ(ToHex(h.Finish()), Sha256::HexHash(data));
}

// RFC 4231 HMAC-SHA256 test cases.
TEST(HmacSha256Test, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(
      ToHex(HmacSha256(key, "Hi There")),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(
      ToHex(HmacSha256("Jefe", "what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  EXPECT_EQ(
      ToHex(HmacSha256(key, msg)),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::string key(131, '\xaa');
  EXPECT_EQ(
      ToHex(HmacSha256(key, "Test Using Larger Than Block-Size Key - Hash "
                            "Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, DifferentKeysDifferentMacs) {
  EXPECT_NE(ToHex(HmacSha256("key1", "msg")), ToHex(HmacSha256("key2", "msg")));
}

TEST(DigestEqualsTest, EqualAndUnequal) {
  const Sha256Digest a = Sha256::Hash("same");
  const Sha256Digest b = Sha256::Hash("same");
  const Sha256Digest c = Sha256::Hash("different");
  EXPECT_TRUE(DigestEquals(a, b));
  EXPECT_FALSE(DigestEquals(a, c));
}

}  // namespace
}  // namespace scalia::common
