#include "common/uuid.h"

#include <gtest/gtest.h>

#include <set>

namespace scalia::common {
namespace {

TEST(UuidTest, NilByDefault) {
  Uuid u;
  EXPECT_TRUE(u.IsNil());
  EXPECT_EQ(u.ToString(), "00000000-0000-0000-0000-000000000000");
}

TEST(UuidTest, GenerateSetsVersionAndVariantBits) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::Generate(rng);
    const std::string s = u.ToString();
    ASSERT_EQ(s.size(), 36u);
    EXPECT_EQ(s[14], '4');  // version 4
    EXPECT_TRUE(s[19] == '8' || s[19] == '9' || s[19] == 'a' || s[19] == 'b')
        << s;  // variant 10xx
  }
}

TEST(UuidTest, CanonicalFormat) {
  Xoshiro256 rng(2);
  const std::string s = Uuid::Generate(rng).ToString();
  ASSERT_EQ(s.size(), 36u);
  for (std::size_t i : {8u, 13u, 18u, 23u}) EXPECT_EQ(s[i], '-');
}

TEST(UuidTest, DeterministicUnderSeed) {
  Xoshiro256 a(7), b(7);
  EXPECT_EQ(Uuid::Generate(a), Uuid::Generate(b));
}

TEST(UuidTest, ManyGeneratedAreDistinct) {
  Xoshiro256 rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Uuid::Generate(rng).ToString()).second);
  }
}

TEST(UuidTest, OrderingAndHash) {
  const Uuid a(1, 2);
  const Uuid b(1, 3);
  EXPECT_LT(a, b);
  EXPECT_NE(UuidHash{}(a), UuidHash{}(b));
  EXPECT_EQ(UuidHash{}(a), UuidHash{}(Uuid(1, 2)));
}

}  // namespace
}  // namespace scalia::common
