#include "common/md5.h"

#include <gtest/gtest.h>

namespace scalia::common {
namespace {

// RFC 1321 appendix A.5 test suite.
struct Rfc1321Case {
  const char* input;
  const char* digest;
};

class Md5Rfc1321Test : public ::testing::TestWithParam<Rfc1321Case> {};

TEST_P(Md5Rfc1321Test, MatchesReferenceDigest) {
  const auto& param = GetParam();
  EXPECT_EQ(Md5::HexHash(param.input), param.digest);
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, Md5Rfc1321Test,
    ::testing::Values(
        Rfc1321Case{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Rfc1321Case{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Rfc1321Case{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Rfc1321Case{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Rfc1321Case{"abcdefghijklmnopqrstuvwxyz",
                    "c3fcd3d76192e4007dfb496cca67e13b"},
        Rfc1321Case{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                    "56789",
                    "d174ab98d277d9f5a5611c2c9f419d9f"},
        Rfc1321Case{"1234567890123456789012345678901234567890123456789012345678"
                    "9012345678901234567890",
                    "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5Test, IncrementalUpdateMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly";
  Md5 incremental;
  for (char c : data) incremental.Update(std::string_view(&c, 1));
  EXPECT_EQ(ToHex(incremental.Finish()), Md5::HexHash(data));
}

TEST(Md5Test, ChunkedUpdateAcrossBlockBoundary) {
  // Exercise the 64-byte block boundary handling.
  std::string data(200, 'x');
  Md5 h;
  h.Update(data.substr(0, 63));
  h.Update(data.substr(63, 2));   // straddles the first block
  h.Update(data.substr(65));
  EXPECT_EQ(ToHex(h.Finish()), Md5::HexHash(data));
}

TEST(Md5Test, LargeInputDoesNotCrashAndIsStable) {
  const std::string big(1 << 20, 'z');
  EXPECT_EQ(Md5::HexHash(big), Md5::HexHash(big));
}

TEST(Md5Test, DistinctInputsYieldDistinctDigests) {
  EXPECT_NE(Md5::HexHash("container|key1"), Md5::HexHash("container|key2"));
  EXPECT_NE(Md5::HexHash("a|bc"), Md5::HexHash("ab|c"));
}

TEST(Md5Test, Digest64IsStableAndDifferentiates) {
  const auto d1 = Md5::Hash("alpha");
  const auto d2 = Md5::Hash("beta");
  EXPECT_EQ(Digest64(d1), Digest64(Md5::Hash("alpha")));
  EXPECT_NE(Digest64(d1), Digest64(d2));
}

TEST(Md5Test, HexIs32LowercaseChars) {
  const std::string hex = Md5::HexHash("anything");
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

}  // namespace
}  // namespace scalia::common
