#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scalia::common {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, NextBoundedStaysInBounds) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Xoshiro256Test, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextUniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Xoshiro256Test, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro256Test, PoissonMeanSmall) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextPoisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Xoshiro256Test, PoissonMeanLargeUsesGaussianPath) {
  Xoshiro256 rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Xoshiro256Test, PoissonZeroMeanIsZero) {
  Xoshiro256 rng(23);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0u);
}

TEST(Xoshiro256Test, ParetoRespectsScaleAndTail) {
  Xoshiro256 rng(29);
  int above_double_scale = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextPareto(/*alpha=*/2.0, /*xm=*/1.5);
    EXPECT_GE(v, 1.5);
    if (v > 3.0) ++above_double_scale;
  }
  // P(X > 2*xm) = (1/2)^alpha = 0.25 for alpha = 2.
  EXPECT_NEAR(static_cast<double>(above_double_scale) / n, 0.25, 0.01);
}

TEST(Xoshiro256Test, GaussianMoments) {
  Xoshiro256 rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Mix64Test, StableAndSpreads) {
  EXPECT_EQ(Mix64(123), Mix64(123));
  EXPECT_NE(Mix64(123), Mix64(124));
}

}  // namespace
}  // namespace scalia::common
