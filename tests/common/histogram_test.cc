#include "common/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace scalia::common {
namespace {

TEST(HistogramTest, RejectsBadShape) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bin 0
  h.Add(9.5);    // bin 9
  h.Add(-3.0);   // clamped to bin 0
  h.Add(42.0);   // clamped to bin 9
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5, 3.0);
  h.Add(2.5, 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.Mean(), (0.5 * 3.0 + 2.5 * 1.0) / 4.0);
}

TEST(HistogramTest, MeanUsesBinCenters) {
  Histogram h(0.0, 6.0, 6);
  h.Add(1.2);  // center 1.5
  h.Add(4.9);  // center 4.5
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(HistogramTest, MeanOfEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, Quantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1e-9);
  // Quantiles are monotone.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, ExpectedResidualAbove) {
  Histogram h(0.0, 8.0, 8);
  h.Add(2.5);
  h.Add(4.5);
  h.Add(6.5);
  // Above 3: centers 4.5 and 6.5 -> residuals 1.5 and 3.5, mean 2.5.
  EXPECT_DOUBLE_EQ(h.ExpectedResidualAbove(3.0), 2.5);
  // Above everything: zero.
  EXPECT_DOUBLE_EQ(h.ExpectedResidualAbove(7.0), 0.0);
}

TEST(HistogramTest, FractionAbove) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(2.5);
  h.Add(3.5);
  EXPECT_DOUBLE_EQ(h.FractionAbove(2.0), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAbove(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionAbove(10.0), 0.0);
}

TEST(HistogramTest, MergeAddsWeights) {
  Histogram a(0.0, 4.0, 4);
  Histogram b(0.0, 4.0, 4);
  a.Add(0.5);
  b.Add(0.5);
  b.Add(3.5);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(a.bin_weight(3), 1.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 3.0);
}

TEST(HistogramTest, MergeRejectsShapeMismatch) {
  Histogram a(0.0, 4.0, 4);
  Histogram b(0.0, 4.0, 8);
  EXPECT_THROW(a.Merge(b), std::invalid_argument);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

}  // namespace
}  // namespace scalia::common
