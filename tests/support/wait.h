// The one place tests are allowed to sleep.
//
// Tests must wait on *conditions*, not durations: a raw sleep_for encodes a
// guess about scheduler timing that either flakes under load or wastes the
// whole budget on fast machines.  WaitUntil polls a predicate with a short
// nap between probes and a generous deadline, so tests state what they are
// waiting *for* and the budget only matters on failure.  scripts/
// lint_rules.sh allowlists exactly this header's sleep_for; new wall-clock
// waits elsewhere in tests/ fail the static-analysis gate.
#pragma once

#include <chrono>
#include <thread>

namespace scalia::testing {

/// Polls `pred` until it returns true or `timeout` elapses; returns the
/// predicate's final value.  The default deadline is deliberately large —
/// it is a failure bound, not an expected duration.
template <typename Pred>
bool WaitUntil(Pred&& pred,
               std::chrono::milliseconds timeout = std::chrono::seconds(10),
               std::chrono::milliseconds poll = std::chrono::milliseconds(2)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    std::this_thread::sleep_for(poll);  // lint allowlist: the single poll nap
  }
  return true;
}

}  // namespace scalia::testing
