#include "api/gateway.h"

#include <gtest/gtest.h>

#include "api/auth.h"
#include "core/engine.h"
#include "provider/spec.h"

namespace scalia::api {
namespace {

using common::kHour;

Credentials AcmeCreds() {
  return Credentials{.access_key_id = "ACME-KEY",
                     .secret = "acme-secret",
                     .tenant = "acme"};
}

Credentials GlobexCreds() {
  return Credentials{.access_key_id = "GLOBEX-KEY",
                     .secret = "globex-secret",
                     .tenant = "globex"};
}

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest()
      : db_(1),
        stats_db_(&db_, 0),
        cache_(16 * common::kMiB, nullptr),
        agent_(&aggregator_),
        pool_(2) {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    core::EngineConfig config;
    config.default_rule =
        core::StorageRule{.name = "default",
                          .durability = 0.999999,
                          .availability = 0.9999,
                          .allowed_zones = provider::ZoneSet::All(),
                          .lockin = 1.0,
                          .ttl_hint = std::nullopt};
    engine_ = std::make_unique<core::Engine>("e0", &registry_, &db_, 0,
                                             &cache_, &stats_db_, &agent_,
                                             &pool_, config, /*seed=*/7);
    auth_.AddCredentials(AcmeCreds());
    auth_.AddCredentials(GlobexCreds());
    gateway_ = std::make_unique<S3Gateway>(
        &auth_, [this]() -> core::Engine& { return *engine_; });
  }

  /// Builds, signs and serves one request.
  HttpResponse Call(common::SimTime now, HttpMethod method,
                    const std::string& target, std::string body = {},
                    const Credentials& creds = AcmeCreds(),
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_headers = {}) {
    HttpRequest request;
    request.method = method;
    request.path = target;
    request.body = std::move(body);
    for (const auto& [name, value] : extra_headers) {
      request.headers.Set(name, value);
    }
    RequestSigner(creds).Sign(&request, now);
    return gateway_->Handle(now, request);
  }

  provider::ProviderRegistry registry_;
  store::ReplicatedStore db_;
  stats::StatsDb stats_db_;
  cache::CacheLayer cache_;
  stats::LogAggregator aggregator_;
  stats::LogAgent agent_;
  common::ThreadPool pool_;
  std::unique_ptr<core::Engine> engine_;
  Authenticator auth_;
  std::unique_ptr<S3Gateway> gateway_;
};

TEST_F(GatewayTest, PutGetDeleteLifecycle) {
  const std::string body(200 * common::kKB, 'g');
  auto put = Call(0, HttpMethod::kPut, "/pictures/logo.gif", body, AcmeCreds(),
                  {{"content-type", "image/gif"}});
  EXPECT_EQ(put.status, 201) << put.body;

  auto get = Call(1, HttpMethod::kGet, "/pictures/logo.gif");
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, body);
  EXPECT_EQ(get.headers.Get("content-length"), std::to_string(body.size()));

  auto del = Call(2, HttpMethod::kDelete, "/pictures/logo.gif");
  EXPECT_EQ(del.status, 204);

  auto gone = Call(3, HttpMethod::kGet, "/pictures/logo.gif");
  EXPECT_EQ(gone.status, 404);
}

TEST_F(GatewayTest, HeadReturnsMetadataWithoutBody) {
  const std::string body(100 * common::kKB, 'h');
  ASSERT_EQ(Call(0, HttpMethod::kPut, "/b/obj", body, AcmeCreds(),
                 {{"content-type", "video/mp4"}})
                .status,
            201);
  auto head = Call(1, HttpMethod::kHead, "/b/obj");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  EXPECT_EQ(head.headers.Get("content-type"), "video/mp4");
  EXPECT_EQ(head.headers.Get("content-length"), std::to_string(body.size()));
  EXPECT_FALSE(head.headers.Get("x-scalia-erasure-n").empty());
}

TEST_F(GatewayTest, ListReturnsTenantKeys) {
  ASSERT_EQ(Call(0, HttpMethod::kPut, "/b/k1", "one").status, 201);
  ASSERT_EQ(Call(0, HttpMethod::kPut, "/b/k2", "two").status, 201);
  auto list = Call(1, HttpMethod::kGet, "/b");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("k1"), std::string::npos);
  EXPECT_NE(list.body.find("k2"), std::string::npos);
}

TEST_F(GatewayTest, TenantsAreIsolated) {
  ASSERT_EQ(Call(0, HttpMethod::kPut, "/shared/doc", "acme data").status, 201);
  // Globex cannot see acme's object even at the same path.
  auto cross = Call(1, HttpMethod::kGet, "/shared/doc", {}, GlobexCreds());
  EXPECT_EQ(cross.status, 404);
  // And globex's own object at the same path is distinct.
  ASSERT_EQ(Call(2, HttpMethod::kPut, "/shared/doc", "globex data", GlobexCreds())
                .status,
            201);
  auto acme_view = Call(3, HttpMethod::kGet, "/shared/doc");
  EXPECT_EQ(acme_view.body, "acme data");
  auto globex_view = Call(4, HttpMethod::kGet, "/shared/doc", {}, GlobexCreds());
  EXPECT_EQ(globex_view.body, "globex data");
}

TEST_F(GatewayTest, UnauthenticatedRequestsRejected) {
  HttpRequest bare;
  bare.method = HttpMethod::kGet;
  bare.path = "/b/k";
  EXPECT_EQ(gateway_->Handle(0, bare).status, 401);

  // Wrong secret.
  Credentials wrong = AcmeCreds();
  wrong.secret = "bad";
  EXPECT_EQ(Call(0, HttpMethod::kGet, "/b/k", {}, wrong).status, 401);
}

TEST_F(GatewayTest, NamedRuleSelectsPlacementPolicy) {
  // Availability is deliberately lax: a 4-provider stripe at the
  // durability-maximal threshold only offers ~0.996 when each member
  // advertises 0.999, so a 0.999 floor would make every 4-set infeasible.
  gateway_->RegisterRule(
      core::StorageRule{.name = "no-lockin",
                        .durability = 0.999,
                        .availability = 0.99,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.25,  // at least 4 providers
                        .ttl_hint = std::nullopt});
  auto put = Call(0, HttpMethod::kPut, "/vault/backup.tar",
                  std::string(300 * common::kKB, 'b'), AcmeCreds(),
                  {{"x-scalia-rule", "no-lockin"}});
  ASSERT_EQ(put.status, 201) << put.body;
  auto head = Call(1, HttpMethod::kHead, "/vault/backup.tar");
  ASSERT_EQ(head.status, 200);
  EXPECT_GE(std::stoi(head.headers.Get("x-scalia-erasure-n")), 4);
}

TEST_F(GatewayTest, UnknownRuleRejected) {
  auto put = Call(0, HttpMethod::kPut, "/b/k", "data", AcmeCreds(),
                  {{"x-scalia-rule", "no-such-rule"}});
  EXPECT_EQ(put.status, 400);
}

TEST_F(GatewayTest, TtlHintParsedAndValidated) {
  EXPECT_EQ(Call(0, HttpMethod::kPut, "/b/k", "data", AcmeCreds(),
                 {{"x-scalia-ttl-hours", "24"}})
                .status,
            201);
  EXPECT_EQ(Call(1, HttpMethod::kPut, "/b/k2", "data", AcmeCreds(),
                 {{"x-scalia-ttl-hours", "soon"}})
                .status,
            400);
  EXPECT_EQ(Call(2, HttpMethod::kPut, "/b/k3", "data", AcmeCreds(),
                 {{"x-scalia-ttl-hours", "-1"}})
                .status,
            400);
}

TEST_F(GatewayTest, MalformedTargetsRejected) {
  EXPECT_EQ(Call(0, HttpMethod::kGet, "/").status, 400);
  EXPECT_EQ(Call(1, HttpMethod::kGet, "/a/b/c").status, 400);
  EXPECT_EQ(Call(2, HttpMethod::kGet, "/a/../b").status, 400);
  EXPECT_EQ(Call(3, HttpMethod::kPut, "/bucket-only", "body").status, 400);
}

TEST_F(GatewayTest, PercentEncodedKeysRoundTrip) {
  const std::string body = "spaced";
  ASSERT_EQ(
      Call(0, HttpMethod::kPut, "/b/my%20holiday%20pic.gif", body).status,
      201);
  auto get = Call(1, HttpMethod::kGet, "/b/my%20holiday%20pic.gif");
  EXPECT_EQ(get.status, 200);
  EXPECT_EQ(get.body, body);
}

TEST_F(GatewayTest, DefaultContentTypeApplied) {
  ASSERT_EQ(Call(0, HttpMethod::kPut, "/b/raw", "bytes").status, 201);
  auto head = Call(1, HttpMethod::kHead, "/b/raw");
  EXPECT_EQ(head.headers.Get("content-type"), "application/octet-stream");
}

}  // namespace
}  // namespace scalia::api
