#include "api/auth.h"

#include <gtest/gtest.h>

namespace scalia::api {
namespace {

using common::kMinute;

Credentials TestCreds() {
  return Credentials{.access_key_id = "AKID123",
                     .secret = "topsecret",
                     .tenant = "acme"};
}

HttpRequest SignedPut(const RequestSigner& signer, common::SimTime now) {
  HttpRequest request;
  request.method = HttpMethod::kPut;
  request.path = "/pictures/logo.gif";
  request.body = "GIF89a...";
  request.headers.Set("content-type", "image/gif");
  signer.Sign(&request, now);
  return request;
}

TEST(AuthTest, ValidSignatureYieldsTenant) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  const HttpRequest request = SignedPut(signer, 1000);
  auto tenant = auth.Verify(request, 1000);
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  EXPECT_EQ(*tenant, "acme");
}

TEST(AuthTest, UnknownKeyRejected) {
  Authenticator auth;  // no credentials registered
  const RequestSigner signer(TestCreds());
  auto tenant = auth.Verify(SignedPut(signer, 0), 0);
  ASSERT_FALSE(tenant.ok());
  EXPECT_EQ(tenant.status().code(), common::StatusCode::kUnauthenticated);
}

TEST(AuthTest, WrongSecretRejected) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  Credentials wrong = TestCreds();
  wrong.secret = "not-the-secret";
  const RequestSigner signer(wrong);
  EXPECT_FALSE(auth.Verify(SignedPut(signer, 0), 0).ok());
}

TEST(AuthTest, TamperedBodyRejected) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  HttpRequest request = SignedPut(signer, 0);
  request.body += "tamper";
  EXPECT_FALSE(auth.Verify(request, 0).ok());
}

TEST(AuthTest, TamperedPathRejected) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  HttpRequest request = SignedPut(signer, 0);
  request.path = "/pictures/other.gif";
  EXPECT_FALSE(auth.Verify(request, 0).ok());
}

TEST(AuthTest, TamperedQueryRejected) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  HttpRequest request = SignedPut(signer, 0);
  request.query["acl"] = "public";
  EXPECT_FALSE(auth.Verify(request, 0).ok());
}

TEST(AuthTest, MethodIsCovered) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  HttpRequest request = SignedPut(signer, 0);
  request.method = HttpMethod::kDelete;  // signed as PUT
  EXPECT_FALSE(auth.Verify(request, 0).ok());
}

TEST(AuthTest, SkewWindowEnforced) {
  Authenticator auth(/*max_skew=*/5 * kMinute);
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());

  // Signed at t=0, verified 4 minutes later: fine.
  EXPECT_TRUE(auth.Verify(SignedPut(signer, 0), 4 * kMinute).ok());
  // Verified 6 minutes later: stale.
  EXPECT_FALSE(auth.Verify(SignedPut(signer, 0), 6 * kMinute).ok());
  // Future-dated beyond the skew: rejected too.
  EXPECT_FALSE(auth.Verify(SignedPut(signer, 10 * kMinute), 0).ok());
}

TEST(AuthTest, ReplayRejected) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  const HttpRequest request = SignedPut(signer, 100);
  EXPECT_TRUE(auth.Verify(request, 100).ok());
  auto replay = auth.Verify(request, 101);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("replayed"), std::string::npos);
}

TEST(AuthTest, ReplayCacheEvictsOutsideWindow) {
  Authenticator auth(/*max_skew=*/kMinute);
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  // Fill with many distinct signatures, then verify eviction lets the set
  // stay bounded (indirectly: an old signature re-presented far outside the
  // window fails on skew anyway, which is what makes eviction safe).
  for (int i = 0; i < 50; ++i) {
    HttpRequest request;
    request.method = HttpMethod::kGet;
    request.path = "/b/k" + std::to_string(i);
    signer.Sign(&request, i);
    ASSERT_TRUE(auth.Verify(request, i).ok());
  }
  HttpRequest stale;
  stale.method = HttpMethod::kGet;
  stale.path = "/b/k0";
  signer.Sign(&stale, 0);
  EXPECT_FALSE(auth.Verify(stale, 10 * kMinute).ok());
}

TEST(AuthTest, MissingHeadersRejected) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  HttpRequest bare;
  bare.method = HttpMethod::kGet;
  bare.path = "/b/k";
  EXPECT_FALSE(auth.Verify(bare, 0).ok());

  HttpRequest no_ts = bare;
  no_ts.headers.Set("authorization", "SCALIA AKID123:deadbeef");
  EXPECT_FALSE(auth.Verify(no_ts, 0).ok());

  HttpRequest bad_scheme = bare;
  bad_scheme.headers.Set("authorization", "AWS AKID123:deadbeef");
  bad_scheme.headers.Set("x-scalia-timestamp", "0");
  EXPECT_FALSE(auth.Verify(bad_scheme, 0).ok());

  HttpRequest no_colon = bare;
  no_colon.headers.Set("authorization", "SCALIA AKID123deadbeef");
  no_colon.headers.Set("x-scalia-timestamp", "0");
  EXPECT_FALSE(auth.Verify(no_colon, 0).ok());
}

TEST(AuthTest, RevocationTakesEffect) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  const RequestSigner signer(TestCreds());
  EXPECT_TRUE(auth.Verify(SignedPut(signer, 0), 0).ok());
  EXPECT_TRUE(auth.RevokeKey("AKID123").ok());
  EXPECT_FALSE(auth.Verify(SignedPut(signer, 1), 1).ok());
  EXPECT_FALSE(auth.RevokeKey("AKID123").ok()) << "already revoked";
  EXPECT_EQ(auth.KeyCount(), 0u);
}

TEST(AuthTest, MultipleTenantsResolveIndependently) {
  Authenticator auth;
  auth.AddCredentials(TestCreds());
  auth.AddCredentials(Credentials{.access_key_id = "AKID999",
                                  .secret = "other",
                                  .tenant = "globex"});
  const RequestSigner acme(TestCreds());
  const RequestSigner globex(Credentials{.access_key_id = "AKID999",
                                         .secret = "other",
                                         .tenant = "globex"});
  EXPECT_EQ(*auth.Verify(SignedPut(acme, 0), 0), "acme");
  EXPECT_EQ(*auth.Verify(SignedPut(globex, 1), 1), "globex");
}

TEST(AuthTest, StringToSignIsCanonical) {
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.path = "/b/k";
  request.headers.Set("x-scalia-timestamp", "42");
  request.query["b"] = "2";
  request.query["a"] = "1";
  const std::string s = StringToSign(request);
  // Query keys appear sorted, so insertion order cannot change the
  // signature.
  EXPECT_NE(s.find("a=1&b=2"), std::string::npos);
  EXPECT_NE(s.find("GET\n/b/k\n42\n"), std::string::npos);
}

}  // namespace
}  // namespace scalia::api
