// Full-stack integration: signed HTTP requests through the S3 gateway into
// a live multi-datacenter cluster, across sampling periods and optimizer
// rounds — the complete §III pipeline in one test.
#include <gtest/gtest.h>

#include "api/gateway.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "provider/spec.h"

namespace scalia::api {
namespace {

using common::kHour;

std::string DeterministicBlob(std::size_t size, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string blob(size, '\0');
  for (auto& c : blob) c = static_cast<char>('a' + (rng() % 26));
  return blob;
}

class FullStackTest : public ::testing::Test {
 protected:
  FullStackTest() {
    core::ClusterConfig config;
    config.num_datacenters = 2;
    config.engines_per_dc = 2;
    config.engine.default_rule =
        core::StorageRule{.name = "default",
                          .durability = 0.999999,
                          .availability = 0.9999,
                          .allowed_zones = provider::ZoneSet::All(),
                          .lockin = 0.5,
                          .ttl_hint = std::nullopt};
    cluster_ = std::make_unique<core::ScaliaCluster>(config);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(cluster_->registry().Register(std::move(spec)).ok());
    }
    auth_.AddCredentials(creds_);
    gateway_ = std::make_unique<S3Gateway>(
        &auth_, [this]() -> core::Engine& { return cluster_->RouteRequest(); });
  }

  HttpResponse Call(common::SimTime now, HttpMethod method,
                    const std::string& target, std::string body = {}) {
    HttpRequest request;
    request.method = method;
    request.path = target;
    request.body = std::move(body);
    RequestSigner(creds_).Sign(&request, now);
    return gateway_->Handle(now, request);
  }

  const Credentials creds_{.access_key_id = "K1",
                           .secret = "s1",
                           .tenant = "site"};
  std::unique_ptr<core::ScaliaCluster> cluster_;
  Authenticator auth_;
  std::unique_ptr<S3Gateway> gateway_;
};

TEST_F(FullStackTest, FlashCrowdThroughTheGatewayKeepsDataIntact) {
  // Upload a small site: 6 assets via signed PUTs.
  std::vector<std::pair<std::string, std::string>> assets;
  for (int i = 0; i < 6; ++i) {
    const std::string key = "asset-" + std::to_string(i);
    const std::string blob = DeterministicBlob(
        (static_cast<std::size_t>(i) % 3 + 1) * 80 * common::kKB,
        static_cast<std::uint64_t>(i) + 1);
    ASSERT_EQ(Call(0, HttpMethod::kPut, "/assets/" + key, blob).status, 201)
        << key;
    assets.emplace_back(key, blob);
  }
  cluster_->metadata_store().SyncAll();

  // 8 sampling periods with a flash crowd on asset-0 in the middle; the
  // optimizer runs each period, exactly as the paper's deployment would.
  common::SimTime now = 0;
  for (int period = 0; period < 8; ++period) {
    now += kHour;
    const int hot_reads = (period >= 3 && period < 6) ? 40 : 1;
    for (int r = 0; r < hot_reads; ++r) {
      const auto got =
          Call(now + r, HttpMethod::kGet, "/assets/" + assets[0].first);
      ASSERT_EQ(got.status, 200) << "period " << period;
      ASSERT_EQ(got.body, assets[0].second);
    }
    cluster_->EndSamplingPeriod(now);
    (void)cluster_->RunOptimizationProcedure(now);
  }

  // Every asset reads back bit-exact through the gateway after whatever
  // migrations the optimizer performed.
  for (const auto& [key, blob] : assets) {
    const auto got = Call(now + 500, HttpMethod::kGet, "/assets/" + key);
    ASSERT_EQ(got.status, 200) << key;
    EXPECT_EQ(got.body, blob) << key;
  }

  // Listing works, delete works, and the deletion is visible cluster-wide.
  const auto list = Call(now + 600, HttpMethod::kGet, "/assets");
  ASSERT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("asset-5"), std::string::npos);
  ASSERT_EQ(Call(now + 700, HttpMethod::kDelete, "/assets/asset-5").status,
            204);
  cluster_->metadata_store().SyncAll();
  EXPECT_EQ(Call(now + 800, HttpMethod::kGet, "/assets/asset-5").status, 404);
}

TEST_F(FullStackTest, ProviderOutageInvisibleToGatewayClients) {
  const std::string blob = DeterministicBlob(300 * common::kKB, 77);
  ASSERT_EQ(Call(0, HttpMethod::kPut, "/vault/doc", blob).status, 201);
  cluster_->metadata_store().SyncAll();

  // One stripe member goes dark; m-of-n reconstruction hides it.
  cluster_->registry().Find("S3(l)")->failures().AddOutage(kHour, 10 * kHour);
  const auto got = Call(2 * kHour, HttpMethod::kGet, "/vault/doc");
  ASSERT_EQ(got.status, 200);
  EXPECT_EQ(got.body, blob);
}

}  // namespace
}  // namespace scalia::api
