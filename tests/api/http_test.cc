#include "api/http.h"

#include <gtest/gtest.h>

namespace scalia::api {
namespace {

TEST(MethodTest, ParseAndName) {
  EXPECT_EQ(ParseMethod("GET"), HttpMethod::kGet);
  EXPECT_EQ(ParseMethod("PUT"), HttpMethod::kPut);
  EXPECT_EQ(ParseMethod("DELETE"), HttpMethod::kDelete);
  EXPECT_EQ(ParseMethod("HEAD"), HttpMethod::kHead);
  EXPECT_FALSE(ParseMethod("POST").has_value());
  EXPECT_FALSE(ParseMethod("get").has_value());
  EXPECT_EQ(MethodName(HttpMethod::kDelete), "DELETE");
}

TEST(HeaderMapTest, CaseInsensitiveNames) {
  HeaderMap headers;
  headers.Set("Content-Type", "image/gif");
  EXPECT_EQ(headers.Get("content-type"), "image/gif");
  EXPECT_EQ(headers.Get("CONTENT-TYPE"), "image/gif");
  EXPECT_TRUE(headers.Contains("Content-type"));
  EXPECT_FALSE(headers.Contains("content-length"));
  headers.Set("CONTENT-TYPE", "text/plain");
  EXPECT_EQ(headers.Get("Content-Type"), "text/plain");
  EXPECT_EQ(headers.size(), 1u);
}

TEST(UrlCodecTest, DecodeBasics) {
  EXPECT_EQ(UrlDecode("abc").value(), "abc");
  EXPECT_EQ(UrlDecode("a%20b").value(), "a b");
  EXPECT_EQ(UrlDecode("a+b").value(), "a b");
  EXPECT_EQ(UrlDecode("%2Fetc%2Fpasswd").value(), "/etc/passwd");
  EXPECT_EQ(UrlDecode("%C3%A9").value(), "\xC3\xA9");
}

TEST(UrlCodecTest, DecodeRejectsMalformedEscapes) {
  EXPECT_FALSE(UrlDecode("%").ok());
  EXPECT_FALSE(UrlDecode("%2").ok());
  EXPECT_FALSE(UrlDecode("%zz").ok());
  EXPECT_FALSE(UrlDecode("ok%2").ok());
}

TEST(UrlCodecTest, EncodeDecodeRoundTrip) {
  const std::string inputs[] = {"plain", "with space", "slash/and?query=1",
                                "unicode \xC3\xA9", "percent%sign",
                                "key.with-safe_chars~"};
  for (const auto& s : inputs) {
    auto decoded = UrlDecode(UrlEncode(s));
    ASSERT_TRUE(decoded.ok()) << s;
    EXPECT_EQ(*decoded, s);
  }
}

TEST(UrlCodecTest, EncodeLeavesUnreservedAlone) {
  EXPECT_EQ(UrlEncode("AZaz09-_.~"), "AZaz09-_.~");
  EXPECT_EQ(UrlEncode("a b"), "a%20b");
  EXPECT_EQ(UrlEncode("a/b"), "a%2Fb");
}

TEST(ParseTargetTest, PathAndQuery) {
  auto parsed = ParseTarget("/pictures/holiday%20pic.gif?x=1&y=two%20words");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->segments.size(), 2u);
  EXPECT_EQ(parsed->segments[0], "pictures");
  EXPECT_EQ(parsed->segments[1], "holiday pic.gif");
  EXPECT_EQ(parsed->query.at("x"), "1");
  EXPECT_EQ(parsed->query.at("y"), "two words");
}

TEST(ParseTargetTest, RootAndSingleSegment) {
  auto root = ParseTarget("/");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->segments.empty());

  auto one = ParseTarget("/bucket");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->segments.size(), 1u);
  EXPECT_EQ(one->segments[0], "bucket");

  auto trailing = ParseTarget("/bucket/");
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing->segments.size(), 1u);
}

TEST(ParseTargetTest, RejectsTraversalAndMalformedPaths) {
  EXPECT_FALSE(ParseTarget("").ok());
  EXPECT_FALSE(ParseTarget("bucket/key").ok());
  EXPECT_FALSE(ParseTarget("/a//b").ok());
  EXPECT_FALSE(ParseTarget("/a/../b").ok());
  EXPECT_FALSE(ParseTarget("/%2E%2E/b").ok());  // encoded ".."
  EXPECT_FALSE(ParseTarget("/a/%zz").ok());
}

TEST(ParseTargetTest, QueryEdgeCases) {
  auto no_value = ParseTarget("/b?flag");
  ASSERT_TRUE(no_value.ok());
  EXPECT_EQ(no_value->query.at("flag"), "");

  auto empty_query = ParseTarget("/b?");
  ASSERT_TRUE(empty_query.ok());
  EXPECT_TRUE(empty_query->query.empty());

  auto multi = ParseTarget("/b?a=1&&b=2");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->query.size(), 2u);
}

TEST(StatusTextTest, KnownCodes) {
  EXPECT_EQ(StatusText(200), "OK");
  EXPECT_EQ(StatusText(404), "Not Found");
  EXPECT_EQ(StatusText(503), "Service Unavailable");
  EXPECT_EQ(StatusText(999), "Unknown");
}

}  // namespace
}  // namespace scalia::api
