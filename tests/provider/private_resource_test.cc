#include "provider/private_resource.h"

#include <gtest/gtest.h>

namespace scalia::provider {
namespace {

ProviderSpec PrivateSpec() {
  ProviderSpec spec;
  spec.id = "nas-1";
  spec.sla = {.durability = 0.99999, .availability = 0.99};
  spec.zones = {Zone::kOnPrem};
  spec.pricing = {.storage_gb_month = 0.01,
                  .bw_in_gb = 0.0,
                  .bw_out_gb = 0.0,
                  .ops_per_1000 = 0.0};
  spec.capacity = 100 * common::kMB;
  return spec;
}

class PrivateResourceTest : public ::testing::Test {
 protected:
  PrivateResourceService service_{PrivateSpec(), "secret-token"};
  RequestSigner signer_{"secret-token"};
};

TEST_F(PrivateResourceTest, SignedPutGetRoundTrip) {
  auto put = signer_.Sign("PUT", "backup/file1", "payload-bytes", 100);
  EXPECT_TRUE(service_.Handle(put, 100, nullptr).ok());

  auto get = signer_.Sign("GET", "backup/file1", "", 200);
  std::string body;
  EXPECT_TRUE(service_.Handle(get, 200, &body).ok());
  EXPECT_EQ(body, "payload-bytes");
}

TEST_F(PrivateResourceTest, ListAndDelete) {
  ASSERT_TRUE(service_.Handle(signer_.Sign("PUT", "a/1", "x", 1), 1, nullptr).ok());
  ASSERT_TRUE(service_.Handle(signer_.Sign("PUT", "a/2", "y", 2), 2, nullptr).ok());
  std::string listing;
  ASSERT_TRUE(
      service_.Handle(signer_.Sign("LIST", "a/", "", 3), 3, &listing).ok());
  EXPECT_EQ(listing, "a/1\na/2");
  ASSERT_TRUE(
      service_.Handle(signer_.Sign("DELETE", "a/1", "", 4), 4, nullptr).ok());
  std::string listing2;
  ASSERT_TRUE(
      service_.Handle(signer_.Sign("LIST", "a/", "", 5), 5, &listing2).ok());
  EXPECT_EQ(listing2, "a/2");
}

TEST_F(PrivateResourceTest, WrongTokenRejected) {
  RequestSigner wrong("other-token");
  auto req = wrong.Sign("PUT", "k", "v", 100);
  EXPECT_EQ(service_.Handle(req, 100, nullptr).code(),
            common::StatusCode::kUnauthenticated);
}

TEST_F(PrivateResourceTest, TamperedRequestRejected) {
  auto req = signer_.Sign("PUT", "k", "v", 100);
  req.body = "tampered";  // signature no longer covers the body
  EXPECT_EQ(service_.Handle(req, 100, nullptr).code(),
            common::StatusCode::kUnauthenticated);

  auto req2 = signer_.Sign("GET", "k", "", 100);
  req2.key = "other-key";
  EXPECT_EQ(service_.Handle(req2, 100, nullptr).code(),
            common::StatusCode::kUnauthenticated);
}

TEST_F(PrivateResourceTest, ReplayRejected) {
  auto req = signer_.Sign("PUT", "k", "v", 100);
  EXPECT_TRUE(service_.Handle(req, 100, nullptr).ok());
  // The identical signed request is rejected the second time.
  EXPECT_EQ(service_.Handle(req, 101, nullptr).code(),
            common::StatusCode::kUnauthenticated);
}

TEST_F(PrivateResourceTest, StaleTimestampRejected) {
  auto req = signer_.Sign("PUT", "k", "v", 100);
  const common::SimTime late = 100 + common::kMinute * 6;  // window is 5 min
  EXPECT_EQ(service_.Handle(req, late, nullptr).code(),
            common::StatusCode::kUnauthenticated);
}

TEST_F(PrivateResourceTest, FutureTimestampRejected) {
  auto req =
      signer_.Sign("PUT", "k", "v", 100 + common::kMinute * 10);
  EXPECT_EQ(service_.Handle(req, 100, nullptr).code(),
            common::StatusCode::kUnauthenticated);
}

TEST_F(PrivateResourceTest, ReplayWindowExpiryAllowsFreshSignature) {
  auto req = signer_.Sign("PUT", "k", "v", 100);
  EXPECT_TRUE(service_.Handle(req, 100, nullptr).ok());
  // A *new* request (new timestamp -> new signature) goes through later.
  auto req2 = signer_.Sign("PUT", "k", "v2", 100 + common::kMinute * 10);
  EXPECT_TRUE(
      service_.Handle(req2, 100 + common::kMinute * 10, nullptr).ok());
}

TEST_F(PrivateResourceTest, UnknownVerbRejected) {
  auto req = signer_.Sign("PATCH", "k", "v", 100);
  EXPECT_EQ(service_.Handle(req, 100, nullptr).code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(PrivateResourceTest, MalformedSignatureRejected) {
  auto req = signer_.Sign("PUT", "k", "v", 100);
  req.signature_hex = "zz" + req.signature_hex.substr(2);
  EXPECT_EQ(service_.Handle(req, 100, nullptr).code(),
            common::StatusCode::kUnauthenticated);
  req.signature_hex = "abc";  // wrong length
  EXPECT_EQ(service_.Handle(req, 100, nullptr).code(),
            common::StatusCode::kUnauthenticated);
}

TEST_F(PrivateResourceTest, CapacityEnforcedThroughService) {
  // 100 MB capacity: a 60 MB object fits, a second one does not.
  const std::string big(60 * common::kMB, 'b');
  EXPECT_TRUE(
      service_.Handle(signer_.Sign("PUT", "b1", big, 10), 10, nullptr).ok());
  EXPECT_EQ(
      service_.Handle(signer_.Sign("PUT", "b2", big, 20), 20, nullptr).code(),
      common::StatusCode::kResourceExhausted);
}

TEST(CanonicalStringTest, CoversAllFields) {
  SignedRequest a{.verb = "PUT", .key = "k", .body = "b", .timestamp = 1,
                  .signature_hex = ""};
  SignedRequest b = a;
  b.verb = "GET";
  EXPECT_NE(CanonicalString(a), CanonicalString(b));
  b = a;
  b.key = "k2";
  EXPECT_NE(CanonicalString(a), CanonicalString(b));
  b = a;
  b.body = "B";
  EXPECT_NE(CanonicalString(a), CanonicalString(b));
  b = a;
  b.timestamp = 2;
  EXPECT_NE(CanonicalString(a), CanonicalString(b));
}

}  // namespace
}  // namespace scalia::provider
