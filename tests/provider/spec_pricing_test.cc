#include <gtest/gtest.h>

#include "provider/pricing.h"
#include "provider/spec.h"

namespace scalia::provider {
namespace {

TEST(PaperCatalogTest, MatchesFig3) {
  const auto catalog = PaperCatalog();
  ASSERT_EQ(catalog.size(), 5u);

  const ProviderSpec* s3h = FindSpec(catalog, "S3(h)");
  ASSERT_NE(s3h, nullptr);
  EXPECT_DOUBLE_EQ(s3h->sla.durability, 0.99999999999);
  EXPECT_DOUBLE_EQ(s3h->sla.availability, 0.999);
  EXPECT_DOUBLE_EQ(s3h->pricing.storage_gb_month, 0.14);
  EXPECT_DOUBLE_EQ(s3h->pricing.bw_in_gb, 0.10);
  EXPECT_DOUBLE_EQ(s3h->pricing.bw_out_gb, 0.15);
  EXPECT_DOUBLE_EQ(s3h->pricing.ops_per_1000, 0.01);
  EXPECT_TRUE(s3h->zones.Contains(Zone::kEU));
  EXPECT_TRUE(s3h->zones.Contains(Zone::kUS));
  EXPECT_TRUE(s3h->zones.Contains(Zone::kAPAC));

  const ProviderSpec* s3l = FindSpec(catalog, "S3(l)");
  ASSERT_NE(s3l, nullptr);
  EXPECT_DOUBLE_EQ(s3l->sla.durability, 0.9999);
  EXPECT_DOUBLE_EQ(s3l->pricing.storage_gb_month, 0.093);

  const ProviderSpec* rs = FindSpec(catalog, "RS");
  ASSERT_NE(rs, nullptr);
  EXPECT_DOUBLE_EQ(rs->pricing.bw_in_gb, 0.08);
  EXPECT_DOUBLE_EQ(rs->pricing.bw_out_gb, 0.18);
  EXPECT_DOUBLE_EQ(rs->pricing.ops_per_1000, 0.0);
  EXPECT_FALSE(rs->zones.Contains(Zone::kEU));
  EXPECT_TRUE(rs->zones.Contains(Zone::kUS));

  const ProviderSpec* ggl = FindSpec(catalog, "Ggl");
  ASSERT_NE(ggl, nullptr);
  EXPECT_DOUBLE_EQ(ggl->pricing.storage_gb_month, 0.17);
}

TEST(PaperCatalogTest, CheapStor) {
  const ProviderSpec spec = CheapStorSpec();
  EXPECT_EQ(spec.id, "CheapStor");
  EXPECT_DOUBLE_EQ(spec.pricing.storage_gb_month, 0.09);
  EXPECT_DOUBLE_EQ(spec.pricing.bw_in_gb, 0.10);
  EXPECT_DOUBLE_EQ(spec.pricing.bw_out_gb, 0.15);
  EXPECT_DOUBLE_EQ(spec.pricing.ops_per_1000, 0.01);
}

TEST(PaperCatalogTest, FindSpecMissing) {
  const auto catalog = PaperCatalog();
  EXPECT_EQ(FindSpec(catalog, "NoSuch"), nullptr);
}

TEST(ZoneSetTest, Operations) {
  ZoneSet eu_us{Zone::kEU, Zone::kUS};
  ZoneSet us{Zone::kUS};
  ZoneSet apac{Zone::kAPAC};
  EXPECT_TRUE(eu_us.Intersects(us));
  EXPECT_FALSE(eu_us.Intersects(apac));
  EXPECT_TRUE(eu_us.Covers(us));
  EXPECT_FALSE(us.Covers(eu_us));
  EXPECT_TRUE(ZoneSet::All().Covers(eu_us));
  EXPECT_TRUE(ZoneSet{}.Empty());
  EXPECT_EQ(eu_us.ToString(), "EU,US");
}

TEST(CostOfTest, BandwidthAndOps) {
  PricingPolicy pricing{.storage_gb_month = 0.0,
                        .bw_in_gb = 0.10,
                        .bw_out_gb = 0.15,
                        .ops_per_1000 = 0.01};
  PeriodUsage usage{.storage_gb_hours = 0.0,
                    .bw_in_gb = 2.0,
                    .bw_out_gb = 4.0,
                    .ops = 3000.0};
  const auto cost = CostOf(pricing, usage, common::kHour,
                           StorageBillingMode::kProrated);
  EXPECT_NEAR(cost.usd(), 2.0 * 0.10 + 4.0 * 0.15 + 3.0 * 0.01, 1e-12);
}

TEST(CostOfTest, StorageProrated) {
  PricingPolicy pricing{.storage_gb_month = 0.14,
                        .bw_in_gb = 0.0,
                        .bw_out_gb = 0.0,
                        .ops_per_1000 = 0.0};
  // 10 GB stored for one full hour.
  PeriodUsage usage{.storage_gb_hours = 10.0,
                    .bw_in_gb = 0.0,
                    .bw_out_gb = 0.0,
                    .ops = 0.0};
  const auto prorated =
      CostOf(pricing, usage, common::kHour, StorageBillingMode::kProrated);
  EXPECT_NEAR(prorated.usd(), 10.0 * 0.14 / 720.0, 1e-12);
}

TEST(CostOfTest, StoragePerPeriod) {
  PricingPolicy pricing{.storage_gb_month = 0.14,
                        .bw_in_gb = 0.0,
                        .bw_out_gb = 0.0,
                        .ops_per_1000 = 0.0};
  PeriodUsage usage{.storage_gb_hours = 10.0,
                    .bw_in_gb = 0.0,
                    .bw_out_gb = 0.0,
                    .ops = 0.0};
  // Per-period mode charges the catalog rate per GB per sampling period.
  const auto per_period =
      CostOf(pricing, usage, common::kHour, StorageBillingMode::kPerPeriod);
  EXPECT_NEAR(per_period.usd(), 10.0 * 0.14, 1e-12);
}

TEST(CostOfTest, StorageAveragesOverPeriod) {
  PricingPolicy pricing{.storage_gb_month = 0.10,
                        .bw_in_gb = 0.0,
                        .bw_out_gb = 0.0,
                        .ops_per_1000 = 0.0};
  // 6 GB·h over a 2-hour period = 3 GB average.
  PeriodUsage usage{.storage_gb_hours = 6.0,
                    .bw_in_gb = 0.0,
                    .bw_out_gb = 0.0,
                    .ops = 0.0};
  const auto cost = CostOf(pricing, usage, 2 * common::kHour,
                           StorageBillingMode::kPerPeriod);
  EXPECT_NEAR(cost.usd(), 3.0 * 0.10, 1e-12);
}

TEST(PeriodUsageTest, Accumulates) {
  PeriodUsage a{.storage_gb_hours = 1, .bw_in_gb = 2, .bw_out_gb = 3, .ops = 4};
  PeriodUsage b{.storage_gb_hours = 10, .bw_in_gb = 20, .bw_out_gb = 30, .ops = 40};
  a += b;
  EXPECT_DOUBLE_EQ(a.storage_gb_hours, 11);
  EXPECT_DOUBLE_EQ(a.bw_in_gb, 22);
  EXPECT_DOUBLE_EQ(a.bw_out_gb, 33);
  EXPECT_DOUBLE_EQ(a.ops, 44);
}

}  // namespace
}  // namespace scalia::provider
