#include "provider/store.h"

#include <gtest/gtest.h>

#include "provider/registry.h"

namespace scalia::provider {
namespace {

using common::kHour;

ProviderSpec TestSpec(std::string id = "test") {
  ProviderSpec spec;
  spec.id = std::move(id);
  spec.sla = {.durability = 0.999999, .availability = 0.999};
  spec.zones = {Zone::kUS};
  spec.pricing = {.storage_gb_month = 0.1,
                  .bw_in_gb = 0.1,
                  .bw_out_gb = 0.1,
                  .ops_per_1000 = 0.01};
  return spec;
}

TEST(SimulatedProviderStoreTest, PutGetDeleteRoundTrip) {
  SimulatedProviderStore store(TestSpec());
  EXPECT_TRUE(store.Put(0, "k1", "hello").ok());
  auto got = store.Get(kHour, "k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello");
  EXPECT_TRUE(store.Delete(2 * kHour, "k1").ok());
  EXPECT_EQ(store.Get(3 * kHour, "k1").status().code(),
            common::StatusCode::kNotFound);
}

TEST(SimulatedProviderStoreTest, OverwriteReplacesAndAdjustsBytes) {
  SimulatedProviderStore store(TestSpec());
  ASSERT_TRUE(store.Put(0, "k", "aaaa").ok());
  EXPECT_EQ(store.StoredBytes(), 4u);
  ASSERT_TRUE(store.Put(0, "k", "bb").ok());
  EXPECT_EQ(store.StoredBytes(), 2u);
  EXPECT_EQ(*store.Get(0, "k"), "bb");
  EXPECT_EQ(store.ObjectCount(), 1u);
}

TEST(SimulatedProviderStoreTest, DeleteMissingIsNotFound) {
  SimulatedProviderStore store(TestSpec());
  EXPECT_EQ(store.Delete(0, "nope").code(), common::StatusCode::kNotFound);
}

TEST(SimulatedProviderStoreTest, OutageWindowBlocksAllOps) {
  SimulatedProviderStore store(TestSpec());
  ASSERT_TRUE(store.Put(0, "k", "v").ok());
  store.failures().AddOutage(10 * kHour, 20 * kHour);
  EXPECT_TRUE(store.IsAvailable(9 * kHour));
  EXPECT_FALSE(store.IsAvailable(10 * kHour));
  EXPECT_FALSE(store.IsAvailable(19 * kHour));
  EXPECT_TRUE(store.IsAvailable(20 * kHour));

  EXPECT_EQ(store.Get(15 * kHour, "k").status().code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(store.Put(15 * kHour, "k2", "v").code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(store.Delete(15 * kHour, "k").code(),
            common::StatusCode::kUnavailable);
  EXPECT_EQ(store.List(15 * kHour, "").status().code(),
            common::StatusCode::kUnavailable);
  // Recovers afterwards.
  EXPECT_TRUE(store.Get(21 * kHour, "k").ok());
}

TEST(SimulatedProviderStoreTest, CapacityEnforced) {
  ProviderSpec spec = TestSpec("private");
  spec.capacity = 10;
  SimulatedProviderStore store(spec);
  EXPECT_TRUE(store.Put(0, "a", "12345").ok());
  EXPECT_TRUE(store.Put(0, "b", "12345").ok());
  EXPECT_EQ(store.Put(0, "c", "x").code(),
            common::StatusCode::kResourceExhausted);
  // Replacing an object within capacity is fine.
  EXPECT_TRUE(store.Put(0, "a", "123").ok());
  EXPECT_TRUE(store.Put(0, "c", "xy").ok());
}

TEST(SimulatedProviderStoreTest, MaxChunkSizeEnforced) {
  ProviderSpec spec = TestSpec();
  spec.max_chunk_size = 4;
  SimulatedProviderStore store(spec);
  EXPECT_TRUE(store.Put(0, "ok", "1234").ok());
  EXPECT_EQ(store.Put(0, "big", "12345").code(),
            common::StatusCode::kInvalidArgument);
}

TEST(SimulatedProviderStoreTest, ListByPrefix) {
  SimulatedProviderStore store(TestSpec());
  ASSERT_TRUE(store.Put(0, "abc.0", "1").ok());
  ASSERT_TRUE(store.Put(0, "abc.1", "2").ok());
  ASSERT_TRUE(store.Put(0, "xyz.0", "3").ok());
  auto keys = store.List(0, "abc.");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"abc.0", "abc.1"}));
  auto all = store.List(0, "");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST(SimulatedProviderStoreTest, MeteringTracksTraffic) {
  SimulatedProviderStore store(TestSpec());
  ASSERT_TRUE(store.Put(0, "k", std::string(common::kMB, 'x')).ok());
  auto got = store.Get(kHour, "k");
  ASSERT_TRUE(got.ok());
  const auto usage = store.meter().Totals(kHour);
  EXPECT_NEAR(usage.bw_in_gb, 0.001, 1e-9);
  EXPECT_NEAR(usage.bw_out_gb, 0.001, 1e-9);
  EXPECT_DOUBLE_EQ(usage.ops, 2.0);
  // 1 MB held for 1 hour = 0.001 GB·h.
  EXPECT_NEAR(usage.storage_gb_hours, 0.001, 1e-9);
}

TEST(UsageMeterTest, PeriodBoundariesResetCounters) {
  UsageMeter meter(0);
  meter.RecordPut(0, common::kMB);
  meter.SetStoredBytes(0, common::kMB);
  const auto p1 = meter.EndPeriod(kHour);
  EXPECT_NEAR(p1.bw_in_gb, 0.001, 1e-9);
  EXPECT_NEAR(p1.storage_gb_hours, 0.001, 1e-9);
  // Second period: no traffic, storage continues to accrue.
  const auto p2 = meter.EndPeriod(2 * kHour);
  EXPECT_DOUBLE_EQ(p2.bw_in_gb, 0.0);
  EXPECT_DOUBLE_EQ(p2.ops, 0.0);
  EXPECT_NEAR(p2.storage_gb_hours, 0.001, 1e-9);
}

TEST(UsageMeterTest, StorageIntegratesChanges) {
  UsageMeter meter(0);
  meter.SetStoredBytes(0, 2 * common::kGB);
  meter.SetStoredBytes(kHour, 4 * common::kGB);  // 2 GB for the first hour
  const auto usage = meter.EndPeriod(2 * kHour);  // 4 GB for the second
  EXPECT_NEAR(usage.storage_gb_hours, 2.0 + 4.0, 1e-9);
}

TEST(RegistryTest, RegisterFindUnregister) {
  ProviderRegistry registry;
  EXPECT_TRUE(registry.Register(TestSpec("p1")).ok());
  EXPECT_TRUE(registry.Register(TestSpec("p2")).ok());
  EXPECT_EQ(registry.Count(), 2u);
  EXPECT_EQ(registry.Register(TestSpec("p1")).code(),
            common::StatusCode::kConflict);
  ASSERT_NE(registry.Find("p1"), nullptr);
  EXPECT_EQ(registry.Find("p3"), nullptr);

  EXPECT_TRUE(registry.Unregister("p1").ok());
  EXPECT_EQ(registry.Count(), 1u);
  EXPECT_EQ(registry.Unregister("p1").code(), common::StatusCode::kNotFound);
  // Data survives unregistration; re-registration restores visibility.
  EXPECT_TRUE(registry.Register(TestSpec("p1")).ok());
  EXPECT_EQ(registry.Count(), 2u);
}

TEST(RegistryTest, AvailableSpecsExcludesOutages) {
  ProviderRegistry registry;
  ASSERT_TRUE(registry.Register(TestSpec("up")).ok());
  ASSERT_TRUE(registry.Register(TestSpec("down")).ok());
  registry.Find("down")->failures().AddOutage(0, 10 * kHour);
  const auto available = registry.AvailableSpecs(5 * kHour);
  ASSERT_EQ(available.size(), 1u);
  EXPECT_EQ(available[0].id, "up");
  EXPECT_EQ(registry.AvailableSpecs(11 * kHour).size(), 2u);
  EXPECT_EQ(registry.Specs().size(), 2u);  // Specs() ignores reachability
}

}  // namespace
}  // namespace scalia::provider
