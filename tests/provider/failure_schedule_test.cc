// FailureSchedule merge-on-insert semantics.
//
// AddOutage merges overlapping and adjacent windows so the stored list is
// always sorted and disjoint — the invariant NextAvailable's single forward
// pass depends on.  These tests pin the edge cases: adjacency, nesting,
// zero-length windows, and chains collapsed by a bridging insert.
#include <gtest/gtest.h>

#include "provider/failure.h"

namespace scalia::provider {
namespace {

TEST(FailureScheduleTest, DisjointWindowsStaySeparate) {
  FailureSchedule schedule;
  schedule.AddOutage(10, 20);
  schedule.AddOutage(40, 50);
  EXPECT_EQ(schedule.WindowCount(), 2u);
  EXPECT_TRUE(schedule.IsAvailable(25));
  EXPECT_FALSE(schedule.IsAvailable(15));
  EXPECT_FALSE(schedule.IsAvailable(45));
}

TEST(FailureScheduleTest, OverlappingWindowsMerge) {
  FailureSchedule schedule;
  schedule.AddOutage(10, 30);
  schedule.AddOutage(20, 40);
  EXPECT_EQ(schedule.WindowCount(), 1u);
  EXPECT_FALSE(schedule.IsAvailable(10));
  EXPECT_FALSE(schedule.IsAvailable(39));
  EXPECT_TRUE(schedule.IsAvailable(40));  // half-open
  EXPECT_EQ(schedule.NextAvailable(15), 40);
}

TEST(FailureScheduleTest, AdjacentWindowsMerge) {
  // [10, 20) + [20, 30): t=20 is available in neither-merged terms? No —
  // 20 is outside the first (half-open) and inside the second, so the
  // provider never actually recovers between them.  Merged they must form
  // one [10, 30) window.
  FailureSchedule schedule;
  schedule.AddOutage(10, 20);
  schedule.AddOutage(20, 30);
  EXPECT_EQ(schedule.WindowCount(), 1u);
  EXPECT_FALSE(schedule.IsAvailable(20));
  EXPECT_EQ(schedule.NextAvailable(10), 30);
}

TEST(FailureScheduleTest, NestedWindowIsAbsorbed) {
  FailureSchedule schedule;
  schedule.AddOutage(10, 50);
  schedule.AddOutage(20, 30);  // strictly inside
  EXPECT_EQ(schedule.WindowCount(), 1u);
  EXPECT_EQ(schedule.NextAvailable(10), 50);

  // And the mirror image: the outer window arrives second.
  FailureSchedule outer_last;
  outer_last.AddOutage(20, 30);
  outer_last.AddOutage(10, 50);
  EXPECT_EQ(outer_last.WindowCount(), 1u);
  EXPECT_EQ(outer_last.NextAvailable(10), 50);
}

TEST(FailureScheduleTest, ZeroLengthAndInvertedWindowsAreNoOps) {
  FailureSchedule schedule;
  schedule.AddOutage(10, 10);  // zero-length
  schedule.AddOutage(30, 20);  // inverted
  EXPECT_TRUE(schedule.Empty());
  EXPECT_EQ(schedule.WindowCount(), 0u);
  EXPECT_TRUE(schedule.IsAvailable(10));
  EXPECT_EQ(schedule.NextAvailable(10), 10);
}

TEST(FailureScheduleTest, BridgingInsertCollapsesAChain) {
  FailureSchedule schedule;
  schedule.AddOutage(0, 10);
  schedule.AddOutage(20, 30);
  schedule.AddOutage(40, 50);
  ASSERT_EQ(schedule.WindowCount(), 3u);
  // One insert touching all three (adjacent to the first, spanning the
  // middle, overlapping the last) collapses the chain.
  schedule.AddOutage(10, 45);
  EXPECT_EQ(schedule.WindowCount(), 1u);
  EXPECT_FALSE(schedule.IsAvailable(0));
  EXPECT_FALSE(schedule.IsAvailable(49));
  EXPECT_EQ(schedule.NextAvailable(0), 50);
}

TEST(FailureScheduleTest, NextAvailableJumpsAcrossDisjointWindows) {
  FailureSchedule schedule;
  schedule.AddOutage(10, 20);
  schedule.AddOutage(20, 25);  // merges with the first
  schedule.AddOutage(30, 35);
  EXPECT_EQ(schedule.WindowCount(), 2u);
  EXPECT_EQ(schedule.NextAvailable(5), 5);    // already available
  EXPECT_EQ(schedule.NextAvailable(12), 25);  // lands in the gap
  EXPECT_EQ(schedule.NextAvailable(32), 35);
}

}  // namespace
}  // namespace scalia::provider
