// FaultInjector verdicts, the health EWMA, and quarantine entry/recovery.
#include <gtest/gtest.h>

#include "chaos/fault_injector.h"

namespace scalia::chaos {
namespace {

using provider::OpKind;

FaultPlan MustParse(const std::string& text) {
  auto plan = FaultPlan::Parse(text);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

TEST(FaultInjectorTest, OutageYieldsUnavailableVerdictsInsideTheWindow) {
  FaultInjector injector(MustParse("outage provider=X from=5 to=10\n"));
  EXPECT_FALSE(injector.OnOp("X", OpKind::kGet, 4).unavailable);
  const auto verdict = injector.OnOp("X", OpKind::kGet, 5);
  EXPECT_TRUE(verdict.unavailable);
  EXPECT_FALSE(verdict.fail_op);
  EXPECT_TRUE(injector.IsDark("X", 7));
  EXPECT_FALSE(injector.IsDark("X", 10));  // half-open
  EXPECT_FALSE(injector.IsDark("Y", 7));
  EXPECT_EQ(injector.FaultsInjected(), 1u);
}

TEST(FaultInjectorTest, BrownoutInjectsLatencyAlwaysAndErrorsOnDataOps) {
  // error_rate=1.0 makes the coin deterministic.
  FaultInjector injector(MustParse(
      "brownout provider=X from=0 to=10 latency_ms=3 error_rate=1.0\n"));
  const auto get = injector.OnOp("X", OpKind::kGet, 1);
  EXPECT_FALSE(get.unavailable);
  EXPECT_TRUE(get.fail_op);
  EXPECT_EQ(get.latency_us, 3000);
  // Delete/List keep the latency penalty but never the injected error.
  const auto del = injector.OnOp("X", OpKind::kDelete, 1);
  EXPECT_FALSE(del.fail_op);
  EXPECT_EQ(del.latency_us, 3000);
  // A browned-out provider is not dark: placement may still choose it.
  EXPECT_FALSE(injector.IsDark("X", 1));
}

TEST(FaultInjectorTest, PriceMultiplierFollowsThePlan) {
  FaultInjector injector(
      MustParse("price_shock provider=X from=2 to=4 multiplier=3.0\n"));
  EXPECT_DOUBLE_EQ(injector.PriceMultiplier("X", 1), 1.0);
  EXPECT_DOUBLE_EQ(injector.PriceMultiplier("X", 3), 3.0);
  EXPECT_DOUBLE_EQ(injector.PriceMultiplier("Y", 3), 1.0);
}

TEST(FaultInjectorTest, RepeatedFailuresQuarantineTheProvider) {
  InjectorOptions options;
  options.ewma_alpha = 0.5;
  options.quarantine_error_rate = 0.5;
  options.quarantine_s = 5;
  FaultInjector injector(FaultPlan{}, options);

  // Healthy traffic first: no quarantine.
  (void)injector.OnOp("X", OpKind::kGet, 1);
  injector.RecordOutcome("X", OpKind::kGet, true);
  EXPECT_FALSE(injector.IsDark("X", 1));

  // Two consecutive organic failures push the EWMA to 0.75 >= 0.5.
  injector.RecordOutcome("X", OpKind::kGet, false);
  injector.RecordOutcome("X", OpKind::kGet, false);
  EXPECT_TRUE(injector.IsDark("X", 1));  // quarantined, plan is empty
  ASSERT_EQ(injector.UnhealthyProviders(1).size(), 1u);
  EXPECT_EQ(injector.UnhealthyProviders(1)[0], "X");

  // While quarantined, refused-op outcomes must not extend the spell.
  injector.RecordOutcome("X", OpKind::kGet, false);

  // The spell lifts after quarantine_s, with a fresh EWMA.
  EXPECT_FALSE(injector.IsDark("X", 1 + options.quarantine_s));
  EXPECT_TRUE(injector.UnhealthyProviders(1 + options.quarantine_s).empty());
  for (const auto& health : injector.Health()) {
    if (health.id == "X") {
      EXPECT_FALSE(health.quarantined);
      EXPECT_DOUBLE_EQ(health.error_ewma, 0.0);
    }
  }
}

TEST(FaultInjectorTest, UnhealthyIncludesPlanDarkProvidersNeverContacted) {
  FaultInjector injector(MustParse("outage provider=Ghost from=0 to=10\n"));
  // No op ever touched "Ghost", yet the optimizer must re-place away from it.
  const auto unhealthy = injector.UnhealthyProviders(5);
  ASSERT_EQ(unhealthy.size(), 1u);
  EXPECT_EQ(unhealthy[0], "Ghost");
  EXPECT_TRUE(injector.UnhealthyProviders(10).empty());
}

TEST(FaultInjectorTest, HealthSnapshotCountsOutcomes) {
  FaultInjector injector(FaultPlan{});
  injector.RecordOutcome("X", OpKind::kPut, true);
  injector.RecordOutcome("X", OpKind::kPut, true);
  injector.RecordOutcome("X", OpKind::kGet, false);
  const auto health = injector.Health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].ok_ops, 2u);
  EXPECT_EQ(health[0].failed_ops, 1u);
  EXPECT_GT(health[0].error_ewma, 0.0);
}

}  // namespace
}  // namespace scalia::chaos
