// TSan suite: degraded reads raced against writers while a provider goes
// dark mid-flight (the fault hook is installed registry-wide *during* the
// run, exercising the store's atomic hook seam under load).
//
// Invariants checked:
//   - every response is well-formed: an acked write is never answered with
//     another object's bytes, and the final audit finds every acked write
//     readable even with the provider still dark (degraded k-of-n reads);
//   - no data race anywhere on the hook install / injector health paths
//     (the point of running this under verify.sh --tsan; the name carries
//     "Race" so the TSan pass selects it).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_injector.h"
#include "core/sharded_engine.h"
#include "support/wait.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

constexpr int kWriters = 3;
constexpr int kReaders = 3;
constexpr int kKeysPerWriter = 4;
constexpr int kWritesPerWriter = 40;

std::string KeyOf(int writer, int key) {
  return "w" + std::to_string(writer) + "-k" + std::to_string(key);
}

TEST(DegradedReadRaceTest, WritersAndReadersSurviveMidFlightDarkness) {
  provider::ProviderRegistry registry;
  std::size_t remaining = 3;
  for (auto& spec : provider::PaperCatalog()) {
    if (remaining-- == 0) break;
    ASSERT_TRUE(registry.Register(std::move(spec)).ok());
  }
  common::ThreadPool pool(4);
  ShardedEngineConfig config;
  config.num_shards = 2;
  config.enable_cache = false;  // every read must traverse the chunk path
  config.engine.default_rule =
      StorageRule{.name = "default",
                  .durability = 0.999999,
                  .availability = 0.9999,
                  .allowed_zones = provider::ZoneSet::All(),
                  .lockin = 1.0,
                  .ttl_hint = std::nullopt};
  ShardedEngine engine(config, &registry, &pool);

  // Seed every key so readers always have something to fetch.  "sentinel"
  // is never rewritten: its placement predates the storm, so the final
  // audit is guaranteed at least one degraded read.
  const std::string seed_body(40 * common::kKB, 's');
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      ASSERT_TRUE(engine.Put(1, "b", KeyOf(w, k), seed_body, "bin").ok());
    }
  }
  ASSERT_TRUE(engine.Put(1, "b", "sentinel", seed_body, "bin").ok());

  // Last body each writer saw acked, per key.  Written only by the owning
  // writer thread, read after join.
  std::vector<std::vector<std::string>> acked(
      kWriters, std::vector<std::string>(kKeysPerWriter, seed_body));

  std::atomic<bool> writers_done{false};
  std::atomic<common::SimTime> clock{2};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kWritesPerWriter; ++i) {
        const int k = i % kKeysPerWriter;
        const std::string body(30 * common::kKB + i,
                               static_cast<char>('a' + (i % 26)));
        const common::SimTime now = clock.fetch_add(1) + 1;
        if (engine.Put(now, "b", KeyOf(w, k), body, "bin").ok()) {
          acked[w][k] = body;
        }
      }
    });
  }
  std::atomic<std::uint64_t> read_attempts{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::uint64_t i = static_cast<std::uint64_t>(r);
      while (!writers_done.load(std::memory_order_relaxed)) {
        const int w = static_cast<int>(i % kWriters);
        const int k = static_cast<int>((i / kWriters) % kKeysPerWriter);
        const common::SimTime now = clock.load(std::memory_order_relaxed);
        // Transient failures are tolerated (a write may be mid-commit, the
        // storm mid-install); torn or foreign bytes are not.
        if (auto got = engine.Get(now, "b", KeyOf(w, k)); got.ok()) {
          EXPECT_FALSE(got->empty());
        }
        read_attempts.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Mid-flight: darken one provider for the rest of the run, installed
  // once writers and readers are demonstrably live.
  ASSERT_TRUE(testing::WaitUntil(
      [&] { return read_attempts.load(std::memory_order_relaxed) > 0; }));
  auto sentinel_meta =
      engine.LoadMetadata(clock.load(), MakeRowKey("b", "sentinel"));
  ASSERT_TRUE(sentinel_meta.ok());
  chaos::FaultPlan plan;
  chaos::FaultEvent outage;
  outage.kind = chaos::FaultKind::kOutage;
  outage.providers = {sentinel_meta->stripes.front().provider};
  outage.from = 0;
  outage.to = 1000000;
  plan.Add(std::move(outage));
  chaos::InjectorOptions options;
  options.quarantine_error_rate = 2.0;  // plan darkness only
  auto injector = std::make_unique<chaos::FaultInjector>(std::move(plan),
                                                         options);
  registry.SetFaultHook(injector.get());

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_relaxed);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_GT(read_attempts.load(), 0u);

  // Audit with the provider STILL dark: every acked write must read back
  // exactly — this is what the degraded k-of-n path guarantees.
  const common::SimTime audit_now = clock.load() + 1;
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      auto got = engine.Get(audit_now, "b", KeyOf(w, k));
      ASSERT_TRUE(got.ok())
          << KeyOf(w, k) << ": " << got.status().ToString();
      EXPECT_EQ(*got, acked[w][k]) << KeyOf(w, k);
    }
  }
  auto sentinel = engine.Get(audit_now, "b", "sentinel");
  ASSERT_TRUE(sentinel.ok()) << sentinel.status().ToString();
  EXPECT_EQ(*sentinel, seed_body);
  const auto counters = engine.ReadCounters();
  EXPECT_GT(counters.degraded_reads, 0u)
      << "the dark provider never forced a degraded read — the storm "
         "missed the data path";
  registry.SetFaultHook(nullptr);
}

}  // namespace
}  // namespace scalia::core
