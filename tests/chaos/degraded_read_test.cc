// Degraded k-of-n reads under injected faults, and the availability-driven
// re-placement sweep (the chaos tentpole's serving-path guarantees).
//
// The world mirrors the chaos bench: the first three catalog providers, the
// default rule (availability 0.9999 against per-provider 0.999), so every
// feasible placement has n >= m+1 and a single dark provider never blocks a
// read — it only forces the engine down the degraded fan-out path.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/fault_injector.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

StorageRule DefaultRule() {
  return StorageRule{.name = "default",
                     .durability = 0.999999,
                     .availability = 0.9999,
                     .allowed_zones = provider::ZoneSet::All(),
                     .lockin = 1.0,
                     .ttl_hint = std::nullopt};
}

void RegisterChaosWorld(provider::ProviderRegistry& registry) {
  std::size_t remaining = 3;
  for (auto& spec : provider::PaperCatalog()) {
    if (remaining-- == 0) break;
    ASSERT_TRUE(registry.Register(std::move(spec)).ok());
  }
}

chaos::FaultPlan OutagePlan(const provider::ProviderId& id,
                            common::SimTime from, common::SimTime to) {
  chaos::FaultPlan plan;
  chaos::FaultEvent event;
  event.kind = chaos::FaultKind::kOutage;
  event.providers = {id};
  event.from = from;
  event.to = to;
  plan.Add(std::move(event));
  return plan;
}

/// Quarantine disabled: these tests schedule darkness explicitly and must
/// not have observed-health spells extend it past the plan window.
chaos::InjectorOptions NoQuarantine() {
  chaos::InjectorOptions options;
  options.quarantine_error_rate = 2.0;  // EWMA can never reach it
  return options;
}

class DegradedReadTest : public ::testing::Test {
 protected:
  DegradedReadTest()
      : db_(1),
        stats_db_(&db_, 0),
        cache_(16 * common::kMiB, nullptr),
        agent_(&aggregator_),
        pool_(2) {
    RegisterChaosWorld(registry_);
    EngineConfig config;
    config.default_rule = DefaultRule();
    engine_ = std::make_unique<Engine>("e0", &registry_, &db_, 0, &cache_,
                                       &stats_db_, &agent_, &pool_, config,
                                       /*seed=*/11);
  }

  provider::ProviderRegistry registry_;
  store::ReplicatedStore db_;
  stats::StatsDb stats_db_;
  cache::CacheLayer cache_;
  stats::LogAggregator aggregator_;
  stats::LogAgent agent_;
  common::ThreadPool pool_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(DegradedReadTest, DarkDataChunkProviderForcesReconstruction) {
  const std::string data(100 * common::kKB, 'x');
  ASSERT_TRUE(engine_->Put(0, "b", "obj", data, "image/png").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "obj"));
  ASSERT_TRUE(meta.ok());
  ASSERT_GT(meta->stripes.size(), static_cast<std::size_t>(meta->m))
      << "rule must force n >= m+1 for this test to mean anything";

  // Darken a provider holding a *data* chunk: any m surviving chunks then
  // necessarily include parity, so the read must reconstruct.
  const auto data_stripe = std::find_if(
      meta->stripes.begin(), meta->stripes.end(), [&](const auto& s) {
        return s.chunk_index < static_cast<std::uint32_t>(meta->m);
      });
  ASSERT_NE(data_stripe, meta->stripes.end());
  chaos::FaultInjector injector(OutagePlan(data_stripe->provider, 10, 20),
                                NoQuarantine());
  registry_.SetFaultHook(&injector);

  cache_.cache().Clear();
  auto got = engine_->Get(15, "b", "obj");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, data);
  EXPECT_EQ(engine_->read_counters().degraded_reads, 1u);
  EXPECT_EQ(engine_->read_counters().reconstructions, 1u);

  // After the window the same read is clean again: counters stay put.
  cache_.cache().Clear();
  ASSERT_TRUE(engine_->Get(25, "b", "obj").ok());
  EXPECT_EQ(engine_->read_counters().degraded_reads, 1u);
  EXPECT_EQ(engine_->read_counters().reconstructions, 1u);
}

TEST_F(DegradedReadTest, AnySingleDarkProviderStillServesTheObject) {
  const std::string data(100 * common::kKB, 'y');
  ASSERT_TRUE(engine_->Put(0, "b", "obj", data, "image/png").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "obj"));
  ASSERT_TRUE(meta.ok());

  // Whichever single stripe member goes dark — data or parity — the read
  // still answers with the exact bytes.
  common::SimTime window_start = 100;
  for (const auto& stripe : meta->stripes) {
    chaos::FaultInjector injector(
        OutagePlan(stripe.provider, window_start, window_start + 10),
        NoQuarantine());
    registry_.SetFaultHook(&injector);
    cache_.cache().Clear();
    auto got = engine_->Get(window_start + 5, "b", "obj");
    ASSERT_TRUE(got.ok()) << stripe.provider << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, data) << stripe.provider;
    window_start += 100;
  }
  registry_.SetFaultHook(nullptr);
}

TEST_F(DegradedReadTest, CleanReadsLeaveCountersUntouched) {
  const std::string data(64 * common::kKB, 'z');
  ASSERT_TRUE(engine_->Put(0, "b", "obj", data, "image/png").ok());
  cache_.cache().Clear();
  ASSERT_TRUE(engine_->Get(1, "b", "obj").ok());
  EXPECT_EQ(engine_->read_counters().degraded_reads, 0u);
  EXPECT_EQ(engine_->read_counters().reconstructions, 0u);
}

TEST(AvailabilitySweepTest, OptimizerRepairsAwayFromDarkProvider) {
  provider::ProviderRegistry registry;
  RegisterChaosWorld(registry);
  common::ThreadPool pool(4);

  // The injector is created after the engine (the plan darkens a provider
  // chosen from actual placements), so the health callback indirects.
  std::unique_ptr<chaos::FaultInjector> injector;
  ShardedEngineConfig config;
  config.num_shards = 2;
  config.enable_cache = false;  // reads must hit chunks, not the cache
  config.engine.default_rule = DefaultRule();
  config.optimizer.provider_health =
      [&injector](common::SimTime now) {
        return injector ? injector->UnhealthyProviders(now)
                        : std::vector<provider::ProviderId>{};
      };
  ShardedEngine engine(config, &registry, &pool);

  const std::string data(80 * common::kKB, 'r');
  constexpr int kObjects = 6;
  for (int i = 0; i < kObjects; ++i) {
    const std::string key = "obj" + std::to_string(i);
    ASSERT_TRUE(engine.Put(0, "b", key, data, "image/png").ok());
    ASSERT_TRUE(engine.Get(1, "b", key).ok());  // access => sweep candidate
  }

  // Prime the trend state with a healthy-world run: a first-ever optimizer
  // pass sees every object's trend "change" and migrates it, which would
  // fix placements before the sweep even looks.  After priming, steady
  // traffic keeps trends flat and only the availability sweep can act.
  engine.EndSamplingPeriod(2);
  (void)engine.RunOptimizationProcedure(2);
  for (int i = 0; i < kObjects; ++i) {
    ASSERT_TRUE(engine.Get(3, "b", "obj" + std::to_string(i)).ok());
  }

  // Find a provider that actually holds chunks, then darken it for a long
  // window so the sweep (not the window's end) must fix the reads.
  auto meta = engine.LoadMetadata(4, MakeRowKey("b", "obj0"));
  ASSERT_TRUE(meta.ok());
  const provider::ProviderId dark = meta->stripes.front().provider;
  injector = std::make_unique<chaos::FaultInjector>(
      OutagePlan(dark, 5, 1000000), NoQuarantine());
  registry.SetFaultHook(injector.get());

  engine.EndSamplingPeriod(10);
  const auto report = engine.RunOptimizationProcedure(10);
  EXPECT_GT(report.repairs, 0u)
      << "sweep did not rebuild any placement (candidates="
      << report.candidates << " conflicts=" << report.conflicts
      << " migrations=" << report.migrations << " errors=" << report.errors
      << " leader=" << report.leader << ")";
  EXPECT_EQ(report.errors, 0u);

  // Every object now reads degradation-free with the provider still dark,
  // and no stripe references it anymore.
  const auto before = engine.ReadCounters();
  for (int i = 0; i < kObjects; ++i) {
    const std::string key = "obj" + std::to_string(i);
    auto got = engine.Get(20, "b", key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, data);
    auto repaired = engine.LoadMetadata(20, MakeRowKey("b", key));
    ASSERT_TRUE(repaired.ok());
    for (const auto& stripe : repaired->stripes) {
      EXPECT_NE(stripe.provider, dark) << key;
    }
  }
  const auto after = engine.ReadCounters();
  EXPECT_EQ(after.degraded_reads, before.degraded_reads)
      << "post-repair reads should not be degraded";
  registry.SetFaultHook(nullptr);
}

}  // namespace
}  // namespace scalia::core
