// FaultPlan parsing, queries, and the seeded storm generator.
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"

namespace scalia::chaos {
namespace {

TEST(FaultPlanParseTest, ParsesEveryDirective) {
  const auto plan = FaultPlan::Parse(
      "# a comment line\n"
      "seed = 42\n"
      "outage      provider=S3(l)      from=2 to=6\n"
      "brownout    provider=Azu        from=1 to=7 latency_ms=3 "
      "error_rate=0.15\n"
      "partition   providers=S3(h),RS  from=3 to=5\n"
      "price_shock provider=Ggl        from=2 to=8 multiplier=4.0\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed(), 42u);
  ASSERT_EQ(plan->events().size(), 4u);
  EXPECT_EQ(plan->events()[0].kind, FaultKind::kOutage);
  EXPECT_EQ(plan->events()[2].kind, FaultKind::kPartition);
  EXPECT_EQ(plan->events()[2].providers.size(), 2u);
  EXPECT_EQ(plan->Horizon(), 8);

  EXPECT_TRUE(plan->IsDarkAt("S3(l)", 2));
  EXPECT_FALSE(plan->IsDarkAt("S3(l)", 6));  // half-open window
  // The partition darkens both named providers, nobody else.
  EXPECT_TRUE(plan->IsDarkAt("S3(h)", 4));
  EXPECT_TRUE(plan->IsDarkAt("RS", 4));
  EXPECT_FALSE(plan->IsDarkAt("Ggl", 4));

  const auto brownout = plan->BrownoutAt("Azu", 3);
  ASSERT_TRUE(brownout.has_value());
  EXPECT_EQ(brownout->latency_ms, 3);
  EXPECT_DOUBLE_EQ(brownout->error_rate, 0.15);
  EXPECT_FALSE(plan->BrownoutAt("Azu", 7).has_value());

  EXPECT_DOUBLE_EQ(plan->PriceMultiplierAt("Ggl", 5), 4.0);
  EXPECT_DOUBLE_EQ(plan->PriceMultiplierAt("Ggl", 8), 1.0);
  EXPECT_DOUBLE_EQ(plan->PriceMultiplierAt("Azu", 5), 1.0);

  EXPECT_TRUE(plan->AnyFaultActiveAt(1));
  EXPECT_FALSE(plan->AnyFaultActiveAt(8));
}

TEST(FaultPlanParseTest, AcceptsCompactSeedSpellings) {
  for (const char* text : {"seed = 9\n", "seed =9\n", "seed=9\n"}) {
    const auto plan = FaultPlan::Parse(text);
    ASSERT_TRUE(plan.ok()) << text;
    EXPECT_EQ(plan->seed(), 9u) << text;
  }
}

TEST(FaultPlanParseTest, RejectsMalformedInputWithLineNumbers) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"outage from=1 to=2\n", "no provider"},
      {"outage provider=X from=2 to=2\n", "empty window"},
      {"outage provider=X from=3 to=1\n", "empty window"},
      {"brownout provider=X from=1 to=2 error_rate=1.5\n", "error_rate"},
      {"brownout provider=X from=1 to=2 latency_ms=-1\n", "latency_ms"},
      {"price_shock provider=X from=1 to=2 multiplier=0\n", "multiplier"},
      {"eclipse provider=X from=1 to=2\n", "unknown directive"},
      {"outage provider=X from=banana to=2\n", "bad value"},
      {"# fine\n\noutage gibberish\n", "line 3"},
  };
  for (const auto& c : cases) {
    const auto plan = FaultPlan::Parse(c.text);
    ASSERT_FALSE(plan.ok()) << c.text;
    EXPECT_NE(plan.status().ToString().find(c.needle), std::string::npos)
        << plan.status().ToString();
  }
}

TEST(FaultPlanParseTest, EmptyAndCommentOnlyInputsYieldEmptyPlans) {
  const auto plan = FaultPlan::Parse("# nothing\n\n   \n");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Empty());
  EXPECT_EQ(plan->Horizon(), 0);
  EXPECT_FALSE(plan->AnyFaultActiveAt(0));
}

TEST(FaultPlanTest, ShiftedMovesEveryWindow) {
  const auto plan =
      FaultPlan::Parse("outage provider=X from=1 to=3\n"
                       "brownout provider=Y from=2 to=4 latency_ms=1\n");
  ASSERT_TRUE(plan.ok());
  const FaultPlan shifted = plan->Shifted(10);
  EXPECT_FALSE(shifted.IsDarkAt("X", 1));
  EXPECT_TRUE(shifted.IsDarkAt("X", 11));
  EXPECT_EQ(shifted.Horizon(), 14);
  // The original is untouched.
  EXPECT_TRUE(plan->IsDarkAt("X", 1));
}

TEST(FaultPlanTest, OverlappingBrownoutsCombineWorstCase) {
  const auto plan = FaultPlan::Parse(
      "brownout provider=X from=0 to=10 latency_ms=5 error_rate=0.1\n"
      "brownout provider=X from=2 to=4  latency_ms=2 error_rate=0.4\n");
  ASSERT_TRUE(plan.ok());
  const auto level = plan->BrownoutAt("X", 3);
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(level->latency_ms, 5);          // max across events
  EXPECT_DOUBLE_EQ(level->error_rate, 0.4); // max across events
}

TEST(FaultPlanTest, StackedPriceShocksMultiply) {
  const auto plan = FaultPlan::Parse(
      "price_shock provider=X from=0 to=10 multiplier=2.0\n"
      "price_shock provider=X from=5 to=10 multiplier=3.0\n");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->PriceMultiplierAt("X", 2), 2.0);
  EXPECT_DOUBLE_EQ(plan->PriceMultiplierAt("X", 7), 6.0);
}

TEST(FaultPlanGenerateTest, SameSeedSamePlan) {
  RandomPlanConfig config;
  config.seed = 1234;
  config.providers = {"A", "B", "C"};
  config.horizon = 40;
  config.events = 6;
  const FaultPlan one = FaultPlan::Generate(config);
  const FaultPlan two = FaultPlan::Generate(config);
  EXPECT_EQ(one.ToString(), two.ToString());
  EXPECT_FALSE(one.Empty());
  EXPECT_LE(one.Horizon(), config.horizon);

  config.seed = 1235;
  const FaultPlan other = FaultPlan::Generate(config);
  EXPECT_NE(one.ToString(), other.ToString());
}

TEST(FaultPlanGenerateTest, AtMostOneProviderDarkAtATime) {
  RandomPlanConfig config;
  config.seed = 77;
  config.providers = {"A", "B", "C"};
  config.horizon = 60;
  config.events = 10;
  const FaultPlan plan = FaultPlan::Generate(config);
  for (common::SimTime t = 0; t < config.horizon; ++t) {
    int dark = 0;
    for (const auto& id : config.providers) {
      dark += plan.IsDarkAt(id, t) ? 1 : 0;
    }
    EXPECT_LE(dark, 1) << "t=" << t;
  }
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  const auto plan = FaultPlan::Parse(
      "seed = 5\n"
      "outage provider=X from=1 to=3\n"
      "brownout provider=Y from=2 to=4 latency_ms=1 error_rate=0.25\n"
      "price_shock provider=Z from=0 to=9 multiplier=2.5\n");
  ASSERT_TRUE(plan.ok());
  const auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->ToString(), plan->ToString());
  EXPECT_EQ(reparsed->seed(), 5u);
}

}  // namespace
}  // namespace scalia::chaos
