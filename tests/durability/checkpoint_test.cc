#include "durability/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "durability/recovery.h"
#include "provider/spec.h"
#include "stats/object_class.h"

namespace scalia::durability {
namespace {

namespace fs = std::filesystem;

/// A self-contained engine-state fixture (1 DC, paper providers).
struct StateFixture {
  StateFixture() : db(1), stats(&db, 0) {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry.Register(std::move(spec)).ok());
    }
  }

  [[nodiscard]] EngineStateRefs Refs() {
    return {.db = &db, .dc = 0, .stats = &stats, .registry = &registry};
  }

  store::ReplicatedStore db;
  stats::StatsDb stats;
  provider::ProviderRegistry registry;
};

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("ckpt_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~CheckpointTest() override { fs::remove_all(dir_); }

  /// Populates every checkpointed component with distinctive state.
  static void Populate(StateFixture& state) {
    ASSERT_TRUE(state.db.Put(0, "metadata", "row-a", "meta-a", 100).ok());
    ASSERT_TRUE(state.db.Put(0, "metadata", "row-b", "meta-b", 200).ok());
    ASSERT_TRUE(state.db.Delete(0, "metadata", "row-gone", 300).ok());

    state.stats.RecordObjectCreated("row-a", "class-1", 4096, 100);
    state.stats.RecordObjectCreated("row-b", "class-2", 8192, 200);
    stats::PeriodStats usage;
    usage.storage_gb = 0.5;
    usage.reads = 3;
    usage.bw_out_gb = 1.5;
    usage.ops = 3;
    state.stats.AppendPeriodStats("row-a", 0, usage, 3600);
    usage.reads = 7;
    state.stats.AppendPeriodStats("row-a", 1, usage, 7200);
    state.stats.classes().ForClass("class-1").RecordLifetime(common::kDay);
    state.stats.classes().ForClass("class-1").RecordLifetime(2 * common::kDay);

    auto* s3 = state.registry.Find(provider::PaperCatalog()[0].id);
    ASSERT_NE(s3, nullptr);
    s3->meter().RecordPut(100, 1 << 20);
    s3->meter().SetStoredBytes(100, 1 << 20);
    s3->meter().RecordGet(1800, 1 << 19);
  }

  std::string dir_;
};

TEST_F(CheckpointTest, WriteThenRestoreRoundTripsEveryComponent) {
  StateFixture source;
  Populate(source);

  const CheckpointWriter writer(dir_);
  auto info = writer.Write(source.Refs(), /*wal_lsn=*/42, /*now=*/7200);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->wal_lsn, 42u);

  StateFixture restored;
  const CheckpointLoader loader(dir_);
  auto loaded = loader.LoadInto(info->path, restored.Refs());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->wal_lsn, 42u);
  EXPECT_EQ(loaded->created_at, 7200);

  // Metadata rows, including the tombstone.
  auto a = restored.db.Get(0, "metadata", "row-a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->value, "meta-a");
  EXPECT_EQ(a->timestamp, 100);
  // The deleted row stays deleted: tombstones need not travel in the
  // checkpoint (the WAL is truncated at it), they are simply absent.
  EXPECT_FALSE(restored.db.Get(0, "metadata", "row-gone").ok());

  // Stats: object index, history, class aggregates.
  auto rec = restored.stats.GetObject("row-a");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->class_id, "class-1");
  EXPECT_EQ(rec->size, 4096u);
  EXPECT_EQ(rec->created_at, 100);
  const auto history = restored.stats.GetHistory("row-a");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_DOUBLE_EQ(history.Latest().reads, 7.0);
  const auto* cls = restored.stats.classes().Find("class-1");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->lifetime_samples(), 2u);
  EXPECT_EQ(cls->ExpectedLifetime(),
            source.stats.classes().Find("class-1")->ExpectedLifetime());
  ASSERT_TRUE(cls->MeanUsage().has_value());
  EXPECT_DOUBLE_EQ(cls->MeanUsage()->reads, 5.0);

  // Billing meters.
  const auto id = provider::PaperCatalog()[0].id;
  const auto src_totals = source.registry.Find(id)->meter().Totals(7200);
  const auto got_totals = restored.registry.Find(id)->meter().Totals(7200);
  EXPECT_DOUBLE_EQ(got_totals.bw_in_gb, src_totals.bw_in_gb);
  EXPECT_DOUBLE_EQ(got_totals.bw_out_gb, src_totals.bw_out_gb);
  EXPECT_DOUBLE_EQ(got_totals.ops, src_totals.ops);
  EXPECT_DOUBLE_EQ(got_totals.storage_gb_hours, src_totals.storage_gb_hours);
  EXPECT_EQ(restored.registry.Find(id)->meter().stored_bytes(),
            static_cast<common::Bytes>(1 << 20));
}

TEST_F(CheckpointTest, FlippedByteFailsTheDigestCheck) {
  StateFixture source;
  Populate(source);
  auto info = CheckpointWriter(dir_).Write(source.Refs(), 1, 3600);
  ASSERT_TRUE(info.ok());

  // Corrupt one byte mid-file.
  std::fstream file(info->path,
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(fs::file_size(info->path) / 2));
  char byte = 0;
  file.seekg(file.tellp());
  file.get(byte);
  file.seekp(-1, std::ios::cur);
  file.put(static_cast<char>(byte ^ 0x1));
  file.close();

  StateFixture restored;
  auto loaded = CheckpointLoader(dir_).LoadInto(info->path, restored.Refs());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, RecoveryFallsBackPastACorruptCheckpoint) {
  StateFixture source;
  Populate(source);
  const CheckpointWriter writer(dir_);
  auto old_info = writer.Write(source.Refs(), 10, 3600);
  ASSERT_TRUE(old_info.ok());

  // A newer checkpoint exists but is corrupt.
  ASSERT_TRUE(source.db.Put(0, "metadata", "row-c", "meta-c", 400).ok());
  auto new_info = writer.Write(source.Refs(), 20, 7200);
  ASSERT_TRUE(new_info.ok());
  {
    std::ofstream file(new_info->path,
                       std::ios::binary | std::ios::app);
    file << "trailing garbage";
  }

  StateFixture restored;
  const RecoveryManager recovery(dir_);
  auto report = recovery.Recover(restored.Refs(), 10000);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_loaded);
  EXPECT_EQ(report->checkpoint_lsn, 10u);
  EXPECT_EQ(report->checkpoints_rejected, 1u);
  EXPECT_EQ(report->checkpoint_age, 10000 - 3600);
  // The fallback predates row-c.
  EXPECT_FALSE(restored.db.Get(0, "metadata", "row-c").ok());
  EXPECT_TRUE(restored.db.Get(0, "metadata", "row-a").ok());
}

TEST_F(CheckpointTest, ListReturnsNewestFirst) {
  StateFixture source;
  const CheckpointWriter writer(dir_);
  ASSERT_TRUE(writer.Write(source.Refs(), 5, 100).ok());
  ASSERT_TRUE(writer.Write(source.Refs(), 50, 200).ok());
  ASSERT_TRUE(writer.Write(source.Refs(), 500, 300).ok());
  const auto files = CheckpointLoader(dir_).List();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_NE(files[0].find("checkpoint-00000000000000000500"),
            std::string::npos);
  EXPECT_NE(files[2].find("checkpoint-00000000000000000005"),
            std::string::npos);
}

}  // namespace
}  // namespace scalia::durability
