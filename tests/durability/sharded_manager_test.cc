// ShardedDurabilityManager: the manifest pin, per-shard journal streams,
// record format v3 (shard id in the header) and parallel recovery.
#include "durability/sharded_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/binary_codec.h"
#include "core/metadata.h"
#include "core/sharded_engine.h"
#include "durability/record.h"
#include "provider/spec.h"

namespace scalia::durability {
namespace {

namespace fs = std::filesystem;

using common::kHour;

constexpr std::size_t kShards = 4;

class ShardedManagerTest : public ::testing::Test {
 protected:
  ShardedManagerTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("sharded_manager_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
  }
  ~ShardedManagerTest() override { fs::remove_all(dir_); }

  /// A sharded engine plus its durability manager over dir_.
  struct World {
    World(provider::ProviderRegistry* registry, const std::string& dir,
          std::size_t num_shards) {
      core::ShardedEngineConfig config;
      config.num_shards = num_shards;
      engine =
          std::make_unique<core::ShardedEngine>(config, registry, nullptr);
      ShardedDurabilityConfig durability_config;
      durability_config.dir = dir;
      durability_config.num_shards = num_shards;
      durability_config.wal.sync_on_commit = false;
      durability_config.group_commit = false;
      std::vector<EngineStateRefs> state(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) {
        state[s] = {.db = &engine->shard_store(s),
                    .dc = 0,
                    .stats = &engine->shard_stats(s),
                    .registry = nullptr,
                    .sweep_registry = registry};
      }
      auto opened = ShardedDurabilityManager::Open(
          std::move(durability_config), std::move(state));
      status = opened.ok() ? common::Status::Ok() : opened.status();
      if (opened.ok()) durability = std::move(*opened);
    }

    std::unique_ptr<core::ShardedEngine> engine;
    std::unique_ptr<ShardedDurabilityManager> durability;
    common::Status status;
  };

  std::string dir_;
  provider::ProviderRegistry registry_;
};

TEST_F(ShardedManagerTest, ManifestPinsTheShardCount) {
  {
    World world(&registry_, dir_, kShards);
    ASSERT_TRUE(world.status.ok()) << world.status.ToString();
  }
  // The manifest is on disk and human-readable.
  std::ifstream manifest(ShardedDurabilityManager::ManifestPath(dir_));
  ASSERT_TRUE(manifest.good());
  std::string magic, shards_line;
  std::getline(manifest, magic);
  std::getline(manifest, shards_line);
  EXPECT_EQ(magic, "scalia-durability-manifest/1");
  EXPECT_EQ(shards_line, "shards=" + std::to_string(kShards));

  // Same count reopens; a different count is refused (routing would move).
  {
    World world(&registry_, dir_, kShards);
    EXPECT_TRUE(world.status.ok()) << world.status.ToString();
  }
  World mismatched(&registry_, dir_, kShards + 1);
  EXPECT_EQ(mismatched.status.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatched.status.ToString().find("refusing"), std::string::npos);
}

TEST_F(ShardedManagerTest, JournalsCarryTheirShardIds) {
  {
    World world(&registry_, dir_, kShards);
    ASSERT_TRUE(world.status.ok());
    const auto journals = world.durability->journals();
    ASSERT_EQ(journals.size(), kShards);
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(journals[s]->shard(), s);
      ASSERT_TRUE(journals[s]
                      ->LogPeriodStats("row" + std::to_string(s), 1, "csv", 0)
                      .ok());
    }
  }  // closed: the active segments are flushed and readable from disk
  // Each stream's records decode with the owning shard's id in the header.
  for (std::size_t s = 0; s < kShards; ++s) {
    std::size_t records = 0;
    auto replay = Wal::Replay(
        (fs::path(dir_) / ("shard-" + std::to_string(s)) / "wal").string(),
        [&](Lsn, std::string_view bytes) {
          auto rec = WalRecord::Decode(bytes);
          ASSERT_TRUE(rec.ok());
          EXPECT_EQ(rec->shard, s);
          ++records;
        });
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(records, 1u) << "shard " << s;
  }
}

TEST_F(ShardedManagerTest, RecordFormatV3RoundTripsAndLegacyDecodes) {
  WalRecord rec;
  rec.kind = WalRecordKind::kUpsert;
  rec.at = 42;
  rec.row_key = "deadbeef";
  rec.payload = "meta";
  rec.shard = 7;
  rec.clock.Set(0, 3);
  auto decoded = WalRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard, 7u);
  EXPECT_EQ(decoded->row_key, "deadbeef");
  EXPECT_EQ(decoded->payload, "meta");

  // A v2 record (PR 4 layout: no shard field) decodes with shard 0.
  std::string v2;
  common::BinaryWriter w(&v2);
  w.PutU8(2);  // version
  w.PutU8(static_cast<std::uint8_t>(WalRecordKind::kUpsert));
  w.PutI64(42);
  w.PutU64(0);
  w.PutString("deadbeef");
  w.PutString("meta");
  w.PutU32(0);  // empty clock
  auto legacy = WalRecord::Decode(v2);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->shard, 0u);
  EXPECT_EQ(legacy->row_key, "deadbeef");

  // A record from the future is refused, not misparsed.
  std::string v9 = rec.Encode();
  v9[0] = 9;
  EXPECT_FALSE(WalRecord::Decode(v9).ok());
}

TEST_F(ShardedManagerTest, ParallelRecoveryReplaysEveryShardAndMerges) {
  constexpr int kObjects = 20;
  {
    World world(&registry_, dir_, kShards);
    ASSERT_TRUE(world.status.ok());
    ASSERT_TRUE(world.durability->Recover(0, nullptr).ok());
    world.engine->AttachJournals(world.durability->journals());
    for (int i = 0; i < kObjects; ++i) {
      ASSERT_TRUE(world.engine
                      ->Put(0, "b", "obj" + std::to_string(i),
                            std::string(4096, 'a'), "image/png")
                      .ok());
    }
  }

  World world(&registry_, dir_, kShards);
  ASSERT_TRUE(world.status.ok());
  common::ThreadPool pool(4);
  auto report = world.durability->Recover(kHour, &pool);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->shards, kShards);
  EXPECT_EQ(report->records_replayed, static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(report->records_wrong_shard, 0u);
  ASSERT_EQ(report->per_shard.size(), kShards);
  std::uint64_t per_shard_sum = 0;
  for (const auto& shard_report : report->per_shard) {
    per_shard_sum += shard_report.records_replayed;
  }
  EXPECT_EQ(per_shard_sum, report->records_replayed);

  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += world.engine->shard_stats(s).ObjectCount();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kObjects));
}

TEST_F(ShardedManagerTest, CheckpointEveryShardThenRecoverWarm) {
  {
    World world(&registry_, dir_, kShards);
    ASSERT_TRUE(world.status.ok());
    ASSERT_TRUE(world.durability->Recover(0, nullptr).ok());
    world.engine->AttachJournals(world.durability->journals());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(world.engine
                      ->Put(0, "b", "obj" + std::to_string(i),
                            std::string(4096, 'a'), "image/png")
                      .ok());
    }
    ASSERT_TRUE(world.durability->Checkpoint(kHour).ok());
    // Post-checkpoint tail, restored from the WAL on top of the snapshots.
    ASSERT_TRUE(world.engine
                    ->Put(2 * kHour, "b", "tail", std::string(4096, 'z'),
                          "image/png")
                    .ok());
  }

  World world(&registry_, dir_, kShards);
  ASSERT_TRUE(world.status.ok());
  auto report = world.durability->Recover(3 * kHour, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checkpoints_loaded, kShards);
  EXPECT_GE(report->records_replayed, 1u);  // the tail upsert
  std::size_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += world.engine->shard_stats(s).ObjectCount();
  }
  EXPECT_EQ(total, 13u);

  // MaybeCheckpoint respects the per-shard cadence: nothing is due right
  // after a full checkpoint pass.
  auto written = world.durability->MaybeCheckpoint(3 * kHour);
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, 0u);
}

}  // namespace
}  // namespace scalia::durability
