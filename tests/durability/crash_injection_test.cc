#include "simx/crash_injection.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace scalia::simx {
namespace {

namespace fs = std::filesystem;

/// A small but non-trivial workload: a hot object cooling down, a flash
/// crowd, a cold archive, a short-lived object deleted mid-run, and a
/// late-created object — enough to exercise puts, deletes, trend-gated
/// migrations and class statistics.
ScenarioSpec TestScenario() {
  ScenarioSpec spec;
  spec.name = "crash-injection";
  spec.sampling_period = common::kHour;
  spec.num_periods = 12;

  SimObject hot;
  hot.name = "hot.png";
  hot.size = 40 * 1024;
  hot.mime = "image/png";
  hot.reads = {120, 140, 110, 80, 40, 20, 10, 5, 2, 1, 1, 1};
  spec.objects.push_back(hot);

  SimObject flash;
  flash.name = "flash.html";
  flash.size = 24 * 1024;
  flash.mime = "text/html";
  flash.created_period = 2;
  flash.reads = {2, 3, 250, 300, 260, 20, 4, 2, 1, 1};
  spec.objects.push_back(flash);

  SimObject archive;
  archive.name = "archive.tar";
  archive.size = 200 * 1024;
  archive.mime = "application/x-tar";
  archive.reads = {0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1};
  spec.objects.push_back(archive);

  SimObject ephemeral;
  ephemeral.name = "temp.bin";
  ephemeral.size = 16 * 1024;
  ephemeral.mime = "application/octet-stream";
  ephemeral.created_period = 1;
  ephemeral.deleted_period = 7;
  ephemeral.reads = {10, 8, 6, 4, 2, 1};
  spec.objects.push_back(ephemeral);

  SimObject late;
  late.name = "late.jpg";
  late.size = 64 * 1024;
  late.mime = "image/jpeg";
  late.created_period = 8;
  late.reads = {30, 40, 35, 25};
  spec.objects.push_back(late);

  return spec;
}

class CrashInjectionTest : public ::testing::Test {
 protected:
  CrashInjectionTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("crash_injection_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~CrashInjectionTest() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CrashInjectionTest, BaselineRunIsHealthy) {
  CrashInjectionConfig config;
  config.dir = dir_;
  CrashInjectionHarness harness(TestScenario(), config);
  auto baseline = harness.RunBaseline();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_FALSE(baseline->crashed);
  EXPECT_EQ(baseline->unreadable, 0u);
  EXPECT_EQ(baseline->placements.size(), 4u);  // temp.bin deleted mid-run
  for (const auto& [name, label] : baseline->placements) {
    EXPECT_EQ(label.find('<'), std::string::npos)
        << name << " has no feasible placement: " << label;
  }
}

TEST_F(CrashInjectionTest, RecoveredRunConvergesAtRandomTornOffsets) {
  const ScenarioSpec spec = TestScenario();
  CrashInjectionConfig config;
  config.dir = dir_;
  config.crash_after_period = 5;
  CrashInjectionHarness harness(spec, config);
  auto baseline = harness.RunBaseline();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CrashInjectionConfig crash_config = config;
    crash_config.seed = seed;
    CrashInjectionHarness crash_harness(spec, crash_config);
    auto crashed = crash_harness.RunWithCrash();
    ASSERT_TRUE(crashed.ok())
        << "seed " << seed << ": " << crashed.status().ToString();
    EXPECT_TRUE(crashed->crashed);
    EXPECT_EQ(crashed->unreadable, 0u) << "seed " << seed;
    const std::string diff = CrashInjectionHarness::Compare(*baseline,
                                                            *crashed);
    EXPECT_TRUE(diff.empty()) << "seed " << seed << " diverged:\n" << diff;
    // With a 4h checkpoint cadence and a crash after period 5, recovery
    // starts from a real checkpoint.
    EXPECT_TRUE(crashed->recovery.checkpoint_loaded) << "seed " << seed;
  }
}

TEST_F(CrashInjectionTest, CrashWithNoCheckpointRecoversFromWalAlone) {
  const ScenarioSpec spec = TestScenario();
  CrashInjectionConfig config;
  config.dir = dir_;
  config.crash_after_period = 9;
  config.checkpoint_every = 100 * common::kHour;  // cadence never elapses
  CrashInjectionHarness harness(spec, config);
  auto baseline = harness.RunBaseline();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  CrashInjectionConfig crash_config = config;
  crash_config.seed = 99;
  CrashInjectionHarness crash_harness(spec, crash_config);
  auto crashed = crash_harness.RunWithCrash();
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
  EXPECT_FALSE(crashed->recovery.checkpoint_loaded);
  EXPECT_GT(crashed->recovery.records_replayed, 0u);
  EXPECT_EQ(crashed->unreadable, 0u);
  const std::string diff = CrashInjectionHarness::Compare(*baseline, *crashed);
  EXPECT_TRUE(diff.empty()) << "diverged:\n" << diff;
}

}  // namespace
}  // namespace scalia::simx
