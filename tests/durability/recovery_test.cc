#include "durability/recovery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "common/binary_codec.h"
#include "core/engine.h"
#include "durability/manager.h"
#include "provider/spec.h"

namespace scalia::durability {
namespace {

namespace fs = std::filesystem;

using common::kHour;

/// A full engine stack over a durability directory.  The provider registry
/// is shared across incarnations (remote clouds survive a crash).
struct EngineWorld {
  EngineWorld(provider::ProviderRegistry* registry_in, const std::string& dir)
      : registry(registry_in), db(1), stats(&db, 0) {
    DurabilityConfig config;
    config.dir = dir;
    config.wal.sync_on_commit = false;
    config.group_commit = false;  // synchronous appends: simplest for tests
    auto opened = DurabilityManager::Open(
        config, EngineStateRefs{.db = &db, .dc = 0, .stats = &stats,
                                .registry = nullptr});
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    durability = std::move(*opened);
    engine = std::make_unique<core::Engine>(
        "e0", registry, &db, 0, nullptr, &stats, nullptr, nullptr,
        core::EngineConfig{}, /*seed=*/11);
    engine->AttachJournal(durability->journal());
  }

  provider::ProviderRegistry* registry;
  store::ReplicatedStore db;
  stats::StatsDb stats;
  std::unique_ptr<DurabilityManager> durability;
  std::unique_ptr<core::Engine> engine;
};

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("recovery_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
  }
  ~RecoveryTest() override { fs::remove_all(dir_); }

  static std::string Payload(std::size_t size, char fill) {
    return std::string(size, fill);
  }

  std::string dir_;
  provider::ProviderRegistry registry_;
};

TEST_F(RecoveryTest, CheckpointPlusReplayRestoresEngineState) {
  {
    EngineWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(
        world.engine->Put(0, "b", "obj1", Payload(40960, 'a'), "image/png")
            .ok());
    ASSERT_TRUE(
        world.engine->Put(0, "b", "obj2", Payload(20480, 'b'), "image/png")
            .ok());
    ASSERT_TRUE(
        world.engine->Put(kHour, "b", "obj3", Payload(30720, 'c'), "text/html")
            .ok());

    // Checkpoint, then keep mutating: the tail must come from WAL replay.
    ASSERT_TRUE(world.durability->Checkpoint(2 * kHour).ok());
    ASSERT_TRUE(world.engine
                    ->Put(3 * kHour, "b", "obj4", Payload(10240, 'd'),
                          "image/jpeg")
                    .ok());
    ASSERT_TRUE(world.engine->Delete(3 * kHour, "b", "obj2").ok());
  }

  EngineWorld world(&registry_, dir_);
  auto report = world.durability->Recover(4 * kHour);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_loaded);
  EXPECT_EQ(report->checkpoint_created_at, 2 * kHour);
  EXPECT_EQ(report->checkpoint_age, 2 * kHour);
  EXPECT_GE(report->records_replayed, 2u);  // obj4 upsert + obj2 tombstone
  EXPECT_EQ(report->wal_bytes_discarded, 0u);

  auto got1 = world.engine->Get(4 * kHour, "b", "obj1");
  ASSERT_TRUE(got1.ok()) << got1.status().ToString();
  EXPECT_EQ(*got1, Payload(40960, 'a'));
  auto got4 = world.engine->Get(4 * kHour, "b", "obj4");
  ASSERT_TRUE(got4.ok()) << got4.status().ToString();
  EXPECT_EQ(*got4, Payload(10240, 'd'));
  EXPECT_EQ(world.engine->Get(4 * kHour, "b", "obj2").status().code(),
            common::StatusCode::kNotFound);

  // The statistics survived too: obj4 (journal-only) has its record, and
  // obj2's deletion fed the class lifetime statistics.
  EXPECT_TRUE(
      world.stats.GetObject(core::MakeRowKey("b", "obj4")).has_value());
  EXPECT_FALSE(
      world.stats.GetObject(core::MakeRowKey("b", "obj2")).has_value());
  EXPECT_EQ(world.stats.ObjectCount(), 3u);
}

TEST_F(RecoveryTest, MutationsAfterACheckpointedRestartSurviveTheNextRestart) {
  // Regression: a restart right after a checkpoint must not restart WAL
  // numbering below the checkpoint LSN, or the records journaled by the
  // new incarnation are skipped at the *next* recovery.
  {
    EngineWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(
        world.engine->Put(0, "b", "obj1", Payload(20480, 'a'), "image/png")
            .ok());
    ASSERT_TRUE(world.durability->Checkpoint(kHour).ok());
  }
  {
    EngineWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(kHour).ok());
    ASSERT_TRUE(world.engine
                    ->Put(2 * kHour, "b", "obj2", Payload(20480, 'b'),
                          "image/png")
                    .ok());
  }
  EngineWorld world(&registry_, dir_);
  auto report = world.durability->Recover(3 * kHour);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->records_replayed, 1u);  // obj2's upsert
  EXPECT_TRUE(world.engine->Get(3 * kHour, "b", "obj1").ok());
  EXPECT_TRUE(world.engine->Get(3 * kHour, "b", "obj2").ok())
      << "obj2's WAL record was numbered below the checkpoint and skipped";
  EXPECT_EQ(world.stats.ObjectCount(), 2u);
}

TEST_F(RecoveryTest, FallbackCheckpointStillSeesRecordsWrittenAfterIt) {
  // Regression: the WAL may only be truncated through the *fallback*
  // checkpoint, so that falling back past a corrupt newest checkpoint can
  // still replay the records between the two.
  std::string newest_checkpoint;
  {
    EngineWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    ASSERT_TRUE(
        world.engine->Put(0, "b", "obj1", Payload(20480, 'a'), "image/png")
            .ok());
    ASSERT_TRUE(world.durability->Checkpoint(kHour).ok());
    ASSERT_TRUE(world.engine
                    ->Put(2 * kHour, "b", "obj2", Payload(20480, 'b'),
                          "image/png")
                    .ok());
    ASSERT_TRUE(world.durability->Checkpoint(3 * kHour).ok());
    newest_checkpoint = CheckpointLoader(dir_).List().front();
  }
  {  // corrupt the newest checkpoint on disk (xor so the byte really flips)
    std::fstream file(newest_checkpoint,
                      std::ios::binary | std::ios::in | std::ios::out);
    const auto pos =
        static_cast<std::streamoff>(fs::file_size(newest_checkpoint) / 2);
    file.seekg(pos);
    char byte = 0;
    file.get(byte);
    file.seekp(pos);
    file.put(static_cast<char>(byte ^ 0x1));
  }
  EngineWorld world(&registry_, dir_);
  auto report = world.durability->Recover(4 * kHour);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checkpoints_rejected, 1u);
  EXPECT_TRUE(report->checkpoint_loaded);
  EXPECT_GE(report->records_replayed, 1u);  // obj2, from the retained log
  EXPECT_TRUE(world.engine->Get(4 * kHour, "b", "obj1").ok());
  EXPECT_TRUE(world.engine->Get(4 * kHour, "b", "obj2").ok())
      << "records between the checkpoints were truncated away";
}

TEST_F(RecoveryTest, ColdStartReportsNoCheckpointAndNoRecords) {
  EngineWorld world(&registry_, dir_);
  auto report = world.durability->Recover(0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->checkpoint_loaded);
  EXPECT_EQ(report->records_replayed, 0u);
  EXPECT_EQ(report->wal_bytes_discarded, 0u);
}

// The acceptance-criteria fuzz: truncate the WAL at *every* byte offset of
// the final record; recovery must never crash, must restore every earlier
// record, and must report exactly the bytes it discarded.
TEST_F(RecoveryTest, TornWriteFuzzEveryOffsetOfFinalRecord) {
  std::uint64_t total_records = 0;
  {
    EngineWorld world(&registry_, dir_);
    ASSERT_TRUE(world.durability->Recover(0).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(world.engine
                      ->Put(i * kHour, "b", "obj" + std::to_string(i),
                            Payload(8192 + 512 * i, static_cast<char>('a' + i)),
                            "image/png")
                      .ok());
    }
    total_records = world.durability->wal()->last_lsn();
  }
  ASSERT_GE(total_records, 4u);

  // Locate the final frame in the single populated segment.
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(fs::path(dir_) / "wal")) {
    if (entry.path().extension() == ".seg" && entry.file_size() > 0) {
      EXPECT_TRUE(segment.empty()) << "expected a single populated segment";
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  std::string bytes;
  {
    std::ifstream in(segment, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  std::size_t last_frame_start = 0;
  for (std::size_t offset = 0; offset < bytes.size();) {
    common::BinaryReader header(
        std::string_view(bytes).substr(offset, Wal::kFrameHeaderBytes));
    ASSERT_EQ(header.U32(), Wal::kFrameMagic);
    header.U64();  // lsn
    const std::uint32_t len = header.U32();
    last_frame_start = offset;
    offset += Wal::kFrameHeaderBytes + len;
    ASSERT_LE(offset, bytes.size());
  }

  const fs::path scratch = fs::path(dir_) / "scratch";
  for (std::size_t cut = last_frame_start; cut < bytes.size(); ++cut) {
    fs::remove_all(scratch);
    fs::create_directories(scratch / "wal");
    const fs::path cut_segment = scratch / "wal" / segment.filename();
    {
      std::ofstream out(cut_segment, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }

    store::ReplicatedStore db(1);
    stats::StatsDb stats(&db, 0);
    const RecoveryManager recovery(scratch.string());
    auto report = recovery.Recover(
        {.db = &db, .dc = 0, .stats = &stats, .registry = nullptr}, 0);
    ASSERT_TRUE(report.ok())
        << "cut=" << cut << ": " << report.status().ToString();
    EXPECT_EQ(report->records_replayed, total_records - 1) << "cut=" << cut;
    EXPECT_EQ(report->wal_bytes_discarded, cut - last_frame_start)
        << "cut=" << cut;
    EXPECT_FALSE(report->checkpoint_loaded);
    EXPECT_EQ(stats.ObjectCount(), total_records - 1) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace scalia::durability
