// Batched durability acks (PR 6): AckCohort defers per-append fsyncs to one
// group sync, the destructor is a commit safety net, cohorts nest and span
// multiple Wals — and, end to end, a pipelined PUT burst through the
// per-shard serving loop with a FlushBarrier performs fewer fsyncs than it
// acknowledges requests.
#include "durability/wal.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/server/server.h"

namespace scalia::durability {
namespace {

namespace fs = std::filesystem;

class AckCohortTest : public ::testing::Test {
 protected:
  AckCohortTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("ack_cohort_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~AckCohortTest() override { fs::remove_all(dir_); }

  /// Real fsyncs on — the whole point here is counting them.
  WalConfig Config(const std::string& subdir = "") {
    WalConfig config;
    config.dir = subdir.empty() ? dir_ : dir_ + "/" + subdir;
    config.sync_on_commit = true;
    return config;
  }

  std::vector<std::pair<Lsn, std::string>> ReplayAll(const std::string& dir) {
    std::vector<std::pair<Lsn, std::string>> records;
    auto report = Wal::Replay(dir, [&](Lsn lsn, std::string_view payload) {
      records.emplace_back(lsn, std::string(payload));
    });
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return records;
  }

  std::string dir_;
};

TEST_F(AckCohortTest, DeferredAppendsFsyncOnceOnCommit) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::uint64_t before = (*wal)->fsyncs();
  {
    AckCohort cohort;
    ASSERT_EQ(AckCohort::Current(), &cohort);
    for (int i = 0; i < 16; ++i) {
      auto lsn = (*wal)->Append("deferred-" + std::to_string(i));
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      EXPECT_EQ(*lsn, static_cast<Lsn>(i + 1));
    }
    EXPECT_EQ(cohort.deferred_records(), 16u);
    // Frames written, nothing synced yet.
    EXPECT_EQ((*wal)->fsyncs(), before);
    ASSERT_TRUE(cohort.Commit().ok());
    EXPECT_EQ((*wal)->fsyncs(), before + 1);
    EXPECT_EQ(cohort.deferred_records(), 0u);
    // Idempotent until new appends join.
    ASSERT_TRUE(cohort.Commit().ok());
    EXPECT_EQ((*wal)->fsyncs(), before + 1);
  }
  EXPECT_EQ(AckCohort::Current(), nullptr);
  (*wal)->Close();
  EXPECT_EQ(ReplayAll(dir_).size(), 16u);
}

TEST_F(AckCohortTest, AppendsOutsideACohortSyncIndividually) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::uint64_t before = (*wal)->fsyncs();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*wal)->Append("solo-" + std::to_string(i)).ok());
  }
  EXPECT_EQ((*wal)->fsyncs(), before + 4);
}

TEST_F(AckCohortTest, DestructorCommitsAnOpenCohort) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::uint64_t before = (*wal)->fsyncs();
  {
    AckCohort cohort;
    ASSERT_TRUE((*wal)->Append("net-a").ok());
    ASSERT_TRUE((*wal)->Append("net-b").ok());
  }  // no explicit Commit(): the destructor is the safety net
  EXPECT_EQ((*wal)->fsyncs(), before + 1);
  (*wal)->Close();
  EXPECT_EQ(ReplayAll(dir_).size(), 2u);
}

TEST_F(AckCohortTest, NestedCohortsInnerWinsUntilDestroyed) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::uint64_t before = (*wal)->fsyncs();
  AckCohort outer;
  ASSERT_TRUE((*wal)->Append("outer-1").ok());
  {
    AckCohort inner;
    EXPECT_EQ(AckCohort::Current(), &inner);
    ASSERT_TRUE((*wal)->Append("inner-1").ok());
    EXPECT_EQ(inner.deferred_records(), 1u);
    ASSERT_TRUE(inner.Commit().ok());
    EXPECT_EQ((*wal)->fsyncs(), before + 1);
  }
  EXPECT_EQ(AckCohort::Current(), &outer);
  ASSERT_TRUE((*wal)->Append("outer-2").ok());
  EXPECT_EQ(outer.deferred_records(), 2u);
  ASSERT_TRUE(outer.Commit().ok());
  EXPECT_EQ((*wal)->fsyncs(), before + 2);
  (*wal)->Close();
  const auto records = ReplayAll(dir_);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].second, "outer-1");
  EXPECT_EQ(records[1].second, "inner-1");
  EXPECT_EQ(records[2].second, "outer-2");
}

TEST_F(AckCohortTest, OneCohortSyncsEachTouchedWalOnce) {
  auto wal_a = Wal::Open(Config("a"));
  auto wal_b = Wal::Open(Config("b"));
  ASSERT_TRUE(wal_a.ok() && wal_b.ok());
  const std::uint64_t before_a = (*wal_a)->fsyncs();
  const std::uint64_t before_b = (*wal_b)->fsyncs();
  AckCohort cohort;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*wal_a)->Append("a-" + std::to_string(i)).ok());
    ASSERT_TRUE((*wal_b)->Append("b-" + std::to_string(i)).ok());
  }
  EXPECT_EQ(cohort.deferred_records(), 16u);
  ASSERT_TRUE(cohort.Commit().ok());
  EXPECT_EQ((*wal_a)->fsyncs(), before_a + 1);
  EXPECT_EQ((*wal_b)->fsyncs(), before_b + 1);
  (*wal_a)->Close();
  (*wal_b)->Close();
  EXPECT_EQ(ReplayAll(dir_ + "/a").size(), 8u);
  EXPECT_EQ(ReplayAll(dir_ + "/b").size(), 8u);
}

/// Raw pipelining socket (the HttpClient is strictly request/response).
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void Send(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  [[nodiscard]] std::vector<api::HttpResponse> ReadResponses(int count) {
    std::vector<api::HttpResponse> out;
    net::ResponseParser parser;
    char buf[4096];
    while (static_cast<int>(out.size()) < count) {
      while (auto parsed = parser.Next(false)) {
        out.push_back(std::move(parsed->response));
        if (static_cast<int>(out.size()) == count) return out;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;
      parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// The barrier the serving loop commits once per tick — exactly the shape
/// examples/scalia_server.cpp installs in durable mode.
class CohortBarrier : public net::FlushBarrier {
 public:
  common::Status Commit() override { return cohort_.Commit(); }

 private:
  AckCohort cohort_;
};

// The PR-6 acceptance assertion: K pipelined PUTs, each journaled before it
// is acknowledged, cost fewer fsyncs than K — the event loop's tick barrier
// group-commits them.
TEST_F(AckCohortTest, PipelinedPutBurstFsyncsFewerTimesThanRequests) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  Wal* wal_ptr = wal->get();

  net::ServerConfig config;
  config.clock = [] { return common::SimTime{1000}; };
  config.barrier_factory = [] { return std::make_unique<CohortBarrier>(); };
  net::HttpServer server(
      std::move(config),
      [wal_ptr](common::SimTime, const api::HttpRequest& request) {
        api::HttpResponse response;
        // Journal-then-ack, like the engine's PUT path: the append lands in
        // the loop's cohort; the 201 stays queued until the tick commits.
        if (!wal_ptr->Append(request.body).ok()) {
          response.status = 500;
          return response;
        }
        response.status = 201;
        return response;
      });
  ASSERT_TRUE(server.Start().ok());

  const std::uint64_t fsyncs_before = wal_ptr->fsyncs();
  constexpr int kPuts = 32;
  std::string burst;
  for (int i = 0; i < kPuts; ++i) {
    const std::string body = "object-payload-" + std::to_string(i);
    burst += "PUT /bucket/obj-" + std::to_string(i) +
             " HTTP/1.1\r\nContent-Length: " + std::to_string(body.size()) +
             "\r\n\r\n" + body;
  }
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  conn.Send(burst);
  const auto responses = conn.ReadResponses(kPuts);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kPuts));
  for (const auto& response : responses) EXPECT_EQ(response.status, 201);

  const std::uint64_t fsyncs = wal_ptr->fsyncs() - fsyncs_before;
  EXPECT_GE(fsyncs, 1u) << "acks were not made durable at all";
  EXPECT_LT(fsyncs, static_cast<std::uint64_t>(kPuts))
      << "batched durability acks degenerated to one fsync per request";

  server.Stop();
  (*wal)->Close();
  EXPECT_EQ(ReplayAll(dir_).size(), static_cast<std::size_t>(kPuts));
}

}  // namespace
}  // namespace scalia::durability
