#include "durability/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace scalia::durability {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  WalTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("wal_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~WalTest() override { fs::remove_all(dir_); }

  WalConfig Config() {
    WalConfig config;
    config.dir = dir_;
    config.sync_on_commit = false;  // keep the suite fast
    return config;
  }

  /// All (lsn, payload) pairs currently replayable from the directory.
  std::vector<std::pair<Lsn, std::string>> ReplayAll(
      WalReplayReport* report = nullptr) {
    std::vector<std::pair<Lsn, std::string>> records;
    auto r = Wal::Replay(dir_, [&](Lsn lsn, std::string_view payload) {
      records.emplace_back(lsn, std::string(payload));
    });
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (report != nullptr && r.ok()) *report = *r;
    return records;
  }

  /// Path of the last (lexicographically greatest) non-empty segment.
  fs::path LastSegment() {
    std::vector<fs::path> segments;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".seg" && entry.file_size() > 0) {
        segments.push_back(entry.path());
      }
    }
    std::sort(segments.begin(), segments.end());
    EXPECT_FALSE(segments.empty());
    return segments.back();
  }

  std::string dir_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < 10; ++i) {
    auto lsn = (*wal)->Append("record-" + std::to_string(i));
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, static_cast<Lsn>(i + 1));
  }
  (*wal)->Close();

  WalReplayReport report;
  const auto records = ReplayAll(&report);
  ASSERT_EQ(records.size(), 10u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, i + 1);
    EXPECT_EQ(records[i].second, "record-" + std::to_string(i));
  }
  EXPECT_EQ(report.discarded_bytes, 0u);
  EXPECT_EQ(report.last_lsn, 10u);
}

TEST_F(WalTest, GroupCommitManyConcurrentAppenders) {
  common::ThreadPool commit_pool(1);
  auto wal = Wal::Open(Config(), &commit_pool);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> appenders;
  appenders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = (*wal)->Append("t" + std::to_string(t) + "-" +
                                  std::to_string(i));
        ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      }
    });
  }
  for (auto& th : appenders) th.join();
  EXPECT_EQ((*wal)->last_lsn(), static_cast<Lsn>(kThreads * kPerThread));
  (*wal)->Close();

  const auto records = ReplayAll();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // LSNs are dense and ordered even though appends raced.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].first, i + 1);
  }
}

TEST_F(WalTest, SegmentsRollAndTruncateBehindCheckpoint) {
  WalConfig config = Config();
  config.segment_bytes = 256;  // force frequent rolls
  auto wal = Wal::Open(config);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE((*wal)->Append(std::string(32, 'x')).ok());
  }
  std::size_t segments_before = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
    ++segments_before;
  }
  EXPECT_GT(segments_before, 2u);

  ASSERT_TRUE((*wal)->RollSegment().ok());
  ASSERT_TRUE((*wal)->TruncateThrough(20).ok());
  (*wal)->Close();

  // Records 21.. survive (whole-segment granularity keeps some earlier).
  const auto records = ReplayAll();
  ASSERT_FALSE(records.empty());
  EXPECT_LE(records.front().first, 21u);
  EXPECT_EQ(records.back().first, 40u);
  Lsn prev = 0;
  for (const auto& [lsn, payload] : records) {
    EXPECT_GT(lsn, prev);
    prev = lsn;
  }

  // Truncating through the very last record keeps only the active segment.
  auto reopened = Wal::Open(config);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->TruncateThrough(40).ok());
}

TEST_F(WalTest, LsnNeverRegressesAfterCheckpointStyleTruncation) {
  // The checkpoint flow: roll, truncate everything behind, restart.  The
  // restarted log sees zero records but must keep numbering past the
  // truncation point (else the next recovery skips the new records as
  // already covered by the checkpoint).
  {
    auto wal = Wal::Open(Config());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append("r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*wal)->RollSegment().ok());
    ASSERT_TRUE((*wal)->TruncateThrough(5).ok());
  }
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok());
  auto lsn = (*wal)->Append("after-restart");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 6u);
}

TEST_F(WalTest, EnsureNextLsnAtLeastBumpsAndRenamesEmptySegment) {
  auto wal = Wal::Open(Config());
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->EnsureNextLsnAtLeast(100).ok());
  ASSERT_TRUE((*wal)->EnsureNextLsnAtLeast(50).ok());  // no-op, no regression
  auto lsn = (*wal)->Append("bumped");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 100u);
  (*wal)->Close();
  const auto records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 100u);
}

TEST_F(WalTest, ReopenContinuesLsnSequence) {
  {
    auto wal = Wal::Open(Config());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first").ok());
    ASSERT_TRUE((*wal)->Append("second").ok());
  }
  {
    auto wal = Wal::Open(Config());
    ASSERT_TRUE(wal.ok());
    auto lsn = (*wal)->Append("third");
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 3u);
  }
  const auto records = ReplayAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].second, "third");
}

TEST_F(WalTest, TornTailIsDetectedQuantifiedAndTruncatedOnReopen) {
  {
    auto wal = Wal::Open(Config());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append("payload-" + std::to_string(i)).ok());
    }
  }
  // Tear 7 bytes off the tail: the final record becomes unreadable.
  const fs::path segment = LastSegment();
  const auto size = fs::file_size(segment);
  fs::resize_file(segment, size - 7);

  WalReplayReport report;
  auto records = ReplayAll(&report);
  EXPECT_EQ(records.size(), 4u);
  EXPECT_EQ(report.last_lsn, 4u);
  const auto frame_bytes = Wal::kFrameHeaderBytes + std::strlen("payload-4");
  EXPECT_EQ(report.discarded_bytes, frame_bytes - 7);
  EXPECT_EQ(report.torn_segment, segment.string());

  // Reopen truncates the tear; new appends replay cleanly after it.
  {
    auto wal = Wal::Open(Config());
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value()->open_report().discarded_bytes, frame_bytes - 7);
    auto lsn = (*wal)->Append("after-crash");
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 5u);  // the torn record's LSN is reused
  }
  records = ReplayAll(&report);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.back().second, "after-crash");
  EXPECT_EQ(report.discarded_bytes, 0u);
}

TEST_F(WalTest, CorruptedByteStopsReplayAtTheBadFrame) {
  {
    auto wal = Wal::Open(Config());
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)->Append(std::string(40, static_cast<char>('a' + i)))
                      .ok());
    }
  }
  // Flip one payload byte of the middle record.
  const fs::path segment = LastSegment();
  std::fstream file(segment, std::ios::binary | std::ios::in | std::ios::out);
  const auto frame = Wal::kFrameHeaderBytes + 40;
  file.seekp(static_cast<std::streamoff>(frame + Wal::kFrameHeaderBytes + 10));
  file.put('Z');
  file.close();

  WalReplayReport report;
  const auto records = ReplayAll(&report);
  ASSERT_EQ(records.size(), 1u);  // only the record before the corruption
  EXPECT_EQ(records[0].first, 1u);
  EXPECT_EQ(report.discarded_bytes, 2u * frame);  // bad frame + everything after
}

}  // namespace
}  // namespace scalia::durability
