#include "core/engine.h"

#include <gtest/gtest.h>

#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kHour;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : db_(2),
        stats_db_(&db_, 0),
        cache_(16 * common::kMiB, nullptr),
        aggregator_(),
        agent_(&aggregator_),
        pool_(2) {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    EngineConfig config;
    // Six nines of durability: like §IV-E's rule, this keeps S3(l)-free
    // sets feasible, which the failure-handling tests rely on.
    config.default_rule = StorageRule{.name = "default",
                                      .durability = 0.999999,
                                      .availability = 0.9999,
                                      .allowed_zones =
                                          provider::ZoneSet::All(),
                                      .lockin = 1.0,
                                      .ttl_hint = std::nullopt};
    engine_ = std::make_unique<Engine>("e0", &registry_, &db_, 0, &cache_,
                                       &stats_db_, &agent_, &pool_, config,
                                       /*seed=*/7);
  }

  std::string Payload(std::size_t size, char fill = 'x') {
    return std::string(size, fill);
  }

  provider::ProviderRegistry registry_;
  store::ReplicatedStore db_;
  stats::StatsDb stats_db_;
  cache::CacheLayer cache_;
  stats::LogAggregator aggregator_;
  stats::LogAgent agent_;
  common::ThreadPool pool_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, PutGetRoundTrip) {
  const std::string data = Payload(512 * common::kKB, 'a');
  ASSERT_TRUE(engine_->Put(0, "bucket", "obj", data, "image/png").ok());
  auto got = engine_->Get(kHour, "bucket", "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
}

TEST_F(EngineTest, ChunksAreActuallyDistributed) {
  ASSERT_TRUE(
      engine_->Put(0, "b", "o", Payload(100 * common::kKB), "image/png").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(meta.ok());
  EXPECT_GE(meta->n(), 2u);
  EXPECT_GE(meta->m, 1);
  // Every stripe provider really holds the chunk blob.
  for (const auto& stripe : meta->stripes) {
    auto* store = registry_.Find(stripe.provider);
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->Get(0, meta->ChunkKey(stripe.chunk_index)).ok());
  }
}

TEST_F(EngineTest, GetMissingIsNotFound) {
  EXPECT_EQ(engine_->Get(0, "b", "missing").status().code(),
            common::StatusCode::kNotFound);
}

TEST_F(EngineTest, SecondReadServedFromCache) {
  const std::string data = Payload(64 * common::kKB);
  ASSERT_TRUE(engine_->Put(0, "b", "o", data, "image/png").ok());
  ASSERT_TRUE(engine_->Get(kHour, "b", "o").ok());  // fills the cache

  // Count provider GETs, then read again: no new provider traffic.
  double ops_before = 0;
  for (const auto& spec : registry_.Specs()) {
    ops_before += registry_.Find(spec.id)->meter().Totals(kHour).ops;
  }
  auto got = engine_->Get(2 * kHour, "b", "o");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  double ops_after = 0;
  for (const auto& spec : registry_.Specs()) {
    ops_after += registry_.Find(spec.id)->meter().Totals(2 * kHour).ops;
  }
  EXPECT_DOUBLE_EQ(ops_after, ops_before);
  EXPECT_GE(cache_.Stats().hits, 1u);
}

TEST_F(EngineTest, UpdateDeletesOldChunks) {
  ASSERT_TRUE(engine_->Put(0, "b", "o", Payload(80 * common::kKB, 'a'),
                           "image/png")
                  .ok());
  auto old_meta = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(old_meta.ok());

  ASSERT_TRUE(engine_->Put(kHour, "b", "o", Payload(80 * common::kKB, 'b'),
                           "image/png")
                  .ok());
  auto got = engine_->Get(2 * kHour, "b", "o");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0], 'b');

  // The previous version's chunks are gone from the providers (§III-D.1).
  for (const auto& stripe : old_meta->stripes) {
    auto* store = registry_.Find(stripe.provider);
    EXPECT_EQ(
        store->Get(2 * kHour, old_meta->ChunkKey(stripe.chunk_index))
            .status()
            .code(),
        common::StatusCode::kNotFound);
  }
}

TEST_F(EngineTest, DeleteRemovesEverything) {
  ASSERT_TRUE(
      engine_->Put(0, "b", "o", Payload(50 * common::kKB), "text/plain").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(engine_->Delete(kHour, "b", "o").ok());
  EXPECT_EQ(engine_->Get(kHour, "b", "o").status().code(),
            common::StatusCode::kNotFound);
  for (const auto& stripe : meta->stripes) {
    auto* store = registry_.Find(stripe.provider);
    EXPECT_FALSE(
        store->Get(kHour, meta->ChunkKey(stripe.chunk_index)).ok());
  }
  // The lifetime landed in class statistics.
  EXPECT_EQ(stats_db_.ObjectCount(), 0u);
}

TEST_F(EngineTest, ListReturnsContainerKeys) {
  ASSERT_TRUE(engine_->Put(0, "photos", "a.png", Payload(10), "image/png").ok());
  ASSERT_TRUE(engine_->Put(0, "photos", "b.png", Payload(10), "image/png").ok());
  ASSERT_TRUE(engine_->Put(0, "docs", "c.txt", Payload(10), "text/plain").ok());
  auto keys = engine_->List(0, "photos");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"a.png", "b.png"}));
}

TEST_F(EngineTest, WriteExcludesFaultyProvider) {
  // §III-D.3: during a write, the faulty provider is excluded and the best
  // remaining placement chosen.
  registry_.Find("S3(l)")->failures().AddOutage(0, 10 * kHour);
  ASSERT_TRUE(
      engine_->Put(kHour, "b", "o", Payload(100 * common::kKB), "image/png")
          .ok());
  auto meta = engine_->LoadMetadata(kHour, MakeRowKey("b", "o"));
  ASSERT_TRUE(meta.ok());
  for (const auto& stripe : meta->stripes) {
    EXPECT_NE(stripe.provider, "S3(l)");
  }
}

TEST_F(EngineTest, ReadSurvivesUpToNMinusMFailures) {
  const std::string data = Payload(200 * common::kKB, 'r');
  ASSERT_TRUE(engine_->Put(0, "b", "o", data, "image/png").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(meta.ok());
  const std::size_t tolerable =
      meta->n() - static_cast<std::size_t>(meta->m);
  ASSERT_GE(tolerable, 1u);
  // Knock out exactly n - m stripe providers.
  for (std::size_t i = 0; i < tolerable; ++i) {
    registry_.Find(meta->stripes[i].provider)
        ->failures()
        .AddOutage(kHour, 10 * kHour);
  }
  auto got = engine_->Get(2 * kHour, "b", "o");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
}

TEST_F(EngineTest, RepairSwapsToSpareProviderKeepingStructure) {
  // With a spare provider registered (CheapStor), repair keeps (m, n) and
  // only replaces the faulty member — the cheap path of §IV-E.
  ASSERT_TRUE(registry_.Register(provider::CheapStorSpec()).ok());
  const std::string data = Payload(300 * common::kKB, 'q');
  ASSERT_TRUE(engine_->Put(0, "b", "o", data, "image/png").ok());
  auto before = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(before.ok());
  ASSERT_LT(before->n(), registry_.Count());  // a spare exists
  const auto faulty = before->stripes[0].provider;
  registry_.Find(faulty)->failures().AddOutage(kHour, 100 * kHour);

  ASSERT_TRUE(engine_->RepairObject(2 * kHour, MakeRowKey("b", "o")).ok());
  auto after = engine_->LoadMetadata(2 * kHour, MakeRowKey("b", "o"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->m, before->m);
  EXPECT_EQ(after->n(), before->n());
  for (const auto& stripe : after->stripes) {
    EXPECT_NE(stripe.provider, faulty);
  }
  // Data still reconstructs (cache bypassed by reading after invalidation).
  cache_.cache().Clear();
  auto got = engine_->Get(3 * kHour, "b", "o");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  // The dead provider's chunk deletion is deferred until recovery.
  EXPECT_GE(engine_->PendingDeleteCount(), 1u);
}

TEST_F(EngineTest, RepairWithoutSpareFallsBackToReplacement) {
  // All five providers carry a chunk; when one fails there is no spare, so
  // repair re-places the object over the four reachable providers.
  const std::string data = Payload(300 * common::kKB, 'q');
  ASSERT_TRUE(engine_->Put(0, "b", "o", data, "image/png").ok());
  auto before = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->n(), 5u);
  const auto faulty = before->stripes[0].provider;
  registry_.Find(faulty)->failures().AddOutage(kHour, 100 * kHour);

  ASSERT_TRUE(engine_->RepairObject(2 * kHour, MakeRowKey("b", "o")).ok());
  auto after = engine_->LoadMetadata(2 * kHour, MakeRowKey("b", "o"));
  ASSERT_TRUE(after.ok());
  EXPECT_LE(after->n(), 4u);
  for (const auto& stripe : after->stripes) {
    EXPECT_NE(stripe.provider, faulty);
  }
  cache_.cache().Clear();
  auto got = engine_->Get(3 * kHour, "b", "o");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
}

TEST_F(EngineTest, PendingDeletesFlushAfterRecovery) {
  ASSERT_TRUE(
      engine_->Put(0, "b", "o", Payload(100 * common::kKB), "image/png").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "o"));
  ASSERT_TRUE(meta.ok());
  const auto faulty = meta->stripes[0].provider;
  registry_.Find(faulty)->failures().AddOutage(kHour, 5 * kHour);

  // Delete while one provider is down: that chunk's delete is deferred.
  ASSERT_TRUE(engine_->Delete(2 * kHour, "b", "o").ok());
  EXPECT_EQ(engine_->PendingDeleteCount(), 1u);
  EXPECT_EQ(engine_->ProcessPendingDeletes(3 * kHour), 0u);  // still down
  EXPECT_EQ(engine_->ProcessPendingDeletes(6 * kHour), 1u);  // recovered
  EXPECT_EQ(engine_->PendingDeleteCount(), 0u);
  EXPECT_EQ(registry_.Find(faulty)->ObjectCount(), 0u);
}

TEST_F(EngineTest, ReoptimizeMigratesColdObjectToWideStripe) {
  // Store with a read-heavy history, then feed a cold history: the engine
  // should migrate to the storage-optimal all-five stripe.
  const std::string row_key = MakeRowKey("b", "o");
  ASSERT_TRUE(
      engine_->Put(0, "b", "o", Payload(common::kMB), "video/mp4").ok());
  // Build 48 cold periods so the average forecast is storage-only.
  for (std::uint64_t p = 0; p < 48; ++p) {
    stats::PeriodStats s;
    s.storage_gb = 0.001;
    stats_db_.AppendPeriodStats(row_key, p,
                                s, static_cast<common::SimTime>(p) * kHour);
  }
  auto migrated = engine_->ReoptimizeObject(49 * kHour, row_key, 24);
  ASSERT_TRUE(migrated.ok());
  auto meta = engine_->LoadMetadata(49 * kHour, row_key);
  ASSERT_TRUE(meta.ok());
  if (*migrated) {
    EXPECT_EQ(meta->n(), 5u);
    EXPECT_EQ(meta->m, 4);
  }
  // Either way the object remains readable.
  cache_.cache().Clear();
  EXPECT_TRUE(engine_->Get(50 * kHour, "b", "o").ok());
}

TEST_F(EngineTest, EvaluatePlacementReportsFeasibleSet) {
  ASSERT_TRUE(
      engine_->Put(0, "b", "o", Payload(common::kMB), "video/mp4").ok());
  auto decision =
      engine_->EvaluatePlacement(kHour, MakeRowKey("b", "o"), 24);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->feasible);
  EXPECT_GE(decision->providers.size(), 2u);
}

TEST_F(EngineTest, InfeasibleRuleRejected) {
  StorageRule impossible;
  impossible.name = "impossible";
  impossible.durability = 1.0;
  EXPECT_EQ(engine_->Put(0, "b", "o", Payload(10), "text/plain", impossible)
                .code(),
            common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace scalia::core
