#include "core/price_model.h"

#include <gtest/gtest.h>

#include "provider/spec.h"

namespace scalia::core {
namespace {

std::vector<provider::ProviderSpec> Specs(
    const std::vector<std::string>& ids) {
  const auto catalog = provider::PaperCatalog();
  std::vector<provider::ProviderSpec> out;
  for (const auto& id : ids) out.push_back(*provider::FindSpec(catalog, id));
  return out;
}

PriceModel PerPeriodModel() {
  return PriceModel(PriceModelConfig{
      .sampling_period = common::kHour,
      .billing = provider::StorageBillingMode::kPerPeriod});
}

TEST(PriceModelTest, StorageOnlyObjectCost) {
  // 1 MB object on [S3(h), S3(l); m:1]: two full replicas.
  const auto pset = Specs({"S3(h)", "S3(l)"});
  stats::PeriodStats period;
  period.storage_gb = 0.001;
  const auto cost = PerPeriodModel().PeriodCost(pset, 1, period);
  EXPECT_NEAR(cost.usd(), 0.001 * (0.14 + 0.093), 1e-12);
}

TEST(PriceModelTest, ErasureStorageOverheadScalesWithM) {
  // All five with m = 4: each provider stores 1/4 of the object.
  const auto pset = Specs({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"});
  stats::PeriodStats period;
  period.storage_gb = 0.001;
  const auto cost = PerPeriodModel().PeriodCost(pset, 4, period);
  EXPECT_NEAR(cost.usd(), 0.001 / 4 * (0.14 + 0.093 + 0.15 + 0.15 + 0.17),
              1e-12);
}

TEST(PriceModelTest, WriteBillsEveryProvider) {
  const auto pset = Specs({"S3(h)", "S3(l)", "RS"});
  stats::PeriodStats period;
  period.writes = 1;
  period.ops = 1;
  period.bw_in_gb = 0.003;  // 3 MB written
  const auto usage = PerPeriodModel().Expand(pset, 2, period);
  ASSERT_EQ(usage.per_provider.size(), 3u);
  for (const auto& u : usage.per_provider) {
    EXPECT_NEAR(u.bw_in_gb, 0.0015, 1e-12);  // one half-size chunk each
    EXPECT_DOUBLE_EQ(u.ops, 1.0);
  }
  const auto cost = PerPeriodModel().PeriodCost(pset, 2, period);
  // Ingress: 0.0015*(0.10+0.10+0.08); ops: 2 paid (RS ops are free).
  EXPECT_NEAR(cost.usd(), 0.0015 * 0.28 + 2.0 * 0.01 / 1000.0, 1e-12);
}

TEST(PriceModelTest, ReadsRouteToCheapestMProviders) {
  // [S3(h), S3(l), RS; m:1]: reads must hit an S3 (egress 0.15), never RS
  // (egress 0.18).
  const auto pset = Specs({"S3(h)", "S3(l)", "RS"});
  stats::PeriodStats period;
  period.reads = 100;
  period.ops = 100;
  period.bw_out_gb = 0.1;
  const auto usage = PerPeriodModel().Expand(pset, 1, period);
  EXPECT_DOUBLE_EQ(usage.per_provider[2].bw_out_gb, 0.0);  // RS untouched
  EXPECT_NEAR(usage.per_provider[0].bw_out_gb +
                  usage.per_provider[1].bw_out_gb,
              0.1, 1e-12);
}

TEST(PriceModelTest, CheapestReadProvidersAccountsForOps) {
  // With tiny chunks, RS's free operations beat the S3 egress advantage:
  // per read, RS costs 0.18*chunk vs S3's 0.15*chunk + 1e-5.
  const auto pset = Specs({"S3(h)", "RS"});
  const auto tiny = PerPeriodModel().CheapestReadProviders(pset, 1, 1e-6);
  ASSERT_EQ(tiny.size(), 1u);
  EXPECT_EQ(pset[tiny[0]].id, "RS");
  // With large chunks, egress dominates and S3 wins.
  const auto large = PerPeriodModel().CheapestReadProviders(pset, 1, 0.1);
  EXPECT_EQ(pset[large[0]].id, "S3(h)");
}

TEST(PriceModelTest, ReachabilityMaskReroutesReads) {
  const auto pset = Specs({"S3(h)", "S3(l)", "RS"});
  stats::PeriodStats period;
  period.reads = 10;
  period.ops = 10;
  period.bw_out_gb = 0.01;
  // S3(l) (cheapest with S3(h)) is down: reads fall back to S3(h) + RS.
  const std::vector<bool> reachable = {true, false, true};
  const auto usage = PerPeriodModel().Expand(pset, 2, period, reachable);
  EXPECT_DOUBLE_EQ(usage.per_provider[1].bw_out_gb, 0.0);
  EXPECT_GT(usage.per_provider[0].bw_out_gb, 0.0);
  EXPECT_GT(usage.per_provider[2].bw_out_gb, 0.0);
}

TEST(PriceModelTest, UnservableReadsNotBilled) {
  const auto pset = Specs({"S3(h)", "S3(l)"});
  stats::PeriodStats period;
  period.reads = 10;
  period.ops = 10;
  period.bw_out_gb = 0.01;
  period.storage_gb = 0.001;
  // m = 2 but only one provider reachable: reads cannot be served.
  const std::vector<bool> reachable = {true, false};
  const auto usage = PerPeriodModel().Expand(pset, 2, period, reachable);
  for (const auto& u : usage.per_provider) {
    EXPECT_DOUBLE_EQ(u.bw_out_gb, 0.0);
  }
  // Storage still accrues on the whole set.
  EXPECT_GT(usage.per_provider[0].storage_gb_hours, 0.0);
  EXPECT_GT(usage.per_provider[1].storage_gb_hours, 0.0);
}

TEST(PriceModelTest, ExpectedCostScalesWithDecisionPeriods) {
  const auto pset = Specs({"S3(h)", "S3(l)"});
  stats::PeriodStats period;
  period.storage_gb = 0.001;
  const PriceModel model = PerPeriodModel();
  const auto one = model.ExpectedCost(pset, 1, period, 1);
  const auto day = model.ExpectedCost(pset, 1, period, 24);
  EXPECT_NEAR(day.usd(), 24.0 * one.usd(), 1e-12);
  // Zero decision periods is clamped to one.
  EXPECT_NEAR(model.ExpectedCost(pset, 1, period, 0).usd(), one.usd(), 1e-15);
}

TEST(PriceModelTest, ProratedVsPerPeriodStorage) {
  const auto pset = Specs({"S3(h)"});
  stats::PeriodStats period;
  period.storage_gb = 1.0;
  const PriceModel per_period = PerPeriodModel();
  const PriceModel prorated(PriceModelConfig{
      .sampling_period = common::kHour,
      .billing = provider::StorageBillingMode::kProrated});
  // Per-period charges the monthly rate each hour; prorated divides by 720.
  EXPECT_NEAR(per_period.PeriodCost(pset, 1, period).usd(), 0.14, 1e-12);
  EXPECT_NEAR(prorated.PeriodCost(pset, 1, period).usd(), 0.14 / 720.0,
              1e-12);
}

TEST(PriceModelTest, SlashdotPeakPreference) {
  // At 150 reads/h of a 1 MB object, [S3(h),S3(l); m:1] must beat both the
  // all-five m:4 set (ops overhead) and [S3(h),S3(l),Azu; m:2] — the §IV-B
  // result.
  stats::PeriodStats peak;
  peak.storage_gb = 0.001;
  peak.reads = 150;
  peak.ops = 150;
  peak.bw_out_gb = 0.15;
  const PriceModel model = PerPeriodModel();
  const auto two = model.PeriodCost(Specs({"S3(h)", "S3(l)"}), 1, peak);
  const auto three =
      model.PeriodCost(Specs({"S3(h)", "S3(l)", "Azu"}), 2, peak);
  const auto five = model.PeriodCost(
      Specs({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}), 4, peak);
  EXPECT_LT(two, three);
  EXPECT_LT(three, five);
}

TEST(PriceModelTest, ColdObjectPrefersWideStriping) {
  // With no traffic, the all-five m:4 set has the lowest storage overhead —
  // the paper's post-crowd placement.
  stats::PeriodStats cold;
  cold.storage_gb = 0.001;
  const PriceModel model = PerPeriodModel();
  const auto two = model.PeriodCost(Specs({"S3(h)", "S3(l)"}), 1, cold);
  const auto five = model.PeriodCost(
      Specs({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}), 4, cold);
  EXPECT_LT(five, two);
}

TEST(PriceModelTest, EmptySetAndZeroMAreFree) {
  const PriceModel model = PerPeriodModel();
  stats::PeriodStats period;
  period.storage_gb = 1.0;
  EXPECT_DOUBLE_EQ(model.PeriodCost({}, 1, period).usd(), 0.0);
  EXPECT_DOUBLE_EQ(
      model.PeriodCost(Specs({"S3(h)"}), 0, period).usd(), 0.0);
}

}  // namespace
}  // namespace scalia::core
