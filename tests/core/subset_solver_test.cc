#include "core/subset_solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kMB;

/// Deterministic random market of `n` providers.
std::vector<provider::ProviderSpec> RandomMarket(std::size_t n,
                                                 std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  auto uniform = [&](double lo, double hi) {
    return lo + (hi - lo) * rng.NextDouble();
  };
  std::vector<provider::ProviderSpec> market;
  market.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    provider::ProviderSpec spec;
    spec.id = "P" + std::to_string(i);
    spec.description = spec.id;
    // Durability between three and eleven nines; availability 99–99.99 %.
    spec.sla.durability = 1.0 - std::pow(10.0, -uniform(3.0, 11.0));
    spec.sla.availability = 1.0 - std::pow(10.0, -uniform(2.0, 4.0));
    spec.zones = provider::ZoneSet::All();
    spec.pricing = provider::PricingPolicy{
        .storage_gb_month = uniform(0.05, 0.2),
        .bw_in_gb = uniform(0.0, 0.12),
        .bw_out_gb = uniform(0.08, 0.2),
        .ops_per_1000 = uniform(0.0, 0.02)};
    spec.read_latency_ms = uniform(20.0, 120.0);
    market.push_back(std::move(spec));
  }
  return market;
}

stats::PeriodStats ColdUsage() {
  stats::PeriodStats usage;
  usage.storage_gb = 0.04;  // 40 MB at rest
  usage.bw_in_gb = 0.0;
  usage.bw_out_gb = 0.0;
  usage.reads = 0.0;
  usage.writes = 0.0;
  usage.ops = 0.0;
  return usage;
}

stats::PeriodStats HotUsage() {
  stats::PeriodStats usage;
  usage.storage_gb = 0.001;
  usage.bw_in_gb = 0.0;
  usage.bw_out_gb = 0.1;  // egress-dominated
  usage.reads = 100.0;
  usage.writes = 0.0;
  usage.ops = 100.0;
  return usage;
}

PlacementRequest RequestFor(const stats::PeriodStats& usage,
                            double durability, double availability,
                            double lockin) {
  PlacementRequest request;
  request.rule = StorageRule{.name = "r",
                             .durability = durability,
                             .availability = availability,
                             .allowed_zones = provider::ZoneSet::All(),
                             .lockin = lockin,
                             .ttl_hint = std::nullopt};
  request.object_size = 40 * kMB;
  request.per_period = usage;
  request.decision_periods = 24;
  return request;
}

class SolverEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverEquivalenceTest, BranchAndBoundMatchesExhaustive) {
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(4 + seed % 5, seed);  // 4..8 providers
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);

  const stats::PeriodStats usages[] = {ColdUsage(), HotUsage()};
  const double durabilities[] = {0.999, 0.999999};
  const double lockins[] = {1.0, 0.5, 0.34};
  for (const auto& usage : usages) {
    for (double dura : durabilities) {
      for (double lockin : lockins) {
        const PlacementRequest request =
            RequestFor(usage, dura, 0.99, lockin);
        const PlacementDecision expected =
            exhaustive.FindBest(market, request);
        SolverStats stats;
        const PlacementDecision actual =
            solver.FindBestBranchAndBound(market, request, &stats);
        ASSERT_EQ(actual.feasible, expected.feasible)
            << "dura=" << dura << " lockin=" << lockin;
        if (!expected.feasible) continue;
        EXPECT_NEAR(actual.expected_cost.usd(), expected.expected_cost.usd(),
                    1e-9)
            << actual.Label() << " vs " << expected.Label();
        EXPECT_TRUE(actual.SamePlacement(expected))
            << actual.Label() << " vs " << expected.Label();
      }
    }
  }
}

TEST_P(SolverEquivalenceTest, DpHeuristicFeasibleAndNeverBeatsExact) {
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(5 + seed % 4, seed * 31 + 7);
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);

  for (const auto& usage : {ColdUsage(), HotUsage()}) {
    const PlacementRequest request = RequestFor(usage, 0.9999, 0.99, 0.5);
    const PlacementDecision expected = exhaustive.FindBest(market, request);
    const PlacementDecision heuristic = solver.FindBestDp(market, request);
    if (!expected.feasible) {
      // The heuristic must not invent feasibility the exact search lacks.
      EXPECT_FALSE(heuristic.feasible);
      continue;
    }
    ASSERT_TRUE(heuristic.feasible)
        << "heuristic missed a feasible market, seed " << seed;
    // A heuristic result is a real subset evaluated under the same
    // constraints, so it can never undercut the exhaustive optimum.
    EXPECT_GE(heuristic.expected_cost.usd(),
              expected.expected_cost.usd() - 1e-9);
    // And its claimed placement must itself verify.
    const PlacementDecision recheck = solver.EvaluateAtThreshold(
        heuristic.providers, heuristic.m, request);
    ASSERT_TRUE(recheck.feasible);
    EXPECT_NEAR(recheck.expected_cost.usd(), heuristic.expected_cost.usd(),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Markets, SolverEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           std::string name = "seed";
                           name += std::to_string(i.param);
                           return name;
                         });

TEST(SubsetSolverTest, PaperCatalogExactParity) {
  auto market = provider::PaperCatalog();
  market.push_back(provider::CheapStorSpec());
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);

  // The Slashdot rule (§IV-B): availability 99.99, durability 99.999.
  for (const auto& usage : {ColdUsage(), HotUsage()}) {
    PlacementRequest request = RequestFor(usage, 0.99999, 0.9999, 1.0);
    request.object_size = 1 * kMB;
    const PlacementDecision expected = exhaustive.FindBest(market, request);
    const PlacementDecision bnb =
        solver.FindBestBranchAndBound(market, request);
    ASSERT_TRUE(expected.feasible);
    EXPECT_TRUE(bnb.SamePlacement(expected));

    const PlacementDecision dp = solver.FindBestDp(market, request);
    ASSERT_TRUE(dp.feasible);
    // On the paper's market the polynomial heuristic lands on the optimum.
    EXPECT_NEAR(dp.expected_cost.usd(), expected.expected_cost.usd(), 1e-9)
        << dp.Label() << " vs " << expected.Label();
  }
}

TEST(SubsetSolverTest, SubmaximalThresholdExtensionNeverWorse) {
  // With allow_submaximal_threshold the DP may commit to a smaller m than
  // Algorithm 1 would (fewer read ops, reads routed to the cheapest
  // members) — it explores a superset of the design space, so its result is
  // never worse than the parity-mode result, and on egress-heavy objects it
  // can be strictly better.
  const PriceModel model;
  const SubsetSolver solver(model);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto market = RandomMarket(6, seed * 131);
    for (const auto& usage : {ColdUsage(), HotUsage()}) {
      const PlacementRequest request = RequestFor(usage, 0.9999, 0.99, 1.0);
      const PlacementDecision parity = solver.FindBestDp(market, request);
      const PlacementDecision flexible = solver.FindBestDp(
          market, request, nullptr,
          SubsetSolver::DpOptions{.allow_submaximal_threshold = true});
      if (!parity.feasible) continue;
      ASSERT_TRUE(flexible.feasible);
      EXPECT_LE(flexible.expected_cost.usd(),
                parity.expected_cost.usd() + 1e-9);
      // The flexible decision verifies at its own threshold.
      const PlacementDecision recheck = solver.EvaluateAtThreshold(
          flexible.providers, flexible.m, request);
      ASSERT_TRUE(recheck.feasible);
      EXPECT_NEAR(recheck.expected_cost.usd(),
                  flexible.expected_cost.usd(), 1e-9);
    }
  }
}

/// Brute force over the threshold-flexible space: every subset at every
/// m up to the subset's durability-maximal threshold.
PlacementDecision BruteForceFlexible(
    const SubsetSolver& solver,
    const std::vector<provider::ProviderSpec>& market,
    const PlacementRequest& request) {
  PlacementDecision best;
  const std::size_t n = market.size();
  std::vector<provider::ProviderSpec> subset;
  for (std::uint64_t mask = 1; mask < (1ull << n); ++mask) {
    subset.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) subset.push_back(market[i]);
    }
    for (int m = 1; m <= static_cast<int>(subset.size()); ++m) {
      PlacementDecision candidate =
          solver.EvaluateAtThreshold(subset, m, request);
      if (PlacementSearch::Better(candidate, best)) {
        best = std::move(candidate);
      }
    }
  }
  return best;
}

class FlexibleSolverTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlexibleSolverTest, MatchesBruteForceOverExtendedSpace) {
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(4 + seed % 4, seed * 977 + 3);
  const PriceModel model;
  const SubsetSolver solver(model);
  for (const auto& usage : {ColdUsage(), HotUsage()}) {
    for (double lockin : {1.0, 0.5}) {
      const PlacementRequest request = RequestFor(usage, 0.9999, 0.99, lockin);
      const PlacementDecision expected =
          BruteForceFlexible(solver, market, request);
      const PlacementDecision actual =
          solver.FindBestFlexible(market, request);
      ASSERT_EQ(actual.feasible, expected.feasible);
      if (!expected.feasible) continue;
      EXPECT_NEAR(actual.expected_cost.usd(), expected.expected_cost.usd(),
                  1e-9)
          << actual.Label() << " vs " << expected.Label();
    }
  }
}

TEST_P(FlexibleSolverTest, NeverWorseThanAlgorithmOne) {
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(6, seed * 131 + 17);
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);
  for (const auto& usage : {ColdUsage(), HotUsage()}) {
    const PlacementRequest request = RequestFor(usage, 0.9999, 0.99, 1.0);
    const PlacementDecision alg1 = exhaustive.FindBest(market, request);
    const PlacementDecision flexible =
        solver.FindBestFlexible(market, request);
    if (!alg1.feasible) continue;
    ASSERT_TRUE(flexible.feasible);
    EXPECT_LE(flexible.expected_cost.usd(),
              alg1.expected_cost.usd() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Markets, FlexibleSolverTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           std::string name = "seed";
                           name += std::to_string(i.param);
                           return name;
                         });

TEST(SubsetSolverTest, FlexiblePrunesHard) {
  const auto market = RandomMarket(14, 42);
  const PriceModel model;
  const SubsetSolver solver(model);
  const PlacementRequest request = RequestFor(ColdUsage(), 0.9999, 0.99, 1.0);
  SolverStats stats;
  const PlacementDecision best =
      solver.FindBestFlexible(market, request, &stats);
  ASSERT_TRUE(best.feasible);
  // The flexible space holds sum over m of C(14, >=m) configurations — far
  // beyond 2^14; the per-m exact base bound must cut it to a small fraction.
  EXPECT_LT(stats.sets_evaluated, 1u << 14);
  EXPECT_GT(stats.nodes_pruned, 0u);
}

TEST(SubsetSolverTest, BoundActuallyPrunes) {
  const auto market = RandomMarket(12, 99);
  const PriceModel model;
  const SubsetSolver solver(model);
  const PlacementRequest request = RequestFor(ColdUsage(), 0.9999, 0.99, 1.0);
  SolverStats stats;
  const PlacementDecision best =
      solver.FindBestBranchAndBound(market, request, &stats);
  ASSERT_TRUE(best.feasible);
  // 2^12 - 1 = 4095 subsets; the bound must have cut a sizable share.
  EXPECT_LT(stats.sets_evaluated, 4095u);
  EXPECT_GT(stats.nodes_pruned, 0u);
}

TEST(SubsetSolverTest, DpPolynomialEvaluationCount) {
  const auto market = RandomMarket(14, 5);
  const PriceModel model;
  const SubsetSolver solver(model);
  const PlacementRequest request = RequestFor(HotUsage(), 0.9999, 0.99, 1.0);
  SolverStats stats;
  const PlacementDecision best = solver.FindBestDp(market, request, &stats);
  ASSERT_TRUE(best.feasible);
  // At most one candidate evaluation per (n, m) pair plus repair swaps —
  // polynomial, nowhere near 2^14.
  EXPECT_LT(stats.sets_evaluated, 14u * 14u * 14u);
}

TEST(SubsetSolverTest, EvaluateAtThresholdRejectsInfeasibleM) {
  const auto market = provider::PaperCatalog();
  const PriceModel model;
  const SubsetSolver solver(model);
  PlacementRequest request = RequestFor(ColdUsage(), 0.999999999, 0.999, 1.0);

  // Single S3(l) (durability 99.99): cannot offer nine nines at m=1.
  std::vector<provider::ProviderSpec> weak = {market[1]};
  EXPECT_FALSE(solver.EvaluateAtThreshold(weak, 1, request).feasible);
  // m out of range.
  EXPECT_FALSE(solver.EvaluateAtThreshold(market, 0, request).feasible);
  EXPECT_FALSE(
      solver
          .EvaluateAtThreshold(market, static_cast<int>(market.size()) + 1,
                               request)
          .feasible);
}

TEST(SubsetSolverTest, EvaluateAtThresholdPricesIntermediateM) {
  const auto market = provider::PaperCatalog();
  const PriceModel model;
  const SubsetSolver solver(model);
  const PlacementRequest request = RequestFor(ColdUsage(), 0.99, 0.99, 1.0);

  // Cold data on the full set: larger m means smaller chunks and cheaper
  // storage, monotonically.
  double prev = std::numeric_limits<double>::infinity();
  for (int m = 1; m <= static_cast<int>(market.size()); ++m) {
    const PlacementDecision d = solver.EvaluateAtThreshold(market, m, request);
    if (!d.feasible) continue;
    EXPECT_LT(d.expected_cost.usd(), prev) << "m=" << m;
    prev = d.expected_cost.usd();
  }
  EXPECT_LT(prev, std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace scalia::core
