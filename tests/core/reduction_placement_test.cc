// The reduction-aware placement loop: observed dedup/compression ratios
// scale the per-GB cost terms (storage, bandwidth) while operation counts
// stay logical, so the cheapest provider set genuinely *flips* for classes
// that reduce well.  Covers the closed loop at two levels: the placement
// search fed an explicit ratio, and the engine deriving the ratio from its
// class statistics.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "core/engine.h"
#include "core/placement.h"
#include "filter/pipeline.h"
#include "provider/registry.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kHour;

/// Two providers with opposite price structures: "G" sells cheap GBs and
/// expensive operations, "O" the reverse.  Zero bandwidth prices keep the
/// arithmetic to the two terms under test.
provider::ProviderSpec GbCheap() {
  provider::ProviderSpec spec;
  spec.id = "G";
  spec.sla.durability = 0.999999;
  spec.sla.availability = 0.999;
  spec.zones = provider::ZoneSet::All();
  spec.pricing.storage_gb_month = 0.02;
  spec.pricing.ops_per_1000 = 0.10;
  return spec;
}

provider::ProviderSpec OpsCheap() {
  provider::ProviderSpec spec = GbCheap();
  spec.id = "O";
  spec.pricing.storage_gb_month = 0.30;
  spec.pricing.ops_per_1000 = 0.0;
  return spec;
}

/// Relaxed enough that single-provider sets are feasible — the flip is then
/// a pure cost comparison, undiluted by redundancy constraints.
StorageRule FlipRule() {
  return StorageRule{.name = "flip",
                     .durability = 0.99,
                     .availability = 0.9,
                     .allowed_zones = provider::ZoneSet::All(),
                     .lockin = 1.0,
                     .ttl_hint = std::nullopt};
}

TEST(ReductionPlacementTest, SearchFlipsOnReductionRatioAlone) {
  const std::vector<provider::ProviderSpec> market = {GbCheap(), OpsCheap()};
  const PlacementSearch search(PriceModel(PriceModelConfig{
      .sampling_period = kHour,
      .billing = provider::StorageBillingMode::kPerPeriod}));

  PlacementRequest request;
  request.rule = FlipRule();
  request.object_size = common::kGiB;
  request.per_period.storage_gb = 1.0;
  request.per_period.ops = 1000;
  request.decision_periods = 24;

  // Stored bytes == logical bytes: the storage gap (0.28 $/GB/period)
  // dwarfs G's op premium (0.10 $/period) — cheap GBs win.
  const auto raw = search.FindBest(market, request);
  ASSERT_TRUE(raw.feasible);
  EXPECT_EQ(raw.ProviderIds(), (std::vector<provider::ProviderId>{"G"}));

  // A 10x-reducing class pays for a tenth of the GBs but all of the ops:
  // the op premium now dominates and the set flips.  Nothing else changed.
  request.reduction_ratio = 0.1;
  const auto reduced = search.FindBest(market, request);
  ASSERT_TRUE(reduced.feasible);
  EXPECT_EQ(reduced.ProviderIds(), (std::vector<provider::ProviderId>{"O"}));
  EXPECT_LT(reduced.expected_cost.usd(), raw.expected_cost.usd());
}

TEST(ReductionPlacementTest, OpsAreNeverScaledByTheRatio) {
  // Reduction shrinks bytes, not request counts.  A ratio on an ops-only
  // workload must leave the cost untouched.
  const std::vector<provider::ProviderSpec> market = {GbCheap()};
  const PlacementSearch search(PriceModel(PriceModelConfig{}));
  PlacementRequest request;
  request.rule = FlipRule();
  request.object_size = 1;
  request.per_period.ops = 500;
  const auto raw = search.FindBest(market, request);
  request.reduction_ratio = 0.01;
  const auto reduced = search.FindBest(market, request);
  ASSERT_TRUE(raw.feasible);
  ASSERT_TRUE(reduced.feasible);
  EXPECT_DOUBLE_EQ(raw.expected_cost.usd(), reduced.expected_cost.usd());
}

TEST(ReductionPlacementTest, DegenerateRatiosFallBackToLogicalCost) {
  const std::vector<provider::ProviderSpec> market = {GbCheap(), OpsCheap()};
  const PlacementSearch search(PriceModel(PriceModelConfig{}));
  PlacementRequest request;
  request.rule = FlipRule();
  request.object_size = common::kGiB;
  request.per_period.storage_gb = 1.0;
  request.per_period.ops = 1000;
  const auto baseline = search.FindBest(market, request);
  for (const double hostile : {0.0, -1.0,
                               std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity()}) {
    request.reduction_ratio = hostile;
    const auto decision = search.FindBest(market, request);
    ASSERT_TRUE(decision.feasible) << hostile;
    EXPECT_EQ(decision.ProviderIds(), baseline.ProviderIds()) << hostile;
    EXPECT_DOUBLE_EQ(decision.expected_cost.usd(),
                     baseline.expected_cost.usd())
        << hostile;
  }
}

// ---- The closed loop: class statistics -> engine -> placement ------------

TEST(ReductionPlacementTest, EngineFlipsPlacementFromObservedClassRatio) {
  provider::ProviderRegistry registry;
  ASSERT_TRUE(registry.Register(GbCheap()).ok());
  ASSERT_TRUE(registry.Register(OpsCheap()).ok());
  store::ReplicatedStore db(1);
  stats::StatsDb stats(&db, 0);
  EngineConfig config;
  config.default_rule = FlipRule();
  Engine engine("e0", &registry, &db, 0, nullptr, &stats, nullptr, nullptr,
                config, /*seed=*/7);

  // A pipeline must be attached for the engine to consult class reduction
  // statistics at all (unfiltered deployments always price logically).
  filter::DedupIndex index;
  filter::TenantKeyring keyring;
  filter::Pipeline pipeline(filter::PipelineConfig{}, &index, &keyring);
  engine.AttachFilters(&pipeline);

  common::Xoshiro256 rng(8);
  std::string body(common::kMiB, '\0');
  for (auto& c : body) c = static_cast<char>(rng() & 0xFF);
  ASSERT_TRUE(engine.Put(0, "t:b", "obj", body, "app/bin").ok());
  const std::string row_key = MakeRowKey("t:b", "obj");
  auto meta = engine.LoadMetadata(0, row_key);
  ASSERT_TRUE(meta.ok());

  // One observed period with a single op: storage ~0.001 GB makes G's
  // storage edge (0.28 * 0.001) beat its op premium (1 * 1e-4) at ratio 1.
  stats::PeriodStats period;
  period.ops = 1.0;
  stats.AppendPeriodStats(row_key, 0, period, kHour);

  auto before = engine.EvaluatePlacement(kHour, row_key, 24);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->ProviderIds(), (std::vector<provider::ProviderId>{"G"}));

  // The filter pipeline reports this class reducing 10x.  Nothing about
  // the object, its history or the market changes — only the observed
  // ratio — and the cheapest placement flips to the op-friendly provider.
  for (int i = 0; i < 8; ++i) {
    stats.classes().ForClass(meta->class_id).RecordReduction(1000000, 100000);
  }
  EXPECT_NEAR(engine.ClassReductionRatio(meta->class_id), 0.1, 1e-9);

  auto after = engine.EvaluatePlacement(kHour, row_key, 24);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->ProviderIds(), (std::vector<provider::ProviderId>{"O"}));
}

}  // namespace
}  // namespace scalia::core
