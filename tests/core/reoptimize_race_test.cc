// Migration-vs-Put races (PR 4): the CAS-on-version commit protocol.
//
// Deterministic half: the engine's commit-race hook interleaves an acked
// Put (or Delete) between a migration's chunk staging and its metadata CAS,
// asserting the migration aborts with kConflict, the acked write survives,
// the *staged* chunks are garbage-collected (idempotently), the abort is
// journaled, and crash recovery never resurrects the lost-race placement.
//
// Concurrent half: N writer threads drive PUTs through the real loopback
// serving stack (net::HttpClient -> HttpServer -> S3Gateway -> cluster)
// while a migrator thread continuously re-optimizes the same keys between
// two alternating ultra-cheap providers.  Afterwards every acked PUT must
// read back exactly, and no provider may hold an orphaned staged chunk.
// Runs under TSan via scripts/verify.sh --tsan (ctest label `tsan`).
#include "core/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/auth.h"
#include "api/gateway.h"
#include "common/thread_pool.h"
#include "core/cluster.h"
#include "durability/manager.h"
#include "net/client.h"
#include "net/server/server.h"
#include "provider/spec.h"
#include "support/wait.h"

namespace scalia::core {
namespace {

namespace fs = std::filesystem;

using common::kHour;

/// An ultra-cheap, ultra-durable provider: registering one after an object
/// was placed makes re-placement both different and worthwhile, so
/// ReoptimizeObject deterministically reaches its CAS commit.
provider::ProviderSpec UltraCheap(const std::string& id) {
  provider::ProviderSpec spec;
  spec.id = id;
  spec.description = "ultra-cheap test provider";
  spec.sla = {.durability = 0.9999999999, .availability = 0.9999};
  spec.zones = provider::ZoneSet::All();
  spec.pricing = {.storage_gb_month = 1e-4,
                  .bw_in_gb = 1e-4,
                  .bw_out_gb = 1e-4,
                  .ops_per_1000 = 1e-5};
  spec.read_latency_ms = 5.0;
  return spec;
}

StorageRule DefaultRule() {
  return StorageRule{.name = "default",
                     .durability = 0.999999,
                     .availability = 0.9999,
                     .allowed_zones = provider::ZoneSet::All(),
                     .lockin = 1.0,
                     .ttl_hint = std::nullopt};
}

/// Every chunk stored across all registered providers whose storage key is
/// not referenced by any metadata row in `referenced_skeys`.
std::vector<std::string> OrphanedChunks(
    provider::ProviderRegistry& registry,
    const std::set<std::string>& referenced_skeys, common::SimTime now) {
  std::vector<std::string> orphans;
  for (const auto& spec : registry.Specs()) {
    auto* store = registry.Find(spec.id);
    if (store == nullptr) continue;
    auto keys = store->List(now, "");
    if (!keys.ok()) continue;
    for (const auto& chunk_key : *keys) {
      const auto dot = chunk_key.rfind('.');
      const std::string skey =
          dot == std::string::npos ? chunk_key : chunk_key.substr(0, dot);
      if (!referenced_skeys.contains(skey)) {
        orphans.push_back(spec.id + "/" + chunk_key);
      }
    }
  }
  return orphans;
}

class ReoptimizeRaceTest : public ::testing::Test {
 protected:
  ReoptimizeRaceTest() : db_(1), stats_db_(&db_, 0), pool_(2) {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    EngineConfig config;
    config.default_rule = DefaultRule();
    engine_ = std::make_unique<Engine>("e0", &registry_, &db_, 0, nullptr,
                                       &stats_db_, nullptr, &pool_, config,
                                       /*seed=*/7);
  }

  /// Puts an object and returns its row key.
  std::string PutObject(const std::string& key, const std::string& data) {
    EXPECT_TRUE(engine_->Put(0, "race", key, data, "image/png").ok());
    return MakeRowKey("race", key);
  }

  std::set<std::string> ReferencedSkeys(common::SimTime now,
                                        const std::vector<std::string>& rks) {
    std::set<std::string> skeys;
    for (const auto& rk : rks) {
      auto meta = engine_->LoadMetadata(now, rk);
      if (meta.ok()) skeys.insert(meta->skey);
    }
    return skeys;
  }

  provider::ProviderRegistry registry_;
  store::ReplicatedStore db_;
  stats::StatsDb stats_db_;
  common::ThreadPool pool_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(ReoptimizeRaceTest, MigrationWithoutRaceCommitsAndSweepsOldChunks) {
  const std::string data(64 * 1024, 'a');
  const std::string rk = PutObject("obj", data);
  auto before = engine_->LoadMetadata(0, rk);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(registry_.Register(UltraCheap("Ultra")).ok());
  auto migrated = engine_->ReoptimizeObject(kHour, rk, /*decision_periods=*/500);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_TRUE(*migrated);

  auto after = engine_->LoadMetadata(kHour, rk);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->skey, before->skey);
  auto got = engine_->Get(kHour, "race", "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, data);
  // The superseded placement's chunks are gone everywhere.
  EXPECT_TRUE(OrphanedChunks(registry_, {after->skey}, kHour).empty());
}

TEST_F(ReoptimizeRaceTest, AckedPutSurvivesRacingMigration) {
  const std::string rk = PutObject("obj", std::string(64 * 1024, 'a'));
  ASSERT_TRUE(registry_.Register(UltraCheap("Ultra")).ok());

  // The hook lands an acked Put between chunk staging and the CAS commit:
  // the exact interleaving that silently reverted the write before PR 4.
  const std::string acked(32 * 1024, 'W');
  engine_->SetCommitRaceHook([&] {
    ASSERT_TRUE(engine_->Put(kHour, "race", "obj", acked, "image/png").ok());
  });
  auto migrated = engine_->ReoptimizeObject(kHour, rk, 500);
  engine_->SetCommitRaceHook(nullptr);

  ASSERT_FALSE(migrated.ok());
  EXPECT_EQ(migrated.status().code(), common::StatusCode::kConflict);
  // The acked write is intact...
  auto got = engine_->Get(2 * kHour, "race", "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, acked);
  // ...and the aborted migration's staged chunks were garbage-collected:
  // only the acked placement's chunks remain anywhere.
  auto meta = engine_->LoadMetadata(2 * kHour, rk);
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(OrphanedChunks(registry_, {meta->skey}, 2 * kHour).empty());
}

TEST_F(ReoptimizeRaceTest, ConcurrentDeleteAbortsMigrationWithoutResurrection) {
  const std::string rk = PutObject("obj", std::string(64 * 1024, 'a'));
  ASSERT_TRUE(registry_.Register(UltraCheap("Ultra")).ok());

  engine_->SetCommitRaceHook(
      [&] { ASSERT_TRUE(engine_->Delete(kHour, "race", "obj").ok()); });
  auto migrated = engine_->ReoptimizeObject(kHour, rk, 500);
  engine_->SetCommitRaceHook(nullptr);

  ASSERT_FALSE(migrated.ok());
  EXPECT_EQ(migrated.status().code(), common::StatusCode::kConflict);
  // The tombstone stands — the migration must not resurrect the object —
  // and neither the old nor the staged chunks survive.
  EXPECT_EQ(engine_->Get(2 * kHour, "race", "obj").status().code(),
            common::StatusCode::kNotFound);
  EXPECT_TRUE(OrphanedChunks(registry_, {}, 2 * kHour).empty());
}

TEST_F(ReoptimizeRaceTest, AbortedMigrationGcIsIdempotent) {
  const std::string rk = PutObject("obj", std::string(64 * 1024, 'a'));
  ASSERT_TRUE(registry_.Register(UltraCheap("Ultra")).ok());

  // Lose the race repeatedly: every abort sweeps its own staged chunks and
  // never disturbs the acked object, no matter how often it happens.  The
  // racing Put lands inside a brief Ultra outage so the acked placement
  // stays Ultra-free and the next attempt wants to migrate again.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto t = static_cast<common::SimTime>(attempt + 1) * kHour;
    registry_.Find("Ultra")->failures().AddOutage(t + kHour / 4,
                                                  t + kHour / 2);
    const std::string acked = "acked-" + std::to_string(attempt) +
                              std::string(16 * 1024, 'w');
    engine_->SetCommitRaceHook([&] {
      ASSERT_TRUE(
          engine_->Put(t + kHour / 3, "race", "obj", acked, "image/png").ok());
    });
    auto migrated = engine_->ReoptimizeObject(t, rk, 500);
    engine_->SetCommitRaceHook(nullptr);
    ASSERT_FALSE(migrated.ok()) << "attempt " << attempt;
    EXPECT_EQ(migrated.status().code(), common::StatusCode::kConflict);
    const auto after = t + kHour * 3 / 4;  // outage over, everything readable
    auto got = engine_->Get(after, "race", "obj");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, acked);
    auto meta = engine_->LoadMetadata(after, rk);
    ASSERT_TRUE(meta.ok());
    EXPECT_TRUE(OrphanedChunks(registry_, {meta->skey}, after).empty())
        << "attempt " << attempt;
  }
  // With no race, the migration then goes through.
  auto migrated = engine_->ReoptimizeObject(10 * kHour, rk, 500);
  ASSERT_TRUE(migrated.ok()) << migrated.status().ToString();
  EXPECT_TRUE(*migrated);
}

TEST_F(ReoptimizeRaceTest, RepairLosesCasToConcurrentPut) {
  const std::string data(64 * 1024, 'a');
  const std::string rk = PutObject("obj", data);
  auto meta = engine_->LoadMetadata(0, rk);
  ASSERT_TRUE(meta.ok());
  // Break one stripe provider so RepairObject stages a rebuilt chunk.
  const auto faulty = meta->stripes[0].provider;
  registry_.Find(faulty)->failures().AddOutage(kHour, 10 * kHour);

  const std::string acked(32 * 1024, 'R');
  engine_->SetCommitRaceHook([&] {
    ASSERT_TRUE(
        engine_->Put(2 * kHour, "race", "obj", acked, "image/png").ok());
  });
  const auto repaired = engine_->RepairObject(2 * kHour, rk);
  engine_->SetCommitRaceHook(nullptr);

  EXPECT_EQ(repaired.code(), common::StatusCode::kConflict);
  auto got = engine_->Get(3 * kHour, "race", "obj");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, acked);
  // Once the faulty provider recovers and deferred deletes drain, only the
  // acked placement's chunks remain (the rebuilt chunk was swept).
  while (engine_->ProcessPendingDeletes(11 * kHour) > 0) {
  }
  ASSERT_EQ(engine_->PendingDeleteCount(), 0u);
  auto final_meta = engine_->LoadMetadata(11 * kHour, rk);
  ASSERT_TRUE(final_meta.ok());
  EXPECT_TRUE(
      OrphanedChunks(registry_, {final_meta->skey}, 11 * kHour).empty());
}

TEST(ReoptimizeRaceRecoveryTest, RecoveryNeverResurrectsLostRacePlacement) {
  const std::string dir =
      (fs::path(::testing::TempDir()) / "reoptimize_race_recovery").string();
  fs::remove_all(dir);
  provider::ProviderRegistry registry;
  for (auto& spec : provider::PaperCatalog()) {
    ASSERT_TRUE(registry.Register(std::move(spec)).ok());
  }

  const std::string rk = MakeRowKey("race", "obj");
  const std::string acked(32 * 1024, 'W');
  std::string committed_serialized;
  {
    // Incarnation 1: journaled engine loses a migration race.
    store::ReplicatedStore db(1);
    stats::StatsDb stats(&db, 0);
    durability::DurabilityConfig config;
    config.dir = dir;
    config.wal.sync_on_commit = false;
    config.group_commit = false;
    auto durability = durability::DurabilityManager::Open(
        config, durability::EngineStateRefs{
                    .db = &db, .dc = 0, .stats = &stats, .registry = nullptr});
    ASSERT_TRUE(durability.ok()) << durability.status().ToString();
    EngineConfig engine_config;
    engine_config.default_rule = DefaultRule();
    Engine engine("e0", &registry, &db, 0, nullptr, &stats, nullptr, nullptr,
                  engine_config, /*seed=*/11);
    engine.AttachJournal((*durability)->journal());

    ASSERT_TRUE(
        engine.Put(0, "race", "obj", std::string(64 * 1024, 'a'), "image/png")
            .ok());
    // Ultra appears only after the initial placement, so the migration has
    // somewhere better to go.
    ASSERT_TRUE(registry.Register(UltraCheap("Ultra")).ok());
    engine.SetCommitRaceHook([&] {
      ASSERT_TRUE(engine.Put(kHour, "race", "obj", acked, "image/png").ok());
    });
    auto migrated = engine.ReoptimizeObject(kHour, rk, 500);
    ASSERT_FALSE(migrated.ok());
    EXPECT_EQ(migrated.status().code(), common::StatusCode::kConflict);
    auto meta = engine.LoadMetadata(2 * kHour, rk);
    ASSERT_TRUE(meta.ok());
    committed_serialized = meta->skey;
  }
  {
    // Incarnation 2: replaying the WAL (upserts + the migrate-abort record)
    // must restore the *acked* placement, not the staged one.
    store::ReplicatedStore db(1);
    stats::StatsDb stats(&db, 0);
    durability::DurabilityConfig config;
    config.dir = dir;
    config.wal.sync_on_commit = false;
    config.group_commit = false;
    auto durability = durability::DurabilityManager::Open(
        config, durability::EngineStateRefs{
                    .db = &db, .dc = 0, .stats = &stats, .registry = nullptr});
    ASSERT_TRUE(durability.ok()) << durability.status().ToString();
    auto report = (*durability)->Recover(2 * kHour);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(report->records_replayed, 2u);

    EngineConfig engine_config;
    engine_config.default_rule = DefaultRule();
    Engine engine("e0", &registry, &db, 0, nullptr, &stats, nullptr, nullptr,
                  engine_config, /*seed=*/12);
    auto meta = engine.LoadMetadata(3 * kHour, rk);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta->skey, committed_serialized);
    auto got = engine.Get(3 * kHour, "race", "obj");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, acked);
  }
  fs::remove_all(dir);
}

TEST(ReoptimizeRaceRecoveryTest, InvertedWalOrderStillConvergesOnSuperseder) {
  // Journal appends happen outside the metadata table's shard lock, so two
  // racing commits can reach the WAL in the opposite of table order: the
  // acked Put that *superseded* a migration may be logged first.  Records
  // carry their committed vector clocks precisely so replay is causal and
  // the dominated migrate record still loses, whatever the append order.
  const std::string dir =
      (fs::path(::testing::TempDir()) / "reoptimize_race_inverted").string();
  fs::remove_all(dir);
  const std::string rk = "row-inverted";
  {
    store::ReplicatedStore db(1);
    stats::StatsDb stats(&db, 0);
    durability::DurabilityConfig config;
    config.dir = dir;
    config.wal.sync_on_commit = false;
    config.group_commit = false;
    auto durability = durability::DurabilityManager::Open(
        config, durability::EngineStateRefs{
                    .db = &db, .dc = 0, .stats = &stats, .registry = nullptr});
    ASSERT_TRUE(durability.ok()) << durability.status().ToString();
    durability::Journal* journal = (*durability)->journal();

    store::VectorClock c1, c_migrate, c_put;
    c1.Set(0, 1);         // the original object version
    c_migrate.Set(0, 2);  // the migration's CAS commit (table order 2nd)
    c_put.Set(0, 3);      // the acked Put that superseded it (table order 3rd)
    ASSERT_TRUE(journal->LogUpsert(rk, "v1", 10, c1).ok());
    // Inverted append order: the superseding Put logs before the migration.
    ASSERT_TRUE(journal->LogUpsert(rk, "acked", 30, c_put).ok());
    ASSERT_TRUE(journal->LogMigrate(rk, "migrated-stale", 20, c_migrate).ok());
  }
  {
    store::ReplicatedStore db(1);
    stats::StatsDb stats(&db, 0);
    durability::DurabilityConfig config;
    config.dir = dir;
    config.wal.sync_on_commit = false;
    config.group_commit = false;
    auto durability = durability::DurabilityManager::Open(
        config, durability::EngineStateRefs{
                    .db = &db, .dc = 0, .stats = &stats, .registry = nullptr});
    ASSERT_TRUE(durability.ok()) << durability.status().ToString();
    auto report = (*durability)->Recover(100);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->records_replayed, 3u);

    auto read = db.Get(0, "metadata", rk);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->value, "acked");
    EXPECT_FALSE(read->conflict);  // the stale migrate fully lost, no fork
  }
  fs::remove_all(dir);
}

// The headline scenario of ISSUE 4: writer threads over the real loopback
// serving stack racing a continuously-migrating optimizer.  Invariants:
// every acked PUT reads back exactly afterwards, and aborted migrations
// leave no orphaned staged chunks.
TEST(ReoptimizeLoopbackRaceTest, WritersNeverLoseAckedPutsUnderMigration) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kKeysPerWriter = 3;
  // Rounds are paced by observed progress (a sanitizer-loaded machine can
  // starve writers for whole rounds): run at least kMinRounds, stop once
  // enough migrations/conflicts accumulated, give up at kMaxRounds.
  constexpr int kMinRounds = 8;
  constexpr int kMaxRounds = 96;
  constexpr std::uint64_t kEnoughEvents = 6;  // migrations + conflicts
  constexpr std::size_t kObjectBytes = 32 * 1024;

  ClusterConfig cluster_config;
  cluster_config.num_datacenters = 1;
  cluster_config.engines_per_dc = 2;
  cluster_config.enable_cache = false;  // force every read through chunks
  cluster_config.engine.default_rule = DefaultRule();
  ScaliaCluster cluster(cluster_config);
  for (auto& spec : provider::PaperCatalog()) {
    ASSERT_TRUE(cluster.registry().Register(std::move(spec)).ok());
  }
  // Two cheap providers, one much cheaper than the other, the cheapest one
  // flapping on even rounds: objects PUT while it is out land on the mid
  // tier, and the next odd round wants a genuinely worthwhile migration
  // back — a continuous stream of real migrations racing the writers.
  ASSERT_TRUE(cluster.registry().Register(UltraCheap("FlipCheap")).ok());
  auto mid = UltraCheap("FlipMid");
  mid.pricing.storage_gb_month = 0.05;  // 500x the cheapest, 1/2 the papers
  ASSERT_TRUE(cluster.registry().Register(std::move(mid)).ok());
  for (int round = 0; round < kMaxRounds; round += 2) {
    const auto start = static_cast<common::SimTime>(round + 1);
    cluster.registry().Find("FlipCheap")->failures().AddOutage(start,
                                                               start + 1);
  }

  // The serving stack: anonymous gateway behind the epoll loop, timestamped
  // by the shared race clock the migrator advances.  The gateway namespaces
  // containers per tenant, so the engines see "race:race".
  const std::string kContainer = "race:race";
  std::atomic<common::SimTime> race_clock{0};
  api::Authenticator auth;
  auth.AllowAnonymous("race");
  api::S3Gateway gateway(&auth,
                         [&]() -> Engine& { return cluster.RouteRequest(); });
  net::ServerConfig server_config;
  server_config.clock = [&race_clock] {
    return race_clock.load(std::memory_order_relaxed);
  };
  net::HttpServer server(
      std::move(server_config),
      [&gateway](common::SimTime now, const api::HttpRequest& request) {
        return gateway.Handle(now, request);
      });
  ASSERT_TRUE(server.Start().ok());

  // Writers: each owns its keys, writes monotonically-versioned bodies over
  // the wire, and records the last acked body.
  std::atomic<bool> stop{false};
  std::vector<std::vector<std::string>> last_acked(
      kWriters, std::vector<std::string>(kKeysPerWriter));
  std::atomic<std::uint64_t> acked_puts{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      net::HttpClient client("127.0.0.1", server.port());
      std::uint64_t version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t k = version % kKeysPerWriter;
        std::string body = "w" + std::to_string(w) + "-k" + std::to_string(k) +
                           "-v" + std::to_string(version) + "|";
        body.resize(kObjectBytes, static_cast<char>('a' + version % 26));
        api::HttpRequest request;
        request.method = api::HttpMethod::kPut;
        request.path = "/race/w" + std::to_string(w) + "-k" + std::to_string(k);
        request.body = body;
        const auto response = client.RoundTrip(request);
        if (response.ok() && response->status == 201) {
          last_acked[w][k] = std::move(body);
          acked_puts.fetch_add(1, std::memory_order_relaxed);
        }
        ++version;
      }
    });
  }

  // Migrator: re-optimizes every key each round while the writers hammer
  // the same keys through the server.
  std::vector<std::string> row_keys;
  for (std::size_t w = 0; w < kWriters; ++w) {
    for (std::size_t k = 0; k < kKeysPerWriter; ++k) {
      row_keys.push_back(MakeRowKey(
          kContainer, "w" + std::to_string(w) + "-k" + std::to_string(k)));
    }
  }
  // Let every writer land at least one acked PUT before migrating, so the
  // migrator never spins on not-yet-created rows.
  ASSERT_TRUE(
      testing::WaitUntil([&] { return acked_puts.load() >= kWriters; }));

  std::uint64_t migrations = 0, conflicts = 0;
  int rounds_run = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    const auto now = static_cast<common::SimTime>(round + 1);
    race_clock.store(now, std::memory_order_relaxed);
    Engine& engine = cluster.EngineAt(0, 0);
    for (const auto& rk : row_keys) {
      auto migrated = engine.ReoptimizeObject(now, rk, /*decision_periods=*/500);
      if (migrated.ok() && *migrated) {
        ++migrations;
      } else if (!migrated.ok() &&
                 migrated.status().code() == common::StatusCode::kConflict) {
        ++conflicts;
      }
    }
    rounds_run = round + 1;
    if (round + 1 >= kMinRounds && migrations + conflicts >= kEnoughEvents) {
      break;
    }
    // Pace rounds on writer progress, not wall time: wait (bounded) for
    // more acked PUTs so each round migrates under fresh writes.
    const auto acked_before = acked_puts.load();
    testing::WaitUntil([&] { return acked_puts.load() > acked_before; },
                       std::chrono::milliseconds(100));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  server.Stop();

  ASSERT_GT(acked_puts.load(), 0u);
  EXPECT_GT(migrations, 0u) << "the race never exercised a real migration";

  // Quiesce: no outage is scheduled beyond kMaxRounds+1, so every provider
  // is reachable and all deferred deletes can drain.
  const auto final_now = static_cast<common::SimTime>(kMaxRounds + 2);
  for (std::size_t e = 0; e < cluster.EngineCount(); ++e) {
    Engine& engine = cluster.EngineAt(0, e);
    while (engine.ProcessPendingDeletes(final_now) > 0) {
    }
    EXPECT_EQ(engine.PendingDeleteCount(), 0u);
  }

  // Invariant 1: every acked PUT is readable afterwards, byte-exact.
  Engine& reader = cluster.EngineAt(0, 1);
  std::set<std::string> referenced;
  for (std::size_t w = 0; w < kWriters; ++w) {
    for (std::size_t k = 0; k < kKeysPerWriter; ++k) {
      if (last_acked[w][k].empty()) continue;  // never acked (unlikely)
      const std::string key =
          "w" + std::to_string(w) + "-k" + std::to_string(k);
      auto got = reader.Get(final_now, kContainer, key);
      ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
      EXPECT_EQ(*got, last_acked[w][k]) << "lost acked write on " << key;
      auto meta = reader.LoadMetadata(final_now, MakeRowKey(kContainer, key));
      ASSERT_TRUE(meta.ok());
      referenced.insert(meta->skey);
    }
  }

  // Invariant 2: aborted migrations left no orphaned staged chunks.
  const auto orphans = OrphanedChunks(cluster.registry(), referenced, final_now);
  EXPECT_TRUE(orphans.empty()) << orphans.size() << " orphans, first: "
                               << (orphans.empty() ? "" : orphans.front());

  // Telemetry for the curious: how hard did the race actually hit?
  std::printf("loopback race: %llu acked puts, %llu migrations, "
              "%llu CAS conflicts in %d rounds\n",
              static_cast<unsigned long long>(acked_puts.load()),
              static_cast<unsigned long long>(migrations),
              static_cast<unsigned long long>(conflicts), rounds_run);
}

}  // namespace
}  // namespace scalia::core
