#include "core/metadata.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace scalia::core {
namespace {

ObjectMetadata SampleMeta() {
  common::Xoshiro256 rng(1);
  ObjectMetadata meta;
  meta.container = "pictures";
  meta.key = "myvacation.gif";
  meta.mime = "image/gif";
  meta.size = 342 * common::kKB;
  meta.checksum_hex = "ce944a11a4ce944a11a4ce944a11a4ab";
  meta.rule_name = "rule3";
  meta.class_id = "deadbeef";
  meta.uuid = common::Uuid::Generate(rng);
  meta.skey = MakeStorageKey(meta.container, meta.key, meta.uuid);
  meta.m = 3;
  meta.stripes = {{0, "provider_2"},
                  {1, "provider_5"},
                  {2, "provider_7"},
                  {3, "provider_1"}};
  meta.created_at = 100;
  meta.updated_at = 200;
  return meta;
}

TEST(MetadataTest, SerializeParseRoundTrip) {
  const ObjectMetadata meta = SampleMeta();
  auto parsed = ObjectMetadata::Parse(meta.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->container, meta.container);
  EXPECT_EQ(parsed->key, meta.key);
  EXPECT_EQ(parsed->mime, meta.mime);
  EXPECT_EQ(parsed->size, meta.size);
  EXPECT_EQ(parsed->checksum_hex, meta.checksum_hex);
  EXPECT_EQ(parsed->rule_name, meta.rule_name);
  EXPECT_EQ(parsed->class_id, meta.class_id);
  EXPECT_EQ(parsed->skey, meta.skey);
  EXPECT_EQ(parsed->m, meta.m);
  EXPECT_EQ(parsed->created_at, meta.created_at);
  EXPECT_EQ(parsed->updated_at, meta.updated_at);
  ASSERT_EQ(parsed->stripes.size(), 4u);
  EXPECT_EQ(parsed->stripes[2].chunk_index, 2u);
  EXPECT_EQ(parsed->stripes[2].provider, "provider_7");
}

TEST(MetadataTest, FilterFieldsRoundTripAndStayOffTheLegacyWire) {
  // Unfiltered objects serialize byte-identically to the pre-pipeline
  // format: a rolling upgrade's old readers must keep parsing new writers.
  const ObjectMetadata legacy = SampleMeta();
  EXPECT_EQ(legacy.Serialize().find("filter"), std::string::npos);
  EXPECT_EQ(legacy.Serialize().find("logical_size"), std::string::npos);
  EXPECT_EQ(legacy.Serialize().find("dedup_refs"), std::string::npos);
  EXPECT_EQ(legacy.LogicalSize(), legacy.size);

  ObjectMetadata meta = SampleMeta();
  meta.size = 1000;  // stored (post-filter) footprint
  meta.logical_size = 5000;
  meta.filter_stage = 2;
  meta.dedup_refs = {std::string(64, 'a'), std::string(64, 'b')};
  auto parsed = ObjectMetadata::Parse(meta.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size, 1000u);
  EXPECT_EQ(parsed->logical_size, 5000u);
  EXPECT_EQ(parsed->LogicalSize(), 5000u);
  EXPECT_EQ(parsed->filter_stage, 2);
  EXPECT_EQ(parsed->dedup_refs, meta.dedup_refs);
}

TEST(MetadataTest, ChunkKeyAndProviders) {
  const ObjectMetadata meta = SampleMeta();
  EXPECT_EQ(meta.ChunkKey(2), meta.skey + ".2");
  EXPECT_EQ(meta.n(), 4u);
  const auto providers = meta.Providers();
  EXPECT_EQ(providers.size(), 4u);
  EXPECT_EQ(providers[0], "provider_2");
}

TEST(MetadataTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ObjectMetadata::Parse("").ok());
  EXPECT_FALSE(ObjectMetadata::Parse("not-a-kv-line\n").ok());
  EXPECT_FALSE(ObjectMetadata::Parse("container=c\nkey=k\n").ok());  // no skey
}

TEST(MetadataTest, ParseRejectsBadStripe) {
  std::string serialized = SampleMeta().Serialize();
  const auto pos = serialized.find("stripes=");
  serialized = serialized.substr(0, pos) + "stripes=0provider\n";
  EXPECT_FALSE(ObjectMetadata::Parse(serialized).ok());
}

TEST(MetadataTest, RowKeyIsMd5OfContainerAndKey) {
  // §III-D.1: row_key = MD5(container | key).
  const std::string rk = MakeRowKey("pictures", "myvacation.gif");
  EXPECT_EQ(rk.size(), 32u);
  EXPECT_EQ(rk, MakeRowKey("pictures", "myvacation.gif"));
  EXPECT_NE(rk, MakeRowKey("pictures", "other.gif"));
  EXPECT_NE(rk, MakeRowKey("other", "myvacation.gif"));
}

TEST(MetadataTest, StorageKeyVariesWithUuid) {
  // §III-D.1: skey = MD5(container | key | UUID) — concurrent updates of
  // the same object never collide at the providers.
  common::Xoshiro256 rng(2);
  const auto u1 = common::Uuid::Generate(rng);
  const auto u2 = common::Uuid::Generate(rng);
  EXPECT_NE(MakeStorageKey("c", "k", u1), MakeStorageKey("c", "k", u2));
  EXPECT_EQ(MakeStorageKey("c", "k", u1), MakeStorageKey("c", "k", u1));
}

}  // namespace
}  // namespace scalia::core
