// Capacity- and chunk-constraint handling in the scalable solvers: the
// branch-and-bound must honour the same free-capacity and max-chunk-size
// limits as Algorithm 1 (§III-A.2, §III-E), and agree with it under them.
#include <gtest/gtest.h>

#include "core/subset_solver.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kMB;

PlacementRequest ArchiveRequest() {
  PlacementRequest request;
  request.rule = StorageRule{.name = "cap",
                             .durability = 0.9999,
                             .availability = 0.99,
                             .allowed_zones = provider::ZoneSet::All(),
                             .lockin = 0.5,
                             .ttl_hint = std::nullopt};
  request.object_size = 40 * kMB;
  request.per_period.storage_gb = 0.04;
  request.per_period.writes = 1.0;
  request.per_period.bw_in_gb = 0.04;
  request.per_period.ops = 1.0;
  request.decision_periods = 24;
  return request;
}

TEST(SolverCapacityTest, BranchAndBoundHonoursFreeCapacity) {
  auto market = provider::PaperCatalog();
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);

  PlacementRequest request = ArchiveRequest();
  // S3(l) — the cheapest storage — has no room left; everyone else has
  // plenty.  Chunk size at m=1 is 40 MB, so S3(l) is unusable.
  request.free_capacity.assign(market.size(), 100 * kMB);
  for (std::size_t i = 0; i < market.size(); ++i) {
    if (market[i].id == "S3(l)") request.free_capacity[i] = 1 * kMB;
  }

  const PlacementDecision expected = exhaustive.FindBest(market, request);
  const PlacementDecision actual =
      solver.FindBestBranchAndBound(market, request);
  ASSERT_TRUE(expected.feasible);
  ASSERT_TRUE(actual.feasible);
  EXPECT_TRUE(actual.SamePlacement(expected));
  for (const auto& member : actual.providers) {
    EXPECT_NE(member.id, "S3(l)") << "capacity-full provider chosen";
  }
}

TEST(SolverCapacityTest, TightCapacityForcesWiderStripes) {
  auto market = provider::PaperCatalog();
  const SubsetSolver solver{PriceModel{}};

  PlacementRequest request = ArchiveRequest();
  // Nobody can hold more than 15 MB: a 40 MB object needs m >= 3, hence at
  // least a 3-provider stripe.
  request.free_capacity.assign(market.size(), 15 * kMB);
  const PlacementDecision decision =
      solver.FindBestBranchAndBound(market, request);
  ASSERT_TRUE(decision.feasible);
  EXPECT_GE(decision.m, 3);
  EXPECT_GE(decision.providers.size(), 3u);
}

TEST(SolverCapacityTest, MaxChunkSizeAgreesWithAlgorithmOne) {
  auto market = provider::PaperCatalog();
  // Azure refuses chunks above 12 MB (§III-A.2's provider constraint).
  for (auto& spec : market) {
    if (spec.id == "Azu") spec.max_chunk_size = 12 * kMB;
  }
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);
  const PlacementRequest request = ArchiveRequest();

  const PlacementDecision expected = exhaustive.FindBest(market, request);
  const PlacementDecision actual =
      solver.FindBestBranchAndBound(market, request);
  ASSERT_EQ(actual.feasible, expected.feasible);
  if (expected.feasible) {
    EXPECT_TRUE(actual.SamePlacement(expected));
    // If Azure is in the set, the chunk must fit its limit.
    for (const auto& member : actual.providers) {
      if (member.id == "Azu") {
        EXPECT_LE(common::CeilDiv(request.object_size,
                                  static_cast<common::Bytes>(actual.m)),
                  12 * kMB);
      }
    }
  }
}

TEST(SolverCapacityTest, InfeasibleCapacityReportedEverywhere) {
  auto market = provider::PaperCatalog();
  const PriceModel model;
  const PlacementSearch exhaustive(model);
  const SubsetSolver solver(model);
  PlacementRequest request = ArchiveRequest();
  // 5 providers, max chunk 40/5 = 8 MB, but nobody can store even 5 MB.
  request.free_capacity.assign(market.size(), 5 * kMB);
  EXPECT_FALSE(exhaustive.FindBest(market, request).feasible);
  EXPECT_FALSE(solver.FindBestBranchAndBound(market, request).feasible);
  EXPECT_FALSE(solver.FindBestFlexible(market, request).feasible);
}

}  // namespace
}  // namespace scalia::core
