// ShardedEngine: key-hash routing, facade semantics, per-shard durability
// and the optimizer-sweep-vs-writers race (the TSan suite).
#include "core/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "core/metadata.h"
#include "durability/sharded_manager.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

namespace fs = std::filesystem;

using common::kHour;

constexpr std::size_t kShards = 4;

/// A sharded engine over a durability directory.  The provider registry is
/// shared across incarnations (remote clouds survive a crash).
struct ShardedWorld {
  ShardedWorld(provider::ProviderRegistry* registry, const std::string& dir,
               std::size_t num_shards = kShards,
               common::ThreadPool* pool = nullptr) {
    ShardedEngineConfig config;
    config.num_shards = num_shards;
    engine = std::make_unique<ShardedEngine>(config, registry, pool);

    durability::ShardedDurabilityConfig durability_config;
    durability_config.dir = dir;
    durability_config.num_shards = num_shards;
    durability_config.wal.sync_on_commit = false;
    durability_config.group_commit = false;  // synchronous appends
    std::vector<durability::EngineStateRefs> state(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      state[s] = {.db = &engine->shard_store(s),
                  .dc = 0,
                  .stats = &engine->shard_stats(s),
                  .registry = nullptr,
                  .sweep_registry = registry};
    }
    auto opened = durability::ShardedDurabilityManager::Open(
        std::move(durability_config), std::move(state));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    if (opened.ok()) durability = std::move(*opened);
  }

  void RecoverAndAttach(common::SimTime now,
                        common::ThreadPool* pool = nullptr) {
    auto report = durability->Recover(now, pool);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    last_recovery = *report;
    engine->AttachJournals(durability->journals());
  }

  std::unique_ptr<ShardedEngine> engine;
  std::unique_ptr<durability::ShardedDurabilityManager> durability;
  durability::ShardedRecoveryReport last_recovery;
};

class ShardedEngineTest : public ::testing::Test {
 protected:
  ShardedEngineTest() {
    dir_ = (fs::path(::testing::TempDir()) /
            ("sharded_engine_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
  }
  ~ShardedEngineTest() override { fs::remove_all(dir_); }

  static std::string Payload(std::size_t size, char fill) {
    return std::string(size, fill);
  }

  std::string dir_;
  provider::ProviderRegistry registry_;
};

TEST_F(ShardedEngineTest, RoutingIsPureStableAndUniform) {
  // Golden values freeze the routing function: changing the hash (or adding
  // a process-local salt) would strand every persisted object in the wrong
  // shard after a restart, so a change here must come with a migration.
  EXPECT_EQ(ShardedEngine::ShardForRowKey(
                "0123456789abcdef0123456789abcdef", 8),
            5u);
  EXPECT_EQ(ShardedEngine::ShardForRowKey(
                "d41d8cd98f00b204e9800998ecf8427e", 8),
            4u);
  EXPECT_EQ(ShardedEngine::ShardForRowKey(
                "0123456789abcdef0123456789abcdef", 5),
            2u);
  EXPECT_EQ(ShardedEngine::ShardForRowKey(
                "d41d8cd98f00b204e9800998ecf8427e", 5),
            1u);
  // One shard routes everything to itself.
  EXPECT_EQ(ShardedEngine::ShardForRowKey("anything", 1), 0u);

  // Determinism + a loose uniformity bound over real row keys.
  std::vector<std::size_t> counts(8, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string row_key = MakeRowKey("bucket", "key" + std::to_string(i));
    const std::size_t shard = ShardedEngine::ShardForRowKey(row_key, 8);
    EXPECT_EQ(shard, ShardedEngine::ShardForRowKey(row_key, 8));
    ASSERT_LT(shard, 8u);
    ++counts[shard];
  }
  for (std::size_t shard = 0; shard < counts.size(); ++shard) {
    EXPECT_GT(counts[shard], 60u) << "shard " << shard << " starved";
    EXPECT_LT(counts[shard], 190u) << "shard " << shard << " overloaded";
  }
}

TEST_F(ShardedEngineTest, FacadeRoutesEachKeyToExactlyItsHashShard) {
  ShardedEngineConfig config;
  config.num_shards = kShards;
  ShardedEngine engine(config, &registry_, nullptr);

  for (int i = 0; i < 24; ++i) {
    const std::string key = "obj" + std::to_string(i);
    ASSERT_TRUE(
        engine.Put(0, "b", key, Payload(4096, static_cast<char>('a' + i % 26)),
                   "image/png")
            .ok());
    const std::string row_key = MakeRowKey("b", key);
    const std::size_t home = engine.ShardFor(row_key);
    for (std::size_t s = 0; s < engine.num_shards(); ++s) {
      EXPECT_EQ(engine.shard_stats(s).GetObject(row_key).has_value(),
                s == home)
          << key << " vs shard " << s;
    }
    // The facade reads it back through the same route.
    auto got = engine.Get(0, "b", key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), 4096u);
  }
  EXPECT_EQ(engine.ObjectCount(), 24u);

  // List fans out and merges sorted.
  auto keys = engine.List(0, "b");
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), 24u);
  EXPECT_TRUE(std::is_sorted(keys->begin(), keys->end()));

  // Delete routes home too; the other shards never heard of the key.
  ASSERT_TRUE(engine.Delete(kHour, "b", "obj0").ok());
  EXPECT_EQ(engine.Get(kHour, "b", "obj0").status().code(),
            common::StatusCode::kNotFound);
  EXPECT_EQ(engine.ObjectCount(), 23u);
}

TEST_F(ShardedEngineTest, MissingObjectIsNotFoundNotMisrouted) {
  ShardedEngineConfig config;
  config.num_shards = kShards;
  ShardedEngine engine(config, &registry_, nullptr);
  EXPECT_EQ(engine.Get(0, "b", "ghost").status().code(),
            common::StatusCode::kNotFound);
  EXPECT_EQ(engine.Delete(0, "b", "ghost").code(),
            common::StatusCode::kNotFound);
  auto keys = engine.List(0, "b");
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->empty());
}

TEST_F(ShardedEngineTest, AttachJournalsRejectsWrongCardinality) {
  ShardedEngineConfig config;
  config.num_shards = 2;
  ShardedEngine engine(config, &registry_, nullptr);
  EXPECT_THROW(engine.AttachJournals({}), std::invalid_argument);
  EXPECT_THROW(engine.AttachJournals({nullptr, nullptr, nullptr}),
               std::invalid_argument);
}

TEST_F(ShardedEngineTest, KeyRoutingIsStableAcrossRestart) {
  std::vector<std::pair<std::string, std::size_t>> homes;  // key -> shard
  {
    ShardedWorld world(&registry_, dir_);
    world.RecoverAndAttach(0);
    for (int i = 0; i < 16; ++i) {
      const std::string key = "obj" + std::to_string(i);
      ASSERT_TRUE(world.engine
                      ->Put(0, "b", key, Payload(8192, 'a'), "image/png")
                      .ok());
      homes.emplace_back(key,
                         world.engine->ShardFor(MakeRowKey("b", key)));
    }
    // Close a period so the access histories (which drive the adaptive
    // scheme) have an entry to survive the restart with.
    world.engine->EndSamplingPeriod(kHour / 2);
  }

  ShardedWorld world(&registry_, dir_);
  world.RecoverAndAttach(kHour);
  EXPECT_EQ(world.last_recovery.shards, kShards);
  // 16 upserts + 16 journaled period rows.
  EXPECT_EQ(world.last_recovery.records_replayed, 32u);
  EXPECT_EQ(world.last_recovery.records_wrong_shard, 0u);
  for (const auto& [key, home] : homes) {
    const std::string row_key = MakeRowKey("b", key);
    // Same shard as before the restart, and readable through the facade.
    EXPECT_EQ(world.engine->ShardFor(row_key), home) << key;
    EXPECT_TRUE(
        world.engine->shard_stats(home).GetObject(row_key).has_value())
        << key << " not in its pre-restart shard";
    auto got = world.engine->Get(kHour, "b", key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, Payload(8192, 'a'));
    // The journaled period row rebuilt the access history too.
    EXPECT_FALSE(world.engine->shard_stats(home).GetHistory(row_key).empty())
        << key << " lost its access history across the restart";
  }
}

/// Finds `count` keys routing to shard `target` (of `num_shards`).
std::vector<std::string> KeysForShard(std::size_t target,
                                      std::size_t num_shards,
                                      std::size_t count) {
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < count && i < 100000; ++i) {
    const std::string key = "probe" + std::to_string(i);
    if (ShardedEngine::ShardForRowKey(MakeRowKey("b", key), num_shards) ==
        target) {
      keys.push_back(key);
    }
  }
  return keys;
}

TEST_F(ShardedEngineTest, TornSegmentInOneShardIsContainedToThatShard) {
  // Three objects per shard; shard 2's WAL tail is torn mid-final-frame.
  std::vector<std::vector<std::string>> keys_by_shard;
  for (std::size_t s = 0; s < kShards; ++s) {
    keys_by_shard.push_back(KeysForShard(s, kShards, 3));
    ASSERT_EQ(keys_by_shard.back().size(), 3u);
  }
  {
    ShardedWorld world(&registry_, dir_);
    world.RecoverAndAttach(0);
    for (std::size_t s = 0; s < kShards; ++s) {
      for (const auto& key : keys_by_shard[s]) {
        ASSERT_TRUE(world.engine
                        ->Put(0, "b", key, Payload(8192, 'a'), "image/png")
                        .ok());
      }
    }
  }

  // Tear the tail off shard 2's (only) populated segment: drop 7 bytes,
  // enough to corrupt the final frame but none of the earlier ones.
  const fs::path wal_dir = fs::path(dir_) / "shard-2" / "wal";
  fs::path segment;
  for (const auto& entry : fs::directory_iterator(wal_dir)) {
    if (entry.path().extension() == ".seg" && entry.file_size() > 0) {
      segment = entry.path();
    }
  }
  ASSERT_FALSE(segment.empty());
  const auto full_size = fs::file_size(segment);
  fs::resize_file(segment, full_size - 7);

  ShardedWorld world(&registry_, dir_);
  world.RecoverAndAttach(kHour);
  const auto& report = world.last_recovery;
  // Shard 2 lost exactly its torn final record; every other shard is whole.
  EXPECT_EQ(report.records_replayed, kShards * 3u - 1);
  EXPECT_GT(report.per_shard[2].wal_bytes_discarded, 0u);
  EXPECT_EQ(report.per_shard[2].records_replayed, 2u);
  for (std::size_t s = 0; s < kShards; ++s) {
    if (s == 2) continue;
    EXPECT_EQ(report.per_shard[s].records_replayed, 3u) << "shard " << s;
    EXPECT_EQ(report.per_shard[s].wal_bytes_discarded, 0u) << "shard " << s;
    for (const auto& key : keys_by_shard[s]) {
      EXPECT_TRUE(world.engine->Get(kHour, "b", key).ok()) << key;
    }
  }
  // The two surviving shard-2 records are back; the torn third is gone.
  EXPECT_TRUE(world.engine->Get(kHour, "b", keys_by_shard[2][0]).ok());
  EXPECT_TRUE(world.engine->Get(kHour, "b", keys_by_shard[2][1]).ok());
  EXPECT_EQ(world.engine->Get(kHour, "b", keys_by_shard[2][2]).status().code(),
            common::StatusCode::kNotFound);
}

TEST_F(ShardedEngineTest, SegmentMovedToAnotherShardIsRefusedOnReplay) {
  // All traffic routes to shard 0's keys; shard 1 stays empty.  Moving
  // shard 0's segment into shard 1's stream must not resurrect the objects
  // there: every record names shard 0 in its header (format v3).
  const auto keys = KeysForShard(0, kShards, 3);
  ASSERT_EQ(keys.size(), 3u);
  {
    ShardedWorld world(&registry_, dir_);
    world.RecoverAndAttach(0);
    for (const auto& key : keys) {
      ASSERT_TRUE(world.engine
                      ->Put(0, "b", key, Payload(8192, 'a'), "image/png")
                      .ok());
    }
  }
  const fs::path from = fs::path(dir_) / "shard-0" / "wal";
  const fs::path to = fs::path(dir_) / "shard-1" / "wal";
  for (const auto& entry : fs::directory_iterator(from)) {
    if (entry.path().extension() == ".seg" && entry.file_size() > 0) {
      fs::rename(entry.path(), to / entry.path().filename());
    }
  }

  ShardedWorld world(&registry_, dir_);
  world.RecoverAndAttach(kHour);
  const auto& report = world.last_recovery;
  EXPECT_EQ(report.per_shard[1].records_wrong_shard, 3u);
  EXPECT_EQ(report.per_shard[1].records_replayed, 0u);
  EXPECT_EQ(report.records_replayed, 0u);  // shard 0's stream walked away
  for (const auto& key : keys) {
    // Not resurrected anywhere — neither in the foreign shard nor at home.
    EXPECT_EQ(world.engine->Get(kHour, "b", key).status().code(),
              common::StatusCode::kNotFound)
        << key;
    EXPECT_FALSE(world.engine->shard_stats(1)
                     .GetObject(MakeRowKey("b", key))
                     .has_value());
  }
}

// The TSan suite (scripts/verify.sh selects by the "Race" name): the
// periodic optimizer sweeps every shard in parallel on the pool while
// writer threads hammer the same keyspace through the facade.  No acked
// write may be lost and the sweep must finish without errors.
TEST(ShardedEngineRaceTest, OptimizerSweepRacesWritersAcrossShards) {
  provider::ProviderRegistry registry;
  for (auto& spec : provider::PaperCatalog()) {
    ASSERT_TRUE(registry.Register(std::move(spec)).ok());
  }
  common::ThreadPool pool(4);
  ShardedEngineConfig config;
  config.num_shards = 4;
  ShardedEngine engine(config, &registry, &pool);

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 6;
  constexpr int kIterations = 40;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> write_failures{0};

  auto key_name = [](int writer, int k) {
    return "w" + std::to_string(writer) + "-k" + std::to_string(k);
  };

  // Seed so the sweep has objects (and histories) to chew on immediately.
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      ASSERT_TRUE(
          engine.Put(0, "b", key_name(w, k), std::string(2048, '0'), "x/y")
              .ok());
    }
  }

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kIterations && !stop.load(); ++i) {
        const std::string key = key_name(w, i % kKeysPerWriter);
        const char fill = static_cast<char>('a' + i % 26);
        if (!engine.Put(i, "b", key, std::string(2048, fill), "x/y").ok()) {
          ++write_failures;
        }
        (void)engine.Get(i, "b", key);
      }
    });
  }

  // The maintenance loop, compressed: close periods and run the sweep
  // while the writers are live.
  for (int round = 0; round < 6; ++round) {
    engine.EndSamplingPeriod(round);
    const auto report = engine.RunOptimizationProcedure(round);
    EXPECT_EQ(report.errors, 0u) << "round " << round;
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_EQ(write_failures.load(), 0u);

  // Every acked write survived: each key reads back with some payload the
  // writer wrote last for that slot (closed-loop per key, so the final
  // value is the writer's last Put).
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      auto got = engine.Get(1000, "b", key_name(w, k));
      ASSERT_TRUE(got.ok())
          << key_name(w, k) << ": " << got.status().ToString();
      EXPECT_EQ(got->size(), 2048u);
    }
  }
}

}  // namespace
}  // namespace scalia::core
