#include "core/cluster.h"

#include <gtest/gtest.h>

#include "core/leader.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kHour;

TEST(LeaderElectionTest, SmallestAliveIdLeads) {
  LeaderElection election;
  election.RegisterMember("dc1-engine0");
  election.RegisterMember("dc0-engine1");
  election.RegisterMember("dc0-engine0");
  EXPECT_EQ(election.Leader(), "dc0-engine0");
  election.SetAlive("dc0-engine0", false);
  EXPECT_EQ(election.Leader(), "dc0-engine1");
  election.SetAlive("dc0-engine1", false);
  EXPECT_EQ(election.Leader(), "dc1-engine0");
  election.SetAlive("dc1-engine0", false);
  EXPECT_EQ(election.Leader(), std::nullopt);
  election.SetAlive("dc0-engine0", true);
  EXPECT_EQ(election.Leader(), "dc0-engine0");
}

TEST(LeaderElectionTest, AliveMembersListed) {
  LeaderElection election;
  election.RegisterMember("b");
  election.RegisterMember("a");
  election.SetAlive("b", false);
  EXPECT_EQ(election.AliveMembers(), (std::vector<std::string>{"a"}));
  EXPECT_TRUE(election.IsAlive("a"));
  EXPECT_FALSE(election.IsAlive("b"));
  EXPECT_FALSE(election.IsAlive("unknown"));
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    ClusterConfig config;
    config.num_datacenters = 2;
    config.engines_per_dc = 2;
    config.worker_threads = 2;
    config.engine.default_rule =
        StorageRule{.name = "default",
                    .durability = 0.99999,
                    .availability = 0.9999,
                    .allowed_zones = provider::ZoneSet::All(),
                    .lockin = 1.0,
                    .ttl_hint = std::nullopt};
    cluster_ = std::make_unique<ScaliaCluster>(config);
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(cluster_->registry().Register(std::move(spec)).ok());
    }
  }

  std::unique_ptr<ScaliaCluster> cluster_;
};

TEST_F(ClusterTest, AnyEngineServesAnyObject) {
  // Engines are stateless: write through one, read through every other.
  const std::string data(64 * common::kKB, 'd');
  ASSERT_TRUE(
      cluster_->EngineAt(0, 0).Put(0, "c", "k", data, "image/png").ok());
  cluster_->metadata_store().SyncAll();
  for (std::size_t dc = 0; dc < 2; ++dc) {
    for (std::size_t e = 0; e < 2; ++e) {
      auto got = cluster_->EngineAt(dc, e).Get(kHour, "c", "k");
      ASSERT_TRUE(got.ok()) << "dc" << dc << " engine" << e;
      EXPECT_EQ(*got, data);
    }
  }
}

TEST_F(ClusterTest, RouteRequestRoundRobins) {
  const std::string& first = cluster_->RouteRequest().id();
  const std::string& second = cluster_->RouteRequest().id();
  EXPECT_NE(first, second);
}

TEST_F(ClusterTest, SamplingPeriodBuildsHistories) {
  ASSERT_TRUE(cluster_->RouteRequest()
                  .Put(0, "c", "k", std::string(10 * common::kKB, 'x'),
                       "image/png")
                  .ok());
  const std::string row_key = MakeRowKey("c", "k");
  for (int period = 0; period < 3; ++period) {
    const auto now = static_cast<common::SimTime>(period + 1) * kHour;
    ASSERT_TRUE(cluster_->RouteRequest().Get(now, "c", "k").ok());
    cluster_->EndSamplingPeriod(now);
  }
  const auto history = cluster_->stats_db().GetHistory(row_key);
  EXPECT_EQ(history.size(), 3u);
  EXPECT_GE(history.Latest().ops, 1.0);
  EXPECT_GT(history.Latest().storage_gb, 0.0);
}

TEST_F(ClusterTest, OptimizationProcedureRunsViaLeader) {
  ASSERT_TRUE(cluster_->RouteRequest()
                  .Put(0, "c", "k", std::string(common::kMB, 'x'),
                       "video/mp4")
                  .ok());
  cluster_->metadata_store().SyncAll();
  // Generate read traffic over several periods so the trend gate fires.
  for (int period = 0; period < 5; ++period) {
    const auto now = static_cast<common::SimTime>(period + 1) * kHour;
    for (int r = 0; r < 20 * (period + 1); ++r) {
      ASSERT_TRUE(cluster_->RouteRequest().Get(now, "c", "k").ok());
    }
    cluster_->EndSamplingPeriod(now);
    const auto report = cluster_->RunOptimizationProcedure(now);
    EXPECT_EQ(report.leader, "dc0-engine0");
    EXPECT_GE(report.candidates, 1u);
  }
  EXPECT_GE(cluster_->optimizer().TrackedObjects(), 1u);
}

TEST_F(ClusterTest, DatacenterOutageFailsOverLeaderAndServes) {
  ASSERT_TRUE(cluster_->RouteRequest()
                  .Put(0, "c", "k", std::string(20 * common::kKB, 'x'),
                       "image/png")
                  .ok());
  cluster_->EndSamplingPeriod(kHour);
  cluster_->SetDatacenterUp(0, false);

  // Requests keep being served by DC 1 engines.
  auto& engine = cluster_->RouteRequest();
  EXPECT_EQ(engine.datacenter(), 1u);
  EXPECT_TRUE(engine.Get(2 * kHour, "c", "k").ok());

  // The optimizer leader moves to a DC-1 engine.
  const auto report = cluster_->RunOptimizationProcedure(2 * kHour);
  EXPECT_EQ(report.leader, "dc1-engine0");

  // Recovery restores the original leader.
  cluster_->SetDatacenterUp(0, true);
  cluster_->metadata_store().SyncAll();
  const auto report2 = cluster_->RunOptimizationProcedure(3 * kHour);
  EXPECT_EQ(report2.leader, "dc0-engine0");
}

TEST_F(ClusterTest, ConcurrentCrossDcWritesResolveToFreshest) {
  // Fig. 10: the same object written in both DCs before replication syncs.
  auto& e0 = cluster_->EngineAt(0, 0);
  auto& e1 = cluster_->EngineAt(1, 0);
  ASSERT_TRUE(e0.Put(10 * kHour, "c", "k", std::string(1000, 'A'),
                     "text/plain")
                  .ok());
  ASSERT_TRUE(e1.Put(11 * kHour, "c", "k", std::string(1000, 'B'),
                     "text/plain")
                  .ok());
  cluster_->metadata_store().SyncAll();

  // Reading through either DC resolves the conflict to the freshest write
  // and garbage-collects the loser's chunks.
  auto got = e0.Get(12 * kHour, "c", "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)[0], 'B');
  cluster_->metadata_store().SyncAll();
  auto got1 = e1.Get(13 * kHour, "c", "k");
  ASSERT_TRUE(got1.ok());
  EXPECT_EQ((*got1)[0], 'B');
}

TEST_F(ClusterTest, CacheInvalidationSpansDatacenters) {
  const std::string v1(30 * common::kKB, '1');
  const std::string v2(30 * common::kKB, '2');
  ASSERT_TRUE(
      cluster_->EngineAt(0, 0).Put(0, "c", "k", v1, "image/png").ok());
  cluster_->metadata_store().SyncAll();
  // Warm both DC caches.
  ASSERT_TRUE(cluster_->EngineAt(0, 0).Get(kHour, "c", "k").ok());
  ASSERT_TRUE(cluster_->EngineAt(1, 0).Get(kHour, "c", "k").ok());

  // An update through DC 0 must not leave DC 1 serving the stale copy.
  ASSERT_TRUE(
      cluster_->EngineAt(0, 0).Put(2 * kHour, "c", "k", v2, "image/png").ok());
  cluster_->metadata_store().SyncAll();
  auto got = cluster_->EngineAt(1, 0).Get(3 * kHour, "c", "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v2);
}

TEST_F(ClusterTest, CacheStatsAggregate) {
  ASSERT_TRUE(cluster_->RouteRequest()
                  .Put(0, "c", "k", std::string(1000, 'x'), "text/plain")
                  .ok());
  cluster_->metadata_store().SyncAll();
  ASSERT_TRUE(cluster_->RouteRequest().Get(kHour, "c", "k").ok());
  ASSERT_TRUE(cluster_->RouteRequest().Get(kHour, "c", "k").ok());
  const auto stats = cluster_->CacheStats();
  EXPECT_GE(stats.hits + stats.misses, 2u);
}

}  // namespace
}  // namespace scalia::core
