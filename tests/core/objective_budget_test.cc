#include <gtest/gtest.h>

#include "core/budget.h"
#include "core/placement.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

PlacementSearch Search() {
  return PlacementSearch(PriceModel(PriceModelConfig{
      .sampling_period = common::kHour,
      .billing = provider::StorageBillingMode::kPerPeriod}));
}

PlacementRequest BaseRequest() {
  PlacementRequest request;
  request.rule = StorageRule{.name = "t",
                             .durability = 0.99999,
                             .availability = 0.9999,
                             .allowed_zones = provider::ZoneSet::All(),
                             .lockin = 1.0,
                             .ttl_hint = std::nullopt};
  request.object_size = common::kMB;
  request.per_period.storage_gb = 0.001;
  request.per_period.reads = 20;
  request.per_period.ops = 20;
  request.per_period.bw_out_gb = 0.02;
  request.decision_periods = 24;
  return request;
}

TEST(LatencyObjectiveTest, DecisionCarriesExpectedLatency) {
  const auto decision =
      Search().FindBest(provider::PaperCatalog(), BaseRequest());
  ASSERT_TRUE(decision.feasible);
  EXPECT_GT(decision.expected_read_latency_ms, 0.0);
}

TEST(LatencyObjectiveTest, LatencyObjectiveNeverSlowerThanCostObjective) {
  PlacementRequest cost_request = BaseRequest();
  PlacementRequest latency_request = BaseRequest();
  latency_request.objective = PlacementObjective::kMinimizeLatency;
  const auto by_cost =
      Search().FindBest(provider::PaperCatalog(), cost_request);
  const auto by_latency =
      Search().FindBest(provider::PaperCatalog(), latency_request);
  ASSERT_TRUE(by_cost.feasible);
  ASSERT_TRUE(by_latency.feasible);
  EXPECT_LE(by_latency.expected_read_latency_ms,
            by_cost.expected_read_latency_ms);
  // And symmetrically, the cost objective is never more expensive.
  EXPECT_LE(by_cost.expected_cost.usd(), by_latency.expected_cost.usd());
}

TEST(LatencyObjectiveTest, PrefersFastProviders) {
  // Ggl (40 ms) and S3(h) (45 ms) are the fastest; a latency-optimal m=1
  // placement should avoid RS (80 ms) as a read source.
  PlacementRequest request = BaseRequest();
  request.objective = PlacementObjective::kMinimizeLatency;
  const auto decision =
      Search().FindBest(provider::PaperCatalog(), request);
  ASSERT_TRUE(decision.feasible);
  EXPECT_LE(decision.expected_read_latency_ms, 45.0);
}

TEST(LatencyObjectiveTest, CostCapBoundsTheLatencyHunt) {
  PlacementRequest request = BaseRequest();
  request.objective = PlacementObjective::kMinimizeLatency;
  request.cost_cap_factor = 1.05;  // at most 5 % dearer than optimal
  const auto capped = Search().FindBest(provider::PaperCatalog(), request);
  const auto cheapest =
      Search().FindBest(provider::PaperCatalog(), BaseRequest());
  ASSERT_TRUE(capped.feasible);
  EXPECT_LE(capped.expected_cost.usd(),
            cheapest.expected_cost.usd() * 1.05 + 1e-12);
  // The uncapped latency hunt is at least as fast as the capped one.
  request.cost_cap_factor = std::nullopt;
  const auto uncapped = Search().FindBest(provider::PaperCatalog(), request);
  EXPECT_LE(uncapped.expected_read_latency_ms,
            capped.expected_read_latency_ms);
}

TEST(RelaxRuleTest, LadderLoosensMonotonically) {
  StorageRule rule{.name = "strict",
                   .durability = 0.999999,
                   .availability = 0.9999,
                   .allowed_zones = provider::ZoneSet::All(),
                   .lockin = 0.25,
                   .ttl_hint = std::nullopt};
  const auto l0 = RelaxRule(rule, 0);
  const auto l1 = RelaxRule(rule, 1);
  const auto l2 = RelaxRule(rule, 2);
  const auto l3 = RelaxRule(rule, 3);
  EXPECT_DOUBLE_EQ(l0.lockin, 0.25);
  EXPECT_DOUBLE_EQ(l1.lockin, 1.0);
  EXPECT_DOUBLE_EQ(l1.availability, rule.availability);
  EXPECT_NEAR(l2.availability, 0.999, 1e-9);
  EXPECT_DOUBLE_EQ(l2.durability, rule.durability);
  EXPECT_NEAR(l3.durability, 0.99999, 1e-9);
}

TEST(BudgetGuardTest, GenerousBudgetKeepsStrictRule) {
  BudgetGuard guard(common::Money(1000.0), common::kHour);
  PlacementRequest request = BaseRequest();
  request.rule.lockin = 0.25;  // at least 4 providers
  const auto placed =
      guard.PlaceWithinBudget(Search(), provider::PaperCatalog(), request);
  ASSERT_TRUE(placed.decision.feasible);
  EXPECT_TRUE(placed.within_budget);
  EXPECT_EQ(placed.relaxation_level, 0);
  EXPECT_GE(placed.decision.providers.size(), 4u);
}

TEST(BudgetGuardTest, TightBudgetRelaxesLockin) {
  // A strict 4-provider spread is dearer than the relaxed 2-provider one;
  // pick a budget between the two projected monthly costs.
  const auto search = Search();
  PlacementRequest strict = BaseRequest();
  strict.rule.lockin = 0.25;
  const auto strict_decision =
      search.FindBest(provider::PaperCatalog(), strict);
  PlacementRequest loose = BaseRequest();
  const auto loose_decision = search.FindBest(provider::PaperCatalog(), loose);
  ASSERT_TRUE(strict_decision.feasible);
  ASSERT_TRUE(loose_decision.feasible);
  ASSERT_LT(loose_decision.expected_cost.usd(),
            strict_decision.expected_cost.usd());

  BudgetGuard probe(common::Money(0), common::kHour);
  const auto strict_monthly = probe.ProjectMonthly(strict_decision, 24);
  const auto loose_monthly = probe.ProjectMonthly(loose_decision, 24);
  const common::Money budget =
      (strict_monthly + loose_monthly) * 0.5;  // between the two

  BudgetGuard guard(budget, common::kHour);
  const auto placed =
      guard.PlaceWithinBudget(search, provider::PaperCatalog(), strict);
  ASSERT_TRUE(placed.decision.feasible);
  EXPECT_TRUE(placed.within_budget);
  EXPECT_GE(placed.relaxation_level, 1);
  EXPECT_LT(placed.decision.providers.size(),
            strict_decision.providers.size());
}

TEST(BudgetGuardTest, ImpossibleBudgetReportsOverrun) {
  BudgetGuard guard(common::Money(1e-9), common::kHour);
  const auto placed = guard.PlaceWithinBudget(
      Search(), provider::PaperCatalog(), BaseRequest());
  ASSERT_TRUE(placed.decision.feasible);  // best effort placement
  EXPECT_FALSE(placed.within_budget);     // but the owner must be told
}

}  // namespace
}  // namespace scalia::core
