#include <gtest/gtest.h>

#include "core/decision_period.h"
#include "core/migration.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

PlacementDecision FakeDecision(double cost_per_period, std::size_t periods) {
  PlacementDecision d;
  d.feasible = true;
  d.m = 1;
  d.expected_cost = common::Money(cost_per_period *
                                  static_cast<double>(periods));
  return d;
}

TEST(DecisionPeriodTest, FirstOptimizationRunsCoupling) {
  DecisionPeriodController ctl(
      DecisionPeriodConfig{.initial_periods = 24,
                           .min_periods = 1,
                           .max_periods = 200,
                           .max_coupling_interval = 64});
  std::vector<std::size_t> evaluated;
  // Cheapest per-period rate at 2D -> D doubles (T is 1 initially).
  const std::size_t d = ctl.OnOptimization(
      /*history=*/200, /*ttl=*/0, [&](std::size_t candidate) {
        evaluated.push_back(candidate);
        return FakeDecision(candidate == 48 ? 1.0 : 2.0, candidate);
      });
  EXPECT_EQ(d, 48u);
  EXPECT_EQ(evaluated, (std::vector<std::size_t>{12, 24, 48}));
  EXPECT_EQ(ctl.coupling_interval(), 1u);  // D changed -> T reset
}

TEST(DecisionPeriodTest, AdequateDoublesT) {
  DecisionPeriodController ctl(
      DecisionPeriodConfig{.initial_periods = 24,
                           .min_periods = 1,
                           .max_periods = 200,
                           .max_coupling_interval = 8});
  auto evaluate = [](std::size_t candidate) {
    // The incumbent D = 24 is always cheapest per period.
    return FakeDecision(candidate == 24 ? 1.0 : 5.0, candidate);
  };
  EXPECT_EQ(ctl.OnOptimization(200, 0, evaluate), 24u);
  EXPECT_EQ(ctl.coupling_interval(), 2u);
  // Next optimization is below T: no coupling.
  const std::size_t couplings = ctl.couplings_run();
  EXPECT_EQ(ctl.OnOptimization(200, 0, evaluate), 24u);
  EXPECT_EQ(ctl.couplings_run(), couplings);
  // Second call reaches T = 2: coupling runs, T doubles to 4.
  EXPECT_EQ(ctl.OnOptimization(200, 0, evaluate), 24u);
  EXPECT_EQ(ctl.coupling_interval(), 4u);
}

TEST(DecisionPeriodTest, TCappedAtMax) {
  DecisionPeriodController ctl(
      DecisionPeriodConfig{.initial_periods = 8,
                           .min_periods = 1,
                           .max_periods = 64,
                           .max_coupling_interval = 4});
  auto evaluate = [](std::size_t candidate) {
    return FakeDecision(candidate == 8 ? 1.0 : 3.0, candidate);
  };
  for (int i = 0; i < 40; ++i) ctl.OnOptimization(64, 0, evaluate);
  EXPECT_LE(ctl.coupling_interval(), 4u);
}

TEST(DecisionPeriodTest, CandidatesClampedByTtlAndHistory) {
  DecisionPeriodController ctl(
      DecisionPeriodConfig{.initial_periods = 24,
                           .min_periods = 1,
                           .max_periods = 200,
                           .max_coupling_interval = 64});
  std::vector<std::size_t> evaluated;
  // TTL of 10 periods: the paper bounds the search by min(TTL, |H|).
  ctl.OnOptimization(/*history=*/100, /*ttl=*/10, [&](std::size_t candidate) {
    evaluated.push_back(candidate);
    return FakeDecision(1.0, candidate);
  });
  for (std::size_t c : evaluated) EXPECT_LE(c, 10u);
}

TEST(DecisionPeriodTest, ForceCouplingTriggersImmediately) {
  DecisionPeriodController ctl(
      DecisionPeriodConfig{.initial_periods = 24,
                           .min_periods = 1,
                           .max_periods = 200,
                           .max_coupling_interval = 64});
  auto adequate = [](std::size_t candidate) {
    return FakeDecision(candidate == 24 ? 1.0 : 5.0, candidate);
  };
  ctl.OnOptimization(200, 0, adequate);  // T -> 2
  const std::size_t couplings = ctl.couplings_run();
  ctl.ForceCouplingNext();
  ctl.OnOptimization(200, 0, adequate);
  EXPECT_EQ(ctl.couplings_run(), couplings + 1);
}

TEST(DecisionPeriodTest, InfeasibleEvaluationsKeepCurrentD) {
  DecisionPeriodController ctl(
      DecisionPeriodConfig{.initial_periods = 24,
                           .min_periods = 1,
                           .max_periods = 200,
                           .max_coupling_interval = 64});
  const std::size_t d = ctl.OnOptimization(
      200, 0, [](std::size_t) { return PlacementDecision{}; });
  EXPECT_EQ(d, 24u);
}

// ---------------------------------------------------------------------------

std::vector<provider::ProviderSpec> Specs(
    const std::vector<std::string>& ids) {
  const auto catalog = provider::PaperCatalog();
  std::vector<provider::ProviderSpec> out;
  for (const auto& id : ids) out.push_back(*provider::FindSpec(catalog, id));
  return out;
}

MigrationPlanner Planner() {
  return MigrationPlanner(PriceModel(PriceModelConfig{
      .sampling_period = common::kHour,
      .billing = provider::StorageBillingMode::kPerPeriod}));
}

PlacementDecision Target(const std::vector<std::string>& ids, int m) {
  PlacementDecision d;
  d.feasible = true;
  d.providers = Specs(ids);
  d.m = m;
  return d;
}

TEST(MigrationTest, SamePlacementCostsNothing) {
  const auto current = Specs({"S3(h)", "S3(l)"});
  const auto assessment = Planner().CostOnly(
      current, 1, Target({"S3(h)", "S3(l)"}, 1), current, common::kMB);
  EXPECT_DOUBLE_EQ(assessment.migration_cost.usd(), 0.0);
  EXPECT_EQ(assessment.chunks_written, 0u);
  EXPECT_FALSE(assessment.worthwhile);
}

TEST(MigrationTest, SameStructureSwapWritesOnlyNewChunks) {
  // [S3(h), S3(l), Azu; m:2] -> [S3(h), Ggl, Azu; m:2]: the §IV-E repair —
  // one chunk rebuilt and written, one deferred delete.
  const auto current = Specs({"S3(h)", "S3(l)", "Azu"});
  const auto readable = Specs({"S3(h)", "Azu"});  // S3(l) is down
  const auto assessment = Planner().CostOnly(
      current, 2, Target({"S3(h)", "Ggl", "Azu"}, 2), readable,
      40 * common::kMB);
  EXPECT_FALSE(assessment.structure_changed);
  EXPECT_EQ(assessment.chunks_read, 2u);
  EXPECT_EQ(assessment.chunks_written, 1u);   // only Ggl
  EXPECT_EQ(assessment.chunks_deleted, 1u);   // only S3(l)
  // Cost: read 2 x 20 MB from S3(h)+Azu egress, write 20 MB to Ggl.
  const double chunk_gb = 0.02;
  const double expected = 2 * (0.15 * chunk_gb + 0.01 / 1000.0) +
                          (0.10 * chunk_gb + 0.01 / 1000.0) + 0.01 / 1000.0;
  EXPECT_NEAR(assessment.migration_cost.usd(), expected, 1e-12);
}

TEST(MigrationTest, StructureChangeRewritesEverything) {
  const auto current = Specs({"S3(h)", "S3(l)"});
  const auto assessment = Planner().CostOnly(
      current, 1, Target({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}, 4), current,
      common::kMB);
  EXPECT_TRUE(assessment.structure_changed);
  EXPECT_EQ(assessment.chunks_read, 1u);      // m = 1
  EXPECT_EQ(assessment.chunks_written, 5u);   // full re-encode
  EXPECT_EQ(assessment.chunks_deleted, 2u);   // both old chunks replaced
}

TEST(MigrationTest, BenefitGate) {
  const auto current = Specs({"S3(h)", "S3(l)"});
  stats::PeriodStats cold;
  cold.storage_gb = 0.001;
  const auto target = Target({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}, 4);

  // Over one period the storage saving cannot repay the chunk moves.
  const auto short_horizon =
      Planner().Assess(current, 1, target, current, common::kMB, cold, 1);
  EXPECT_FALSE(short_horizon.worthwhile);
  // Over a long horizon it does.
  const auto long_horizon =
      Planner().Assess(current, 1, target, current, common::kMB, cold, 2000);
  EXPECT_TRUE(long_horizon.worthwhile);
  EXPECT_GT(long_horizon.benefit, long_horizon.migration_cost);
}

TEST(MigrationTest, NegativeBenefitNeverWorthwhile) {
  // Moving a hot object from the read-optimal pair to the wide stripe.
  const auto current = Specs({"S3(h)", "S3(l)"});
  stats::PeriodStats hot;
  hot.storage_gb = 0.001;
  hot.reads = 150;
  hot.ops = 150;
  hot.bw_out_gb = 0.15;
  const auto target = Target({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}, 4);
  const auto assessment =
      Planner().Assess(current, 1, target, current, common::kMB, hot, 1000);
  EXPECT_FALSE(assessment.worthwhile);
  EXPECT_LT(assessment.benefit.usd(), 0.0);
}

}  // namespace
}  // namespace scalia::core
