// Economic monotonicity properties of the placement search.
//
// These are the invariants a broker's customers implicitly rely on: a
// bigger market can only help, a price drop can only help, and a stricter
// rule can only cost more.  Each property is swept over seeded random
// markets and both cold and hot usage profiles.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/placement.h"
#include "core/subset_solver.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kMB;

std::vector<provider::ProviderSpec> RandomMarket(std::size_t n,
                                                 std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  auto uniform = [&](double lo, double hi) {
    return lo + (hi - lo) * rng.NextDouble();
  };
  std::vector<provider::ProviderSpec> market;
  for (std::size_t i = 0; i < n; ++i) {
    provider::ProviderSpec spec;
    spec.id = "P" + std::to_string(i);
    spec.description = spec.id;
    spec.sla.durability = 1.0 - std::pow(10.0, -uniform(4.0, 10.0));
    spec.sla.availability = 1.0 - std::pow(10.0, -uniform(2.5, 4.0));
    spec.zones = provider::ZoneSet::All();
    spec.pricing = provider::PricingPolicy{
        .storage_gb_month = uniform(0.05, 0.2),
        .bw_in_gb = uniform(0.0, 0.12),
        .bw_out_gb = uniform(0.08, 0.2),
        .ops_per_1000 = uniform(0.0, 0.02)};
    market.push_back(std::move(spec));
  }
  return market;
}

PlacementRequest BaseRequest(bool hot) {
  PlacementRequest request;
  request.rule = StorageRule{.name = "prop",
                             .durability = 0.99999,
                             .availability = 0.999,
                             .allowed_zones = provider::ZoneSet::All(),
                             .lockin = 0.5,
                             .ttl_hint = std::nullopt};
  request.object_size = 5 * kMB;
  request.per_period.storage_gb = 0.005;
  if (hot) {
    request.per_period.reads = 80.0;
    request.per_period.bw_out_gb = 0.4;
    request.per_period.ops = 80.0;
  } else {
    request.per_period.writes = 1.0;
    request.per_period.bw_in_gb = 0.005;
    request.per_period.ops = 1.0;
  }
  request.decision_periods = 24;
  return request;
}

class PlacementPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const PlacementSearch search_{PriceModel{}};
};

TEST_P(PlacementPropertyTest, MarketGrowthNeverRaisesOptimalCost) {
  const std::uint64_t seed = GetParam();
  auto market = RandomMarket(5, seed);
  for (bool hot : {false, true}) {
    const PlacementRequest request = BaseRequest(hot);
    const PlacementDecision before = search_.FindBest(market, request);
    auto grown = market;
    auto extras = RandomMarket(2, seed ^ 0xfeedfaceULL);
    for (auto& e : extras) {
      e.id = "X" + e.id;
      grown.push_back(e);
    }
    const PlacementDecision after = search_.FindBest(grown, request);
    if (!before.feasible) continue;  // growth can only add feasibility
    ASSERT_TRUE(after.feasible);
    EXPECT_LE(after.expected_cost.usd(), before.expected_cost.usd() + 1e-9)
        << "hot=" << hot;
  }
}

TEST_P(PlacementPropertyTest, PriceDropNeverRaisesOptimalCost) {
  const std::uint64_t seed = GetParam();
  auto market = RandomMarket(5, seed * 3 + 1);
  for (bool hot : {false, true}) {
    const PlacementRequest request = BaseRequest(hot);
    const PlacementDecision before = search_.FindBest(market, request);
    if (!before.feasible) continue;
    // Halve every price of one provider (rotating with the seed).
    auto discounted = market;
    auto& lucky = discounted[seed % discounted.size()];
    lucky.pricing.storage_gb_month *= 0.5;
    lucky.pricing.bw_in_gb *= 0.5;
    lucky.pricing.bw_out_gb *= 0.5;
    lucky.pricing.ops_per_1000 *= 0.5;
    const PlacementDecision after = search_.FindBest(discounted, request);
    ASSERT_TRUE(after.feasible);
    EXPECT_LE(after.expected_cost.usd(), before.expected_cost.usd() + 1e-9)
        << "hot=" << hot;
  }
}

TEST_P(PlacementPropertyTest, StricterAvailabilityOrLockinNeverCheapens) {
  // Raising the availability floor or tightening the lock-in bound only
  // *removes* candidates from Algorithm 1's search (a set either passes at
  // its durability-maximal threshold or is skipped), so the optimum cannot
  // get cheaper.
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(6, seed * 7 + 5);
  for (bool hot : {false, true}) {
    const PlacementRequest loose = BaseRequest(hot);
    const PlacementDecision base = search_.FindBest(market, loose);
    if (!base.feasible) continue;
    {
      PlacementRequest tight = loose;
      tight.rule.availability =
          1.0 - (1.0 - tight.rule.availability) / 10.0;
      const PlacementDecision d = search_.FindBest(market, tight);
      if (d.feasible) {
        EXPECT_GE(d.expected_cost.usd(), base.expected_cost.usd() - 1e-9)
            << "availability, hot=" << hot;
      }
    }
    {
      PlacementRequest tight = loose;
      tight.rule.lockin = 0.25;  // at least four providers
      const PlacementDecision d = search_.FindBest(market, tight);
      if (d.feasible) {
        EXPECT_GE(d.expected_cost.usd(), base.expected_cost.usd() - 1e-9)
            << "lockin, hot=" << hot;
      }
    }
  }
}

TEST_P(PlacementPropertyTest, DurabilityMonotoneOnlyInTheFlexibleSpace) {
  // Durability is different: Algorithm 1 pins every set's threshold to the
  // durability-maximal m, so *raising* the durability floor pushes m down —
  // and for egress-heavy objects a smaller m is cheaper (fewer read ops,
  // reads concentrated on the cheapest members).  Algorithm 1's optimum is
  // therefore NOT monotone in the durability requirement.  The
  // threshold-flexible solver decouples m from the constraint, restoring
  // monotonicity: a stricter floor only removes (set, m) pairs.
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(6, seed * 7 + 5);
  const SubsetSolver solver{PriceModel{}};
  for (bool hot : {false, true}) {
    const PlacementRequest loose = BaseRequest(hot);
    PlacementRequest tight = loose;
    tight.rule.durability =
        1.0 - (1.0 - tight.rule.durability) / 100.0;  // two more nines

    const PlacementDecision flex_loose =
        solver.FindBestFlexible(market, loose);
    const PlacementDecision flex_tight =
        solver.FindBestFlexible(market, tight);
    if (!flex_loose.feasible || !flex_tight.feasible) continue;
    EXPECT_GE(flex_tight.expected_cost.usd(),
              flex_loose.expected_cost.usd() - 1e-9)
        << "hot=" << hot;

    // And the flexible optimum dominates Algorithm 1 under either rule.
    const PlacementDecision alg1 = search_.FindBest(market, tight);
    if (alg1.feasible) {
      EXPECT_LE(flex_tight.expected_cost.usd(),
                alg1.expected_cost.usd() + 1e-9);
    }
  }
}

TEST_P(PlacementPropertyTest, ExpectedCostLinearInDecisionPeriods) {
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(5, seed * 11 + 3);
  PlacementRequest request = BaseRequest(true);
  request.decision_periods = 6;
  const PlacementDecision d6 = search_.FindBest(market, request);
  if (!d6.feasible) return;
  request.decision_periods = 18;
  const PlacementDecision d18 =
      search_.EvaluateSet(d6.providers, request);
  ASSERT_TRUE(d18.feasible);
  EXPECT_NEAR(d18.expected_cost.usd(), 3.0 * d6.expected_cost.usd(), 1e-9);
}

TEST_P(PlacementPropertyTest, GreedyAndDecisionInvariants) {
  const std::uint64_t seed = GetParam();
  const auto market = RandomMarket(6, seed * 13 + 11);
  for (bool hot : {false, true}) {
    const PlacementRequest request = BaseRequest(hot);
    const PlacementDecision exact = search_.FindBest(market, request);
    const PlacementDecision greedy = search_.FindBestGreedy(market, request);
    if (!exact.feasible) {
      EXPECT_FALSE(greedy.feasible);
      continue;
    }
    if (!greedy.feasible) continue;  // greedy may miss; it must not invent
    // The greedy result is a real evaluated subset: re-evaluating it yields
    // the same decision, and it cannot undercut the optimum.
    const PlacementDecision recheck =
        search_.EvaluateSet(greedy.providers, request);
    ASSERT_TRUE(recheck.feasible);
    EXPECT_EQ(recheck.m, greedy.m);
    EXPECT_NEAR(recheck.expected_cost.usd(), greedy.expected_cost.usd(),
                1e-9);
    EXPECT_GE(greedy.expected_cost.usd(), exact.expected_cost.usd() - 1e-9);
    // Feasible decisions respect the rule's lock-in bound.
    EXPECT_GE(greedy.providers.size(), request.rule.MinProviders());
    EXPECT_GE(greedy.m, 1);
    EXPECT_LE(static_cast<std::size_t>(greedy.m), greedy.providers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           std::string name = "seed";
                           name += std::to_string(i.param);
                           return name;
                         });

}  // namespace
}  // namespace scalia::core
