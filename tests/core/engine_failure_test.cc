// Failure injection on the engine's client-facing paths (§III-D.3).
//
// The engine_test file covers single-provider faults; these tests push
// harder: total market outage, outage-through-cache serving, and metadata
// hygiene after failed writes.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::kHour;

class EngineFailureTest : public ::testing::Test {
 protected:
  EngineFailureTest()
      : db_(1),
        stats_db_(&db_, 0),
        cache_(16 * common::kMiB, nullptr),
        agent_(&aggregator_),
        pool_(2) {
    for (auto& spec : provider::PaperCatalog()) {
      EXPECT_TRUE(registry_.Register(std::move(spec)).ok());
    }
    EngineConfig config;
    config.default_rule = StorageRule{.name = "default",
                                      .durability = 0.999999,
                                      .availability = 0.9999,
                                      .allowed_zones =
                                          provider::ZoneSet::All(),
                                      .lockin = 1.0,
                                      .ttl_hint = std::nullopt};
    engine_ = std::make_unique<Engine>("e0", &registry_, &db_, 0, &cache_,
                                       &stats_db_, &agent_, &pool_, config,
                                       /*seed=*/11);
  }

  void OutageEverywhere(common::SimTime from, common::SimTime to) {
    for (const auto& spec : provider::PaperCatalog()) {
      registry_.Find(spec.id)->failures().AddOutage(from, to);
    }
  }

  provider::ProviderRegistry registry_;
  store::ReplicatedStore db_;
  stats::StatsDb stats_db_;
  cache::CacheLayer cache_;
  stats::LogAggregator aggregator_;
  stats::LogAgent agent_;
  common::ThreadPool pool_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineFailureTest, PutFailsCleanlyWhenAllProvidersDown) {
  OutageEverywhere(0, 10 * kHour);
  const auto status =
      engine_->Put(kHour, "b", "doomed", std::string(100 * common::kKB, 'x'),
                   "image/png");
  ASSERT_FALSE(status.ok());
  // No metadata ghost: the key neither reads back nor lists.
  EXPECT_FALSE(engine_->Get(kHour, "b", "doomed").ok());
  auto keys = engine_->List(kHour, "b");
  if (keys.ok()) {
    EXPECT_TRUE(std::find(keys->begin(), keys->end(), "doomed") ==
                keys->end());
  }
}

TEST_F(EngineFailureTest, CacheServesThroughTotalOutage) {
  const std::string data(200 * common::kKB, 'c');
  ASSERT_TRUE(engine_->Put(0, "b", "obj", data, "image/png").ok());
  // Prime the cache.
  ASSERT_TRUE(engine_->Get(kHour, "b", "obj").ok());

  OutageEverywhere(2 * kHour, 20 * kHour);
  // Every provider is dark, yet the read is served (from the cache).
  auto got = engine_->Get(3 * kHour, "b", "obj");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, data);
}

TEST_F(EngineFailureTest, UncachedReadFailsDuringTotalOutage) {
  const std::string data(200 * common::kKB, 'd');
  ASSERT_TRUE(engine_->Put(0, "b", "obj", data, "image/png").ok());
  cache_.cache().Clear();
  OutageEverywhere(kHour, 20 * kHour);
  const auto got = engine_->Get(2 * kHour, "b", "obj");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), common::StatusCode::kUnavailable);
  // After recovery, the same read works again.
  auto recovered = engine_->Get(21 * kHour, "b", "obj");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, data);
}

TEST_F(EngineFailureTest, RepeatedFailuresLeaveNoDanglingPendingDeletes) {
  const std::string data(150 * common::kKB, 'e');
  ASSERT_TRUE(engine_->Put(0, "b", "obj", data, "image/png").ok());
  auto meta = engine_->LoadMetadata(0, MakeRowKey("b", "obj"));
  ASSERT_TRUE(meta.ok());

  // Take one stripe member down, delete the object: that chunk's deletion
  // defers; everything else flushes immediately.
  const auto faulty = meta->stripes.front().provider;
  registry_.Find(faulty)->failures().AddOutage(kHour, 5 * kHour);
  ASSERT_TRUE(engine_->Delete(2 * kHour, "b", "obj").ok());
  EXPECT_GT(engine_->PendingDeleteCount(), 0u);

  // Before recovery, processing flushes nothing.
  EXPECT_EQ(engine_->ProcessPendingDeletes(3 * kHour), 0u);
  // After recovery, the deferred chunk is reaped and the queue drains.
  EXPECT_GT(engine_->ProcessPendingDeletes(6 * kHour), 0u);
  EXPECT_EQ(engine_->PendingDeleteCount(), 0u);
  // The chunk blob is actually gone from the recovered provider.
  EXPECT_FALSE(
      registry_.Find(faulty)
          ->Get(6 * kHour, meta->ChunkKey(meta->stripes.front().chunk_index))
          .ok());
}

TEST_F(EngineFailureTest, WriteDuringPartialOutageAvoidsDownProviders) {
  registry_.Find("S3(h)")->failures().AddOutage(0, 10 * kHour);
  registry_.Find("Ggl")->failures().AddOutage(0, 10 * kHour);
  ASSERT_TRUE(engine_
                  ->Put(kHour, "b", "obj",
                        std::string(100 * common::kKB, 'f'), "image/png")
                  .ok());
  auto meta = engine_->LoadMetadata(kHour, MakeRowKey("b", "obj"));
  ASSERT_TRUE(meta.ok());
  for (const auto& stripe : meta->stripes) {
    EXPECT_NE(stripe.provider, "S3(h)");
    EXPECT_NE(stripe.provider, "Ggl");
  }
  // And the write is durable: readable after the outage ends too.
  EXPECT_TRUE(engine_->Get(11 * kHour, "b", "obj").ok());
}

}  // namespace
}  // namespace scalia::core
