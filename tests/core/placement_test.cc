#include "core/placement.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

using common::literals::operator""_MB;

std::vector<provider::ProviderSpec> Catalog() {
  return provider::PaperCatalog();
}

PlacementSearch Search() {
  return PlacementSearch(PriceModel(PriceModelConfig{
      .sampling_period = common::kHour,
      .billing = provider::StorageBillingMode::kPerPeriod}));
}

PlacementRequest SlashdotRequest() {
  PlacementRequest request;
  request.rule = StorageRule{.name = "slashdot",
                             .durability = 0.99999,
                             .availability = 0.9999,
                             .allowed_zones = provider::ZoneSet::All(),
                             .lockin = 1.0,
                             .ttl_hint = std::nullopt};
  request.object_size = 1_MB;
  request.per_period.storage_gb = 0.001;
  request.decision_periods = 24;
  return request;
}

TEST(PlacementTest, ColdObjectGetsAllFiveM4) {
  // §IV-B: after the flash crowd, Scalia chooses [all five; m:4].
  const auto decision = Search().FindBest(Catalog(), SlashdotRequest());
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.providers.size(), 5u);
  EXPECT_EQ(decision.m, 4);
}

TEST(PlacementTest, HotObjectGetsS3PairM1) {
  // §IV-B: during the peak, [S3(h), S3(l); m:1] is cheapest.
  PlacementRequest request = SlashdotRequest();
  request.per_period.reads = 150;
  request.per_period.ops = 150;
  request.per_period.bw_out_gb = 0.15;
  const auto decision = Search().FindBest(Catalog(), request);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.Label(), "S3(h)-S3(l); m:1");
}

TEST(PlacementTest, WriteHeavyForecastPrefersRackspaceSet) {
  // §IV-B: before the crowd (forecast dominated by the initial write),
  // Scalia used [S3(h), S3(l), Azu, RS; m:3] — RS has cheap ingress and
  // free operations.
  PlacementRequest request = SlashdotRequest();
  request.per_period.writes = 1;
  request.per_period.ops = 1;
  request.per_period.bw_in_gb = 0.001;
  const auto decision = Search().FindBest(Catalog(), request);
  ASSERT_TRUE(decision.feasible);
  const auto ids = decision.ProviderIds();
  EXPECT_EQ(ids, (std::vector<provider::ProviderId>{"Azu", "RS", "S3(h)",
                                                    "S3(l)"}));
  EXPECT_EQ(decision.m, 3);
}

TEST(PlacementTest, AvailabilityRequiresTwoProviders) {
  // §IV-B: "the availability constraint requires at least 2 providers" —
  // no single-provider set may win.
  const auto decision = Search().FindBest(Catalog(), SlashdotRequest());
  ASSERT_TRUE(decision.feasible);
  EXPECT_GE(decision.providers.size(), 2u);
  // Verify directly: every singleton is infeasible.
  for (const auto& spec : Catalog()) {
    const auto single = Search().EvaluateSet(
        std::vector<provider::ProviderSpec>{spec}, SlashdotRequest());
    EXPECT_FALSE(single.feasible) << spec.id;
  }
}

TEST(PlacementTest, LockinBoundsMinimumProviders) {
  PlacementRequest request = SlashdotRequest();
  request.rule.lockin = 0.3;  // 1/N <= 0.3 -> N >= 4
  const auto decision = Search().FindBest(Catalog(), request);
  ASSERT_TRUE(decision.feasible);
  EXPECT_GE(decision.providers.size(), 4u);
  // A 3-provider set must be rejected on lock-in alone.
  const auto catalog = Catalog();
  std::vector<provider::ProviderSpec> three(catalog.begin(),
                                            catalog.begin() + 3);
  EXPECT_FALSE(Search().EvaluateSet(three, request).feasible);
}

TEST(PlacementTest, ZoneEligibilityFiltersProviders) {
  PlacementRequest request = SlashdotRequest();
  request.rule.allowed_zones = {provider::Zone::kEU};
  // Only the two S3 offerings operate in the EU (Fig. 3).
  const auto decision = Search().FindBest(Catalog(), request);
  ASSERT_TRUE(decision.feasible);
  EXPECT_EQ(decision.ProviderIds(),
            (std::vector<provider::ProviderId>{"S3(h)", "S3(l)"}));
}

TEST(PlacementTest, DurabilityDrivesThreshold) {
  PlacementRequest request = SlashdotRequest();
  request.rule.durability = 0.999999;  // 6 nines
  const auto decision = Search().FindBest(Catalog(), request);
  ASSERT_TRUE(decision.feasible);
  // All-five still feasible but with m = 4 (one tolerated failure).
  EXPECT_EQ(decision.m, static_cast<int>(decision.providers.size()) - 1);
}

TEST(PlacementTest, ImpossibleDurabilityInfeasible) {
  PlacementRequest request = SlashdotRequest();
  request.rule.durability = 1.0;  // no finite set reaches certainty
  const auto decision = Search().FindBest(Catalog(), request);
  EXPECT_FALSE(decision.feasible);
}

TEST(PlacementTest, MaxChunkSizeExcludesConstrainedProvider) {
  // §III-A.2: inclusion (smaller chunks) vs exclusion of a constraining
  // provider are both evaluated — here the constraint is unsatisfiable for
  // the constrained provider at any feasible m, so it must be excluded.
  auto catalog = Catalog();
  for (auto& spec : catalog) {
    if (spec.id == "S3(l)") spec.max_chunk_size = 100;  // 100 bytes
  }
  // Six-nines durability keeps S3(l)-free sets feasible (their threshold
  // drops below n, so the availability check can pass).
  PlacementRequest request = SlashdotRequest();
  request.rule.durability = 0.999999;
  const auto decision = Search().FindBest(catalog, request);
  ASSERT_TRUE(decision.feasible);
  for (const auto& p : decision.providers) {
    EXPECT_NE(p.id, "S3(l)");
  }
}

TEST(PlacementTest, CapacityExcludesFullProvider) {
  PlacementRequest request = SlashdotRequest();
  request.free_capacity = {/*S3h*/ 100, /*S3l*/ 1_MB, /*RS*/ 1_MB,
                           /*Azu*/ 1_MB, /*Ggl*/ 1_MB};
  const auto decision = Search().FindBest(Catalog(), request);
  ASSERT_TRUE(decision.feasible);
  for (const auto& p : decision.providers) {
    EXPECT_NE(p.id, "S3(h)") << "full provider must be excluded";
  }
}

TEST(PlacementTest, ReduceMForAvailabilityFallback) {
  // [S3(h), Azu] with m = 2 fails 99.99 % availability (0.999^2); the
  // static-baseline fallback lowers m to 1.
  const auto catalog = Catalog();
  std::vector<provider::ProviderSpec> pair = {
      *provider::FindSpec(catalog, "S3(h)"),
      *provider::FindSpec(catalog, "Azu")};
  PlacementRequest request = SlashdotRequest();
  const auto strict = Search().EvaluateSet(pair, request);
  EXPECT_FALSE(strict.feasible);
  const auto relaxed = Search().EvaluateSet(pair, request, {}, true);
  ASSERT_TRUE(relaxed.feasible);
  EXPECT_EQ(relaxed.m, 1);
}

TEST(PlacementTest, BetterPrefersCheaperThenLargerM) {
  PlacementDecision cheap;
  cheap.feasible = true;
  cheap.expected_cost = common::Money(1.0);
  cheap.m = 1;
  PlacementDecision expensive = cheap;
  expensive.expected_cost = common::Money(2.0);
  EXPECT_TRUE(PlacementSearch::Better(cheap, expensive));
  EXPECT_FALSE(PlacementSearch::Better(expensive, cheap));

  PlacementDecision same_cost_higher_m = cheap;
  same_cost_higher_m.m = 3;
  EXPECT_TRUE(PlacementSearch::Better(same_cost_higher_m, cheap));

  PlacementDecision infeasible;
  EXPECT_TRUE(PlacementSearch::Better(cheap, infeasible));
  EXPECT_FALSE(PlacementSearch::Better(infeasible, cheap));
}

TEST(PlacementTest, SearchCountsSets) {
  const auto decision = Search().FindBest(Catalog(), SlashdotRequest());
  EXPECT_EQ(decision.sets_evaluated, 31u);  // 2^5 - 1
  EXPECT_GT(decision.sets_feasible, 0u);
  EXPECT_LT(decision.sets_feasible, 31u);
}

TEST(PlacementTest, GreedyMatchesExactOnPaperCatalog) {
  for (double reads : {0.0, 5.0, 50.0, 150.0}) {
    PlacementRequest request = SlashdotRequest();
    request.per_period.reads = reads;
    request.per_period.ops = reads;
    request.per_period.bw_out_gb = reads * 0.001;
    const auto exact = Search().FindBest(Catalog(), request);
    const auto greedy = Search().FindBestGreedy(Catalog(), request);
    ASSERT_TRUE(exact.feasible);
    ASSERT_TRUE(greedy.feasible);
    // Greedy is a heuristic: it must be feasible and within 10 % of exact
    // on this small market (it is in fact optimal here for most loads).
    EXPECT_LE(greedy.expected_cost.usd(),
              exact.expected_cost.usd() * 1.10 + 1e-12)
        << "reads=" << reads;
  }
}

class GreedyGapTest : public ::testing::TestWithParam<std::uint64_t> {};

// Property sweep: on random markets the greedy heuristic always returns a
// feasible decision whenever the exact search finds one, and never beats
// the optimum.
TEST_P(GreedyGapTest, FeasibleAndNeverBelowOptimum) {
  common::Xoshiro256 rng(GetParam());
  std::vector<provider::ProviderSpec> market;
  const std::uint64_t n = 4 + rng.NextBounded(5);
  for (std::uint64_t i = 0; i < n; ++i) {
    provider::ProviderSpec spec;
    spec.id = "P" + std::to_string(i);
    spec.sla.durability = 1.0 - rng.NextUniform(1e-9, 1e-4);
    spec.sla.availability = 1.0 - rng.NextUniform(1e-4, 1e-3);
    spec.zones = provider::ZoneSet::All();
    spec.pricing.storage_gb_month = rng.NextUniform(0.08, 0.2);
    spec.pricing.bw_in_gb = rng.NextUniform(0.05, 0.12);
    spec.pricing.bw_out_gb = rng.NextUniform(0.1, 0.2);
    spec.pricing.ops_per_1000 = rng.NextUniform(0.0, 0.02);
    market.push_back(std::move(spec));
  }
  PlacementRequest request = SlashdotRequest();
  request.per_period.reads = rng.NextUniform(0.0, 100.0);
  request.per_period.bw_out_gb = request.per_period.reads * 0.001;
  request.per_period.ops = request.per_period.reads;

  const auto exact = Search().FindBest(market, request);
  const auto greedy = Search().FindBestGreedy(market, request);
  if (exact.feasible) {
    ASSERT_TRUE(greedy.feasible);
    EXPECT_GE(greedy.expected_cost.usd(),
              exact.expected_cost.usd() - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Markets, GreedyGapTest,
                         ::testing::Range<std::uint64_t>(100, 120));

TEST(PlacementTest, LabelFormat) {
  PlacementDecision d;
  EXPECT_EQ(d.Label(), "(none); m:0");
  d.providers = {*provider::FindSpec(Catalog(), "S3(h)"),
                 *provider::FindSpec(Catalog(), "RS")};
  d.m = 2;
  EXPECT_EQ(d.Label(), "S3(h)-RS; m:2");
}

TEST(PlacementTest, SamePlacementIgnoresOrder) {
  const auto catalog = Catalog();
  PlacementDecision a, b;
  a.m = b.m = 2;
  a.providers = {*provider::FindSpec(catalog, "S3(h)"),
                 *provider::FindSpec(catalog, "RS")};
  b.providers = {*provider::FindSpec(catalog, "RS"),
                 *provider::FindSpec(catalog, "S3(h)")};
  EXPECT_TRUE(a.SamePlacement(b));
  b.m = 1;
  EXPECT_FALSE(a.SamePlacement(b));
}

TEST(PlacementTest, EmptyMarketInfeasible) {
  const auto decision = Search().FindBest({}, SlashdotRequest());
  EXPECT_FALSE(decision.feasible);
}

}  // namespace
}  // namespace scalia::core
