#include "core/reliability.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "provider/spec.h"

namespace scalia::core {
namespace {

std::vector<double> CatalogDurabilities(
    const std::vector<std::string>& ids) {
  const auto catalog = provider::PaperCatalog();
  std::vector<double> out;
  for (const auto& id : ids) {
    out.push_back(provider::FindSpec(catalog, id)->sla.durability);
  }
  return out;
}

TEST(PoissonBinomialTest, PmfSumsToOne) {
  const std::vector<double> p = {0.1, 0.5, 0.9, 0.3};
  const auto pmf = PoissonBinomialPmf(p);
  ASSERT_EQ(pmf.size(), 5u);
  EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-12);
}

TEST(PoissonBinomialTest, MatchesBinomialForEqualProbabilities) {
  const std::vector<double> p(4, 0.5);
  const auto pmf = PoissonBinomialPmf(p);
  // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(pmf[0], 1.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[1], 4.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[2], 6.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[3], 4.0 / 16, 1e-12);
  EXPECT_NEAR(pmf[4], 1.0 / 16, 1e-12);
}

TEST(PoissonBinomialTest, DegenerateCases) {
  EXPECT_EQ(PoissonBinomialPmf({}).size(), 1u);
  const std::vector<double> ones = {1.0, 1.0};
  const auto certain = PoissonBinomialPmf(ones);
  EXPECT_NEAR(certain[2], 1.0, 1e-12);
  const std::vector<double> zeros = {0.0, 0.0};
  const auto never = PoissonBinomialPmf(zeros);
  EXPECT_NEAR(never[0], 1.0, 1e-12);
}

TEST(GetThresholdTest, SingleHighDurabilityProvider) {
  // One provider at 6 nines satisfies 99.99 % alone with m = 1.
  EXPECT_EQ(GetThreshold(std::vector<double>{0.999999}, 0.9999), 1);
  // But cannot satisfy a requirement above its own durability.
  EXPECT_EQ(GetThreshold(std::vector<double>{0.999999}, 0.9999999), 0);
}

TEST(GetThresholdTest, PaperSlashdotSets) {
  // Durability 99.999 % (§IV-B).  [S3(h), S3(l)]: P(no failure) ~ 0.9999 <
  // target, P(<=1 failure) ~ 1 -> threshold m = 1.
  EXPECT_EQ(GetThreshold(CatalogDurabilities({"S3(h)", "S3(l)"}), 0.99999), 1);
  // All five: one tolerated failure suffices -> m = 4.
  EXPECT_EQ(GetThreshold(
                CatalogDurabilities({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}),
                0.99999),
            4);
  // [S3(h), S3(l), Azu, RS]: m = 3 (the paper's pre-crowd placement).
  EXPECT_EQ(GetThreshold(CatalogDurabilities({"S3(h)", "S3(l)", "Azu", "RS"}),
                         0.99999),
            3);
}

TEST(GetThresholdTest, PaperBackupSets) {
  // Durability 99.9999 % (§IV-E): 2-provider sets degrade to m = 1 ...
  EXPECT_EQ(GetThreshold(CatalogDurabilities({"S3(h)", "Azu"}), 0.999999), 1);
  // ... 3-provider sets support m = 2 ...
  EXPECT_EQ(GetThreshold(CatalogDurabilities({"S3(h)", "S3(l)", "Azu"}),
                         0.999999),
            2);
  // ... and the full five m = 4, matching §IV-D.
  EXPECT_EQ(GetThreshold(
                CatalogDurabilities({"S3(h)", "S3(l)", "RS", "Azu", "Ggl"}),
                0.999999),
            4);
}

TEST(GetThresholdTest, EmptySetInfeasible) {
  EXPECT_EQ(GetThreshold({}, 0.9), 0);
}

class ThresholdEquivalenceTest : public ::testing::TestWithParam<int> {};

// Property: the O(n^2) Poisson-binomial DP computes exactly what the
// paper's combinatorial Algorithm 2 computes, for random provider sets and
// random durability targets.
TEST_P(ThresholdEquivalenceTest, DpMatchesCombinatorial) {
  common::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const auto n = 1 + rng.NextBounded(8);
    std::vector<double> durabilities;
    for (std::uint64_t i = 0; i < n; ++i) {
      // Mix of realistic (many-nines) and sloppy durabilities.
      durabilities.push_back(rng.NextDouble() < 0.5
                                 ? 1.0 - rng.NextUniform(1e-11, 1e-4)
                                 : rng.NextUniform(0.9, 0.9999));
    }
    const double required = rng.NextUniform(0.9, 0.9999999);
    EXPECT_EQ(GetThreshold(durabilities, required),
              GetThresholdCombinatorial(durabilities, required))
        << "n=" << n << " required=" << required;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdEquivalenceTest,
                         ::testing::Range(1, 9));

TEST(GetAvailabilityTest, PaperValues) {
  const auto catalog = provider::PaperCatalog();
  std::vector<double> avail5;
  for (const auto& spec : catalog) avail5.push_back(spec.sla.availability);
  // All five at 99.9 %, m = 4: availability ~ 99.999 % (>= 99.99 %).
  const double av = GetAvailability(avail5, 4);
  EXPECT_GT(av, 0.9999);
  EXPECT_LT(av, 0.999999);
  // Single provider at 99.9 % fails a 99.99 % requirement.
  EXPECT_LT(GetAvailability(std::vector<double>{0.999}, 1), 0.9999);
  // Two at 99.9 %, m = 1: 1 - 1e-6.
  EXPECT_NEAR(GetAvailability(std::vector<double>{0.999, 0.999}, 1),
              1.0 - 1e-6, 1e-12);
}

TEST(GetAvailabilityTest, MonotoneInThreshold) {
  const std::vector<double> avail(5, 0.99);
  double prev = 1.0;
  for (int m = 0; m <= 5; ++m) {
    const double av = ProbAtLeastKUp(avail, m);
    EXPECT_LE(av, prev + 1e-15) << "m=" << m;
    prev = av;
  }
  EXPECT_DOUBLE_EQ(ProbAtLeastKUp(avail, 0), 1.0);
  EXPECT_DOUBLE_EQ(ProbAtLeastKUp(avail, 6), 0.0);
}

TEST(GetAvailabilityTest, ExactSmallCase) {
  // Two providers p1 = 0.9, p2 = 0.8.
  const std::vector<double> p = {0.9, 0.8};
  EXPECT_NEAR(ProbAtLeastKUp(p, 2), 0.72, 1e-12);
  EXPECT_NEAR(ProbAtLeastKUp(p, 1), 0.98, 1e-12);
}

}  // namespace
}  // namespace scalia::core
