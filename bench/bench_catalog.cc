// Reproduces the tabular artifacts of the paper:
//   Fig. 2  — example storage rules,
//   Fig. 3  — the provider catalog (SLA + pricing),
//   Fig. 13 — the 26 static provider sets + Scalia.
// These are configuration tables; printing them from the library verifies
// the catalog constants and the Fig. 13 enumeration order.
#include <cstdio>

#include "core/rule.h"
#include "provider/spec.h"
#include "simx/overcost.h"
#include "simx/static_sets.h"

int main() {
  using namespace scalia;

  std::printf("==== Fig. 2: storage rules ====\n");
  std::printf("  %-8s %-14s %-10s %-12s %-8s\n", "Name", "Durability",
              "Avail.", "Zones", "Lock-in");
  for (const auto& rule : core::PaperRules()) {
    std::printf("  %-8s %-14.10g %-10.6g %-12s %-8.2f (min %zu providers)\n",
                rule.name.c_str(), rule.durability * 100.0,
                rule.availability * 100.0,
                rule.allowed_zones.ToString().c_str(), rule.lockin,
                rule.MinProviders());
  }

  std::printf("\n==== Fig. 3: providers ====\n");
  std::printf("  %-6s %-22s %-16s %-8s %-14s %8s %8s %8s %8s\n", "Name",
              "Description", "Durability", "Avail.", "Zones", "Storage",
              "BdwIn", "BdwOut", "Ops");
  auto print_provider = [](const provider::ProviderSpec& p) {
    std::printf("  %-6s %-22s %-16.13g %-8.4g %-14s %8.3f %8.2f %8.2f %8.2f\n",
                p.id.c_str(), p.description.c_str(), p.sla.durability * 100.0,
                p.sla.availability * 100.0, p.zones.ToString().c_str(),
                p.pricing.storage_gb_month, p.pricing.bw_in_gb,
                p.pricing.bw_out_gb, p.pricing.ops_per_1000);
  };
  for (const auto& p : provider::PaperCatalog()) print_provider(p);
  print_provider(provider::CheapStorSpec());

  std::printf("\n==== Fig. 13: sets of providers ====\n");
  const auto ordered = simx::Fig13Order(provider::PaperCatalog());
  const auto sets = simx::StaticSets(ordered);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    std::printf("  %2zu  %s\n", i + 1, simx::SetLabel(sets[i]).c_str());
  }
  std::printf("  %2zu  Scalia\n", sets.size() + 1);
  return 0;
}
