// Reproduces Fig. 15 (Gallery scenario: total resources used by Scalia) and
// Fig. 16 (Gallery: % over-cost of the 27 provider sets).
//
// Paper reference points: Scalia 1.06 % over ideal; best static 4.14 %;
// worst static 31.58 %.  Popular pictures ride [S3(h)-S3(l); m:1],
// moderately popular ones [S3(h)-S3(l)-Azu; m:2], unpopular ones larger
// sets with higher m.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "simx/overcost.h"
#include "workload/gallery.h"

int main(int argc, char** argv) {
  using namespace scalia;
  const auto mode = bench::ParseBillingMode(argc, argv);

  const simx::ScenarioSpec scenario = workload::GalleryScenario();
  const simx::SimEnvironment env = simx::SimEnvironment::Paper();
  simx::SimPolicyConfig config;
  config.price.billing = mode;
  const simx::CostSimulator simulator(config, env);

  std::printf("==== Fig. 15: Gallery — total resources per hour (GB) ====\n");
  const simx::RunResult scalia = simulator.RunScalia(scenario);
  bench::PrintResourceSeries(scalia, /*stride=*/6);

  // Final placement mix: how many pictures ended on which set.
  std::map<std::string, std::size_t> final_placement;
  {
    std::map<std::string, std::string> last;
    for (const auto& e : scalia.events) last[e.object] = e.label;
    for (const auto& [obj, label] : last) final_placement[label]++;
  }
  std::printf("\n==== Final placement mix (pictures per provider set) ====\n");
  for (const auto& [label, count] : final_placement) {
    std::printf("  %-38s %zu pictures\n", label.c_str(), count);
  }
  std::printf("  [counters] trend_changes=%zu recomputations=%zu migrations=%zu\n",
              scalia.trend_changes, scalia.recomputations, scalia.migrations);

  std::printf("\n==== Fig. 16: Gallery — %% over cost of provider sets (billing=%s) ====\n",
              provider::BillingModeName(mode));
  const auto table = simx::ComputeOverCost(
      simulator, scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());
  std::printf("%s", simx::FormatOverCostTable(table).c_str());

  std::printf("\n[paper] Scalia 1.06%% | best static 4.14%% | worst static 31.58%%\n");
  return 0;
}
