// Closed-loop load generator against a loopback net::HttpServer — the
// end-to-end hot path (client socket → epoll loop → HTTP parse → gateway →
// engine → erasure → provider stores → response) every future scaling PR
// gets measured on.
//
// N client threads, each with one keep-alive connection, drive a mixed
// PUT/GET/DELETE workload (GET-heavy, the paper's read-mostly web serving
// profile of §IV) over a configurable object-size mix, closed-loop: the
// next request leaves only when the response arrived.  Reports total
// req/s and latency percentiles, plus a machine-readable RESULT line that
// scripts/bench_report.sh folds into BENCH_PR3.json.
//
// Requests run under the gateway's anonymous (public-bucket) mode: per-op
// HMAC signing would make the *generator* the subject under test, and the
// replay cache would hold every signature of the run.
//
// With --optimize-every N, a maintenance thread closes a sampling period
// every --period-ms milliseconds and runs the periodic optimization
// procedure (Fig. 7) every N periods *while the load is running* — the
// paper's live adaptation racing foreground writes.  Halfway through, the
// §IV-D CheapStor provider is registered so re-placement becomes genuinely
// attractive and migrations actually move chunks mid-load.  The RESULT
// line then reports migrations and CAS conflicts next to the usual
// throughput figures, so BENCH_PR4.json records live-migration-on vs -off.
//
// The engine layer under test is a core::ShardedEngine: --shards N sets
// the number of key-hash partitions of the metadata table / statistics
// pipeline / cache, and --threads N the handler pool size, so one binary
// measures the whole scaling curve (1 shard serializes every request on
// one metadata mutex; N shards route without a global lock).  The RESULT
// line reports both so scripts/bench_report.sh can record req/s per
// (shards, threads) point.
//
// Usage: bench_server_throughput [--connections N] [--duration-s S]
//          [--threads N | --pool-threads N] [--shards N] [--loops N]
//          [--object-bytes CSV] [--keys-per-conn K]
//          [--optimize-every N] [--period-ms M] [--chaos PLAN]
//          [--filters none|chunk|dedup|compress|encrypt]
//
// --filters STAGE routes every body through the data-reduction pipeline
// with that stage prefix on every rule; the throughput RESULT line then
// reports the aggregate reduction_ratio (stored/raw across all shards) and
// dedup_hits so the filtered suite of bench_report.sh (schema >= 8) can
// gate them.
//
// --loops N sets the serving event loops (SO_REUSEPORT acceptors, handlers
// inline on the loop thread — PR 6's shard-local serving path); it defaults
// to --shards so the scaling curve exercises loops and shards together.
//
// --chaos PLAN turns the run into a storm drill: a chaos::FaultPlan (see
// src/chaos/fault_plan.h for the file format; windows are seconds after the
// load starts) drives a FaultInjector installed on the provider registry,
// only the first three catalog providers are registered (so "one provider
// dark" is a third of the world), and every worker tracks the last *acked*
// state of each of its keys.  The run then reports SLOs instead of a raw
// error count:
//
//   availability — fraction of responses that were not 5xx
//   durability   — after the storm heals, every acked PUT reads back with
//                  exactly the acked bytes (and acked DELETEs stay gone)
//   degraded_reads / reconstructions — engine k-of-n fallback counters
//   p99_storm    — p99 latency over requests issued while a fault was live
//
// Exit status in chaos mode keys off the SLO floors (availability >= 99.9%,
// durability == 100%, zero consistency errors), not errors == 0 — 5xx are
// expected while a third of the providers are dark.
//
// --day SCHEDULE replays a compressed day in the life of the service: the
// §IV-C diurnal curve with a §IV-B flash crowd (capacity/day_schedule.h;
// "default" generates it, a path loads one fraction per line), each period
// --period-ms long, rate-paced to --day-peak-rps at the peak.  The run
// exercises the whole adaptive-capacity loop live: a
// capacity::CapacityController resizes the chunk-I/O pool, the cache
// budget and the optimizer cadence from per-period load forecasts, and a
// capacity::AdmissionController (--slo-p99-ms) 429-sheds the cheapest
// tenants when any shard's p99 breaches the target.  The RESULT line
// reports suite=bench_server_day with slo_attainment (fraction of periods
// whose p99 met the target), shed_requests, scale_events and the peak vs
// trough served throughput; exit status keys off --day-attainment-floor
// and the same byte-exact acked-state readback as chaos mode.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/auth.h"
#include "api/gateway.h"
#include "capacity/admission.h"
#include "capacity/day_schedule.h"
#include "capacity/predictor.h"
#include "chaos/fault_injector.h"
#include "chaos/fault_plan.h"
#include "common/money.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/sharded_engine.h"
#include "net/client.h"
#include "net/server/server.h"
#include "provider/spec.h"

using namespace scalia;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::size_t connections = 16;
  double duration_s = 5.0;
  std::size_t pool_threads = std::thread::hardware_concurrency();
  /// Engine shards (key-hash partitions); 1 = the unsharded baseline.
  std::size_t shards = 1;
  /// Serving event loops (SO_REUSEPORT acceptors); 0 = match --shards.
  std::size_t loops = 0;
  std::vector<std::size_t> object_bytes = {1024, 4096, 16384};
  std::size_t keys_per_conn = 32;
  /// Run the optimization procedure every N sampling periods during the
  /// load (0 = maintenance loop off, the pre-PR4 behavior).
  std::size_t optimize_every = 0;
  /// Sampling-period length for the maintenance loop, in milliseconds.
  std::size_t period_ms = 500;
  /// Fault-plan path; empty = chaos mode off.
  std::string chaos_plan;
  /// Day schedule: "default" generates the diurnal+flash curve, any other
  /// value loads a schedule file; empty = day mode off.
  std::string day;
  /// Offered load at the schedule's peak period (req/s across all
  /// connections); the trough is peak x the period's fraction.
  double day_peak_rps = 3000.0;
  /// Per-shard p99 target for admission control; <= 0 defaults to 25 ms in
  /// day mode.
  double slo_p99_ms = 0.0;
  /// Day mode exits nonzero when slo_attainment lands below this.
  double day_attainment_floor = 0.7;
  /// Filter-pipeline stage prefix applied to every storage rule
  /// (none|chunk|dedup|compress|encrypt); "none" bypasses the pipeline.
  std::string filters = "none";
};

/// Parses a --filters value; nullopt on an unknown stage name.
std::optional<filter::FilterStage> ParseFilterStage(const std::string& name) {
  if (name == "none") return filter::FilterStage::kNone;
  if (name == "chunk") return filter::FilterStage::kChunk;
  if (name == "dedup") return filter::FilterStage::kDedup;
  if (name == "compress") return filter::FilterStage::kCompress;
  if (name == "encrypt") return filter::FilterStage::kEncrypt;
  return std::nullopt;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--connections") {
      if (const char* v = next()) options.connections = std::strtoul(v, nullptr, 10);
    } else if (arg == "--duration-s") {
      if (const char* v = next()) options.duration_s = std::strtod(v, nullptr);
    } else if (arg == "--pool-threads" || arg == "--threads") {
      if (const char* v = next()) options.pool_threads = std::strtoul(v, nullptr, 10);
    } else if (arg == "--shards") {
      if (const char* v = next()) options.shards = std::strtoul(v, nullptr, 10);
    } else if (arg == "--loops") {
      if (const char* v = next()) options.loops = std::strtoul(v, nullptr, 10);
    } else if (arg == "--keys-per-conn") {
      if (const char* v = next()) options.keys_per_conn = std::strtoul(v, nullptr, 10);
    } else if (arg == "--optimize-every") {
      if (const char* v = next()) options.optimize_every = std::strtoul(v, nullptr, 10);
    } else if (arg == "--period-ms") {
      if (const char* v = next()) options.period_ms = std::strtoul(v, nullptr, 10);
    } else if (arg == "--chaos") {
      if (const char* v = next()) options.chaos_plan = v;
    } else if (arg == "--filters") {
      if (const char* v = next()) options.filters = v;
      if (!ParseFilterStage(options.filters)) {
        std::fprintf(stderr, "--filters: unknown stage '%s'\n",
                     options.filters.c_str());
        std::exit(2);
      }
    } else if (arg == "--day") {
      if (const char* v = next()) options.day = v;
    } else if (arg == "--day-peak-rps") {
      if (const char* v = next()) options.day_peak_rps = std::strtod(v, nullptr);
    } else if (arg == "--slo-p99-ms") {
      if (const char* v = next()) options.slo_p99_ms = std::strtod(v, nullptr);
    } else if (arg == "--day-attainment-floor") {
      if (const char* v = next()) {
        options.day_attainment_floor = std::strtod(v, nullptr);
      }
    } else if (arg == "--object-bytes") {
      if (const char* v = next()) {
        options.object_bytes.clear();
        for (const char* p = v; *p != '\0';) {
          options.object_bytes.push_back(std::strtoul(p, nullptr, 10));
          p = std::strchr(p, ',');
          if (p == nullptr) break;
          ++p;
        }
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.connections == 0 || options.object_bytes.empty() ||
      options.keys_per_conn == 0 || options.duration_s <= 0 ||
      options.period_ms == 0 || options.shards == 0) {
    std::fprintf(stderr, "bad options\n");
    std::exit(2);
  }
  if (options.pool_threads == 0) options.pool_threads = 4;
  if (options.loops == 0) options.loops = options.shards;
  // A storm without the maintenance loop would never run the availability
  // sweep, so chaos mode turns the optimizer on unless the user chose a
  // cadence themselves.
  if (!options.chaos_plan.empty() && options.optimize_every == 0) {
    options.optimize_every = 2;
  }
  if (!options.day.empty()) {
    if (!options.chaos_plan.empty()) {
      std::fprintf(stderr, "--day and --chaos are mutually exclusive\n");
      std::exit(2);
    }
    if (options.slo_p99_ms <= 0.0) options.slo_p99_ms = 25.0;
    if (options.day_peak_rps <= 0.0) {
      std::fprintf(stderr, "--day-peak-rps must be > 0\n");
      std::exit(2);
    }
  }
  return options;
}

struct WorkerResult {
  std::vector<double> latencies_us;
  /// Latencies of requests issued while any plan fault was active.
  std::vector<double> storm_latencies_us;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  /// 5xx responses (chaos mode only; not counted as errors there).
  std::uint64_t unavailable = 0;
};

[[nodiscard]] double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseOptions(argc, argv);
  const bool chaos = !options.chaos_plan.empty();
  const bool day = !options.day.empty();
  // Day mode and chaos mode both track acked state for the final
  // byte-exact readback audit.
  const bool track = chaos || day;

  // Load the fault plan up front so a bad path fails before any setup.
  chaos::FaultPlan plan;
  if (chaos) {
    auto loaded = chaos::FaultPlan::Load(options.chaos_plan);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--chaos: %s\n", loaded.status().ToString().c_str());
      return 2;
    }
    plan = std::move(*loaded);
  }

  // Likewise the day schedule: a bad file fails before any setup.
  capacity::DaySchedule schedule;
  if (day) {
    if (options.day == "default") {
      schedule = capacity::DaySchedule::Compressed();
    } else {
      auto loaded = capacity::DaySchedule::Load(options.day);
      if (!loaded.ok()) {
        std::fprintf(stderr, "--day: %s\n", loaded.status().ToString().c_str());
        return 2;
      }
      schedule = std::move(*loaded);
    }
  }

  // --- the server under load: the sharded engine behind the gateway.
  provider::ProviderRegistry registry;
  common::ThreadPool pool(options.pool_threads);
  // Created after seeding (its plan is shifted to when the storm may start),
  // but wired into the optimizer config now; the callback checks for null.
  std::unique_ptr<chaos::FaultInjector> injector;
  core::ShardedEngineConfig engine_config;
  engine_config.num_shards = options.shards;
  engine_config.engine.default_rule =
      core::StorageRule{.name = "default",
                        .durability = 0.999999,
                        .availability = 0.9999,
                        .allowed_zones = provider::ZoneSet::All(),
                        .lockin = 0.5,
                        .ttl_hint = std::nullopt};
  if (chaos) {
    engine_config.optimizer.provider_health =
        [&injector](common::SimTime now) {
          return injector ? injector->UnhealthyProviders(now)
                          : std::vector<provider::ProviderId>{};
        };
  }
  const filter::FilterStage filter_stage = *ParseFilterStage(options.filters);
  if (filter_stage != filter::FilterStage::kNone) {
    filter::PipelineConfig filter_config;
    filter_config.policy.default_stage = filter_stage;
    engine_config.filters = filter_config;
  }
  core::ShardedEngine engine(engine_config, &registry, &pool);
  // The anonymous bench tenant encrypts under a key derived from the
  // keyring's master secret; a fixed per-tenant secret keeps runs
  // reproducible across schema revisions.
  if (auto* keyring = engine.tenant_keyring()) {
    keyring->SetTenantSecret("bench", "bench-secret");
  }
  // Chaos mode shrinks the world to the first three catalog providers, so a
  // single-provider outage darkens a third of it — the committed plans are
  // written against those ids.
  std::size_t providers_to_register =
      chaos ? 3 : std::numeric_limits<std::size_t>::max();
  for (auto& spec : provider::PaperCatalog()) {
    if (providers_to_register == 0) break;
    --providers_to_register;
    if (auto s = registry.Register(std::move(spec)); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  api::Authenticator auth;
  auth.AllowAnonymous("bench");
  api::S3Gateway gateway(&auth,
                         [&]() -> core::EngineApi& { return engine; });

  // Day mode: the adaptive-capacity loop.  The admission controller is
  // attached to the gateway only after seeding (seed PUTs must never be
  // shed); the capacity controller is driven by the day maintenance loop.
  capacity::AdmissionConfig admission_config;
  admission_config.slo_p99_ms = options.slo_p99_ms;
  admission_config.num_shards = options.shards;
  capacity::AdmissionController admission(admission_config);
  capacity::CapacityConfig capacity_config;
  capacity_config.min_threads = 1;
  capacity_config.max_threads = std::max<std::size_t>(1, options.pool_threads);
  capacity_config.rate_per_thread =
      std::max(1.0, options.day_peak_rps /
                        static_cast<double>(capacity_config.max_threads));
  capacity_config.min_cache_bytes = 16 * common::kMiB;
  capacity_config.max_cache_bytes = engine_config.cache_capacity;
  capacity::CapacityController capacity_controller(capacity_config);
  if (day) {
    // Two value tiers: the anonymous bench tenant is the cheap one, and a
    // reserved high-value platform tier sits above it, so a p99 breach
    // sheds "bench" while the controller's top tier keeps the latency
    // signal alive.
    admission.SetTenantBudget("bench", common::Money(10.0));
    admission.SetTenantBudget("platform", common::Money(1000.0));
  }
  net::ServerConfig server_config;
  server_config.num_loops = options.loops;
  server_config.max_connections = options.connections + 8;
  // Wall-clock seconds since process start: the maintenance loop (sampling
  // periods, optimizer rounds) and the request handlers must share one
  // advancing timeline for access histories to mean anything.
  const auto clock_epoch = Clock::now();
  auto bench_clock = [clock_epoch] {
    return static_cast<common::SimTime>(
        std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                         clock_epoch)
            .count());
  };
  server_config.clock = bench_clock;
  net::HttpServer server(
      std::move(server_config),
      [&gateway](common::SimTime now, const api::HttpRequest& request) {
        return gateway.Handle(now, request);
      });
  if (auto s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("bench_server_throughput: %zu connections, %.1fs, "
              "%zu pool threads, %zu shards, %zu loop(s), %zu keys/conn, "
              "sizes {",
              options.connections, options.duration_s, options.pool_threads,
              options.shards, server.num_loops(), options.keys_per_conn);
  for (std::size_t i = 0; i < options.object_bytes.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : ",", options.object_bytes[i]);
  }
  std::printf("} B on 127.0.0.1:%u\n", server.port());

  // --- pre-populate each connection's keyspace so GETs always hit.
  {
    net::HttpClient seeder("127.0.0.1", server.port());
    for (std::size_t c = 0; c < options.connections; ++c) {
      for (std::size_t k = 0; k < options.keys_per_conn; ++k) {
        const std::size_t size =
            options.object_bytes[k % options.object_bytes.size()];
        api::HttpRequest request;
        request.method = api::HttpMethod::kPut;
        request.path =
            "/bench/c" + std::to_string(c) + "-k" + std::to_string(k);
        request.body.assign(size, static_cast<char>('a' + k % 26));
        const auto response = seeder.RoundTrip(request);
        if (!response.ok() || response->status != 201) {
          std::fprintf(stderr, "seed PUT failed\n");
          return 1;
        }
      }
    }
  }
  for (std::size_t s = 0; s < engine.num_shards(); ++s) {
    engine.shard_store(s).SyncAll();
  }

  // --- chaos: storm clock starts now that seeding is done.  The injector
  // sees the plan shifted onto the bench's absolute clock and is installed
  // registry-wide, so every store op from here on routes through it.
  if (chaos) {
    injector = std::make_unique<chaos::FaultInjector>(
        plan.Shifted(bench_clock()), chaos::InjectorOptions{});
    registry.SetFaultHook(injector.get());
    std::printf("chaos plan (%zu events, shifted to t=%lld):\n%s",
                injector->plan().events().size(),
                static_cast<long long>(bench_clock()),
                injector->plan().ToString().c_str());
  }

  // Day mode: seeding ran unthrottled; from here on the gateway asks the
  // admission controller before every request.
  if (day) {
    gateway.SetAdmissionController(&admission);
    std::printf("day schedule (%zu periods of %zu ms, peak %.0f req/s, "
                "p99 SLO %.1f ms):\n%s",
                schedule.periods(), options.period_ms, options.day_peak_rps,
                options.slo_p99_ms, schedule.ToString().c_str());
  }

  // Last state each worker saw *acknowledged* per key: the body of the last
  // acked PUT, or nullopt after an acked DELETE whose re-PUT was not acked.
  // A non-2xx response never changes state (the engine commits metadata
  // before acking, and the bench runs without a journal, so a failed
  // response means not-applied).  The post-storm readback checks storage
  // against exactly this.
  std::vector<std::vector<std::optional<std::string>>> acked(
      options.connections);
  for (std::size_t c = 0; c < options.connections; ++c) {
    acked[c].resize(options.keys_per_conn);
    for (std::size_t k = 0; k < options.keys_per_conn; ++k) {
      const std::size_t size =
          options.object_bytes[k % options.object_bytes.size()];
      acked[c][k].emplace(size, static_cast<char>('a' + k % 26));
    }
  }

  // --- closed-loop workers: 80% GET / 15% PUT / 5% DELETE+rePUT.
  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(options.connections);
  // Day mode: the period the day driver is currently replaying, and one
  // SLO tracker per worker (merged after the join).
  std::atomic<std::size_t> current_period{0};
  std::vector<capacity::SloTracker> day_trackers;
  if (day) {
    day_trackers.reserve(options.connections);
    for (std::size_t c = 0; c < options.connections; ++c) {
      day_trackers.emplace_back(schedule.periods(), options.slo_p99_ms);
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(options.connections);
  const auto bench_start = Clock::now();
  for (std::size_t c = 0; c < options.connections; ++c) {
    workers.emplace_back([&, c] {
      WorkerResult& result = results[c];
      result.latencies_us.reserve(1 << 16);
      common::Xoshiro256 rng(0x5ca11a + c);
      net::HttpClient client("127.0.0.1", server.port());
      auto& state = acked[c];

      // Issues one request, records its latency (tagged storm when a plan
      // fault is live at issue time; tagged into the current day period
      // with its shed bit in day mode).
      auto round_trip =
          [&](const api::HttpRequest& request) -> common::Result<api::HttpResponse> {
        const bool storm =
            chaos && injector->plan().AnyFaultActiveAt(bench_clock());
        const auto op_start = Clock::now();
        auto response = client.RoundTrip(request);
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - op_start)
                .count();
        ++result.requests;
        result.latencies_us.push_back(us);
        if (storm) result.storm_latencies_us.push_back(us);
        if (day) {
          const bool was_shed = response.ok() && response->status == 429;
          day_trackers[c].Record(current_period.load(std::memory_order_relaxed),
                                 us, was_shed);
        }
        return response;
      };
      auto status_of = [](const common::Result<api::HttpResponse>& r) {
        return r.ok() ? r->status : -1;  // -1 = transport error
      };
      // Status accounting: under chaos 5xx are availability events, not
      // errors; in day mode a 429 is an intended shed (already counted by
      // the tracker).  Anything else unexpected is a consistency error —
      // logged, because a one-in-thousands flake is undebuggable from a
      // bare count.
      auto miss = [&](int status, const char* op, const std::string& path) {
        if (day && status == 429) return;
        if (chaos && status >= 500) {
          ++result.unavailable;
        } else {
          ++result.errors;
          std::fprintf(stderr, "consistency error: %s %s status=%d\n", op,
                       path.c_str(), status);
        }
      };

      while (!stop.load(std::memory_order_relaxed)) {
        const auto iteration_start = Clock::now();
        const std::size_t k = rng() % options.keys_per_conn;
        const std::size_t size =
            options.object_bytes[rng() % options.object_bytes.size()];
        const std::string path =
            "/bench/c" + std::to_string(c) + "-k" + std::to_string(k);
        const std::uint64_t dice = rng() % 100;

        // Each worker owns its keys and is strictly closed-loop (a DELETE
        // re-PUTs before the next op), so a 404 on GET would mean the
        // server lost a write — count it as an error.
        api::HttpRequest request;
        request.path = path;
        if (dice < 80) {
          request.method = api::HttpMethod::kGet;
          const auto response = round_trip(request);
          const int status = status_of(response);
          if (!track) {
            if (status != 200) ++result.errors;
          } else if (status == 200) {
            // Read-your-acked-writes: the body must be exactly the last
            // acked content, whether it came from chunks, a degraded
            // k-of-n reconstruction, or the cache.
            if (!state[k] || *state[k] != response->body) {
              ++result.errors;
              std::fprintf(stderr,
                           "consistency error: GET %s got %zu B, acked %s\n",
                           path.c_str(), response->body.size(),
                           state[k] ? std::to_string(state[k]->size()).c_str()
                                    : "deleted");
            }
          } else if (status == 404) {
            if (state[k]) {
              ++result.errors;  // acked write answered 404
              std::fprintf(stderr, "consistency error: GET %s 404, acked %zu B\n",
                           path.c_str(), state[k]->size());
            }
          } else {
            miss(status, "GET", path);
          }
        } else if (dice < 95) {
          request.method = api::HttpMethod::kPut;
          request.body.assign(size, static_cast<char>('A' + dice % 26));
          const int status = status_of(round_trip(request));
          if (status == 201) {
            if (track) state[k] = request.body;
          } else {
            miss(status, "PUT", path);
          }
        } else {
          request.method = api::HttpMethod::kDelete;
          const int status = status_of(round_trip(request));
          if (status == 204) {
            if (track) state[k].reset();
          } else if (track && status == 404 && !state[k]) {
            // Consistent: the key is acked-deleted already — the previous
            // round's rePUT was shed (day) or failed (chaos), so this
            // DELETE found nothing.  Not an error.
          } else {
            miss(status, "DELETE", path);
          }
          // Keep the keyspace stable: immediately re-PUT the key.
          api::HttpRequest reput;
          reput.method = api::HttpMethod::kPut;
          reput.path = path;
          reput.body.assign(size, 'r');
          const int reput_status = status_of(round_trip(reput));
          if (reput_status == 201) {
            if (track) state[k] = reput.body;
          } else {
            miss(reput_status, "rePUT", path);
          }
        }

        if (day) {
          // Rate pacing: each worker serves its 1/connections share of the
          // current period's offered load; the next request leaves one
          // inter-arrival interval after this iteration began (or
          // immediately when the server is the bottleneck).
          const std::size_t p = std::min(
              current_period.load(std::memory_order_relaxed),
              schedule.periods() - 1);
          const double rate = options.day_peak_rps *
                              schedule.fractions()[p] /
                              static_cast<double>(options.connections);
          std::this_thread::sleep_until(
              iteration_start +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(1.0 / std::max(1.0, rate))));
        }
      }
    });
  }

  // Maintenance loop: sampling-period closes + live optimizer rounds racing
  // the foreground load (the daemon's §III-A loop, compressed in time).
  std::uint64_t migrations = 0, conflicts = 0, optimizer_errors = 0;
  std::uint64_t repairs = 0;
  std::thread maintenance;
  if (day) {
    // Day driver: replays the schedule one period per --period-ms tick and
    // closes the adaptive-capacity loop after each — observed offered rate
    // in, forecast out, pool/cache/optimizer-cadence resized when the plan
    // moves.  Sets `stop` itself after the last period.
    maintenance = std::thread([&] {
      const double period_s =
          static_cast<double>(options.period_ms) / 1000.0;
      std::uint64_t last_requests = 0;
      std::size_t cadence = capacity_controller.plan().optimize_every;
      for (std::size_t p = 0;
           p < schedule.periods() && !stop.load(std::memory_order_relaxed);
           ++p) {
        current_period.store(p, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.period_ms));

        const net::ServerStats period_stats = server.stats();
        const double observed_rate =
            static_cast<double>(period_stats.requests_served - last_requests) /
            period_s;
        last_requests = period_stats.requests_served;
        if (capacity_controller.OnPeriodClose(observed_rate)) {
          const capacity::CapacityPlan& next = capacity_controller.plan();
          pool.Resize(next.pool_threads);
          engine.SetCacheCapacity(next.cache_bytes);
          cadence = next.optimize_every;
          std::printf("  period %2zu: rate %.0f -> forecast %.0f, "
                      "plan {threads %zu, cache %zu MiB, optimize 1/%zu}\n",
                      p, observed_rate,
                      capacity_controller.predictor().forecast(),
                      next.pool_threads,
                      static_cast<std::size_t>(next.cache_bytes /
                                               common::kMiB),
                      next.optimize_every);
        }

        const common::SimTime now = bench_clock();
        engine.EndSamplingPeriod(now);
        if (cadence > 0 && (p + 1) % cadence == 0) {
          const auto report = engine.RunOptimizationProcedure(now);
          migrations += report.migrations;
          conflicts += report.conflicts;
          optimizer_errors += report.errors;
          repairs += report.repairs;
        }
      }
      stop.store(true, std::memory_order_relaxed);
    });
  } else if (options.optimize_every > 0) {
    maintenance = std::thread([&] {
      std::uint64_t periods = 0;
      // Chaos mode keeps the provider set fixed at three: a fourth provider
      // appearing mid-storm would mask what the availability sweep does.
      bool cheapstor_registered = chaos;
      const auto half_way = bench_start + std::chrono::duration_cast<
                                              Clock::duration>(
                                std::chrono::duration<double>(
                                    options.duration_s / 2.0));
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.period_ms));
        const common::SimTime now = bench_clock();
        engine.EndSamplingPeriod(now);
        ++periods;
        if (!cheapstor_registered && Clock::now() >= half_way) {
          // §IV-D: a cheaper provider appears mid-run, making re-placement
          // worthwhile — live migrations now race the writers.
          cheapstor_registered = true;
          (void)registry.Register(provider::CheapStorSpec());
        }
        if (periods % options.optimize_every == 0) {
          const auto report = engine.RunOptimizationProcedure(now);
          migrations += report.migrations;
          conflicts += report.conflicts;
          optimizer_errors += report.errors;
          repairs += report.repairs;
        }
      }
    });
  }

  if (day) {
    // The day driver owns the run length: it stops after the last period.
    maintenance.join();
  } else {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.duration_s));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  if (maintenance.joinable()) maintenance.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - bench_start).count();

  // --- aggregate.
  std::uint64_t requests = 0, errors = 0, unavailable = 0;
  std::vector<double> latencies, storm_latencies;
  for (const auto& result : results) {
    requests += result.requests;
    errors += result.errors;
    unavailable += result.unavailable;
    latencies.insert(latencies.end(), result.latencies_us.begin(),
                     result.latencies_us.end());
    storm_latencies.insert(storm_latencies.end(),
                           result.storm_latencies_us.begin(),
                           result.storm_latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(storm_latencies.begin(), storm_latencies.end());
  const double req_per_s = static_cast<double>(requests) / elapsed_s;
  const double p50 = Percentile(latencies, 0.50);
  const double p95 = Percentile(latencies, 0.95);
  const double p99 = Percentile(latencies, 0.99);

  // --- chaos: wait for the world to heal, then audit storage against the
  // acked state.  Durability is the fraction of acked objects that read
  // back with exactly the acked bytes; acked DELETEs must answer 404.
  double availability_pct = 100.0, durability_pct = 100.0;
  double p99_storm = 0.0;
  std::uint64_t acked_objects = 0, readback_ok = 0, readback_bad = 0;
  if (chaos) {
    availability_pct =
        requests == 0
            ? 100.0
            : 100.0 * static_cast<double>(requests - unavailable) /
                  static_cast<double>(requests);
    p99_storm = Percentile(storm_latencies, 0.99);

    // Heal: past the plan horizon and with every quarantine lifted (give
    // up after a bounded wait; degraded reads cover a still-dark provider
    // anyway, this just makes the audit read the calm world).
    const common::SimTime horizon = injector->plan().Horizon();
    const auto heal_deadline =
        Clock::now() + std::chrono::seconds(30);
    while (Clock::now() < heal_deadline) {
      const common::SimTime now = bench_clock();
      if (now >= horizon && injector->UnhealthyProviders(now).empty()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  if (track) {
    // Day mode: the audit reads the calm world — a lingering shed level
    // must not 429 the auditor.
    if (day) gateway.SetAdmissionController(nullptr);

    net::HttpClient auditor("127.0.0.1", server.port());
    for (std::size_t c = 0; c < options.connections; ++c) {
      for (std::size_t k = 0; k < options.keys_per_conn; ++k) {
        api::HttpRequest request;
        request.method = api::HttpMethod::kGet;
        request.path =
            "/bench/c" + std::to_string(c) + "-k" + std::to_string(k);
        const auto response = auditor.RoundTrip(request);
        const int status = response.ok() ? response->status : -1;
        if (acked[c][k]) {
          ++acked_objects;
          if (status == 200 && response->body == *acked[c][k]) {
            ++readback_ok;
          } else {
            ++readback_bad;
            std::fprintf(stderr,
                         "durability violation: %s status=%d (acked %zu B)\n",
                         request.path.c_str(), status, acked[c][k]->size());
          }
        } else if (status != 404) {
          // An acked DELETE came back.  Not a durability loss (nothing was
          // lost — quite the opposite) but a consistency error.
          ++errors;
          std::fprintf(stderr, "deleted key resurrected: %s status=%d\n",
                       request.path.c_str(), status);
        }
      }
    }
    durability_pct = acked_objects == 0
                         ? 100.0
                         : 100.0 * static_cast<double>(readback_ok) /
                               static_cast<double>(acked_objects);
  }

  const net::ServerStats stats = server.stats();
  std::printf("\n  %-22s %12llu\n", "requests", static_cast<unsigned long long>(requests));
  std::printf("  %-22s %12.1f\n", "elapsed (s)", elapsed_s);
  std::printf("  %-22s %12.1f\n", "throughput (req/s)", req_per_s);
  std::printf("  %-22s %12.1f\n", "p50 latency (us)", p50);
  std::printf("  %-22s %12.1f\n", "p95 latency (us)", p95);
  std::printf("  %-22s %12.1f\n", "p99 latency (us)", p99);
  std::printf("  %-22s %12llu\n", "errors", static_cast<unsigned long long>(errors));
  if (options.optimize_every > 0) {
    std::printf("  %-22s %12llu\n", "migrations",
                static_cast<unsigned long long>(migrations));
    std::printf("  %-22s %12llu\n", "CAS conflicts",
                static_cast<unsigned long long>(conflicts));
    std::printf("  %-22s %12llu\n", "optimizer errors",
                static_cast<unsigned long long>(optimizer_errors));
  }
  std::printf("  %-22s %12.1f\n", "server MiB in",
              static_cast<double>(stats.bytes_in) / (1024.0 * 1024.0));
  std::printf("  %-22s %12.1f\n", "server MiB out",
              static_cast<double>(stats.bytes_out) / (1024.0 * 1024.0));
  // PR 7 satellite: the request parser now reuses one scratch ParsedRequest
  // per connection instead of allocating fresh strings per request; the
  // pre-reuse numbers for this same workload live in BENCH_PR6.json.
  std::printf("  (request-parse scratch reuse: on; before = BENCH_PR6.json)\n");

  // Day mode: merge the per-worker SLO trackers and pull the adaptive-loop
  // counters.
  capacity::SloTracker::Report day_report;
  capacity::AdmissionStats admission_stats;
  if (day) {
    capacity::SloTracker merged(schedule.periods(), options.slo_p99_ms);
    for (const auto& tracker : day_trackers) merged.Merge(tracker);
    day_report = merged.Finish();
    admission_stats = admission.Stats();

    const double period_s = static_cast<double>(options.period_ms) / 1000.0;
    const double peak_rps =
        static_cast<double>(day_report.peak_period_requests) / period_s;
    const double trough_rps =
        static_cast<double>(day_report.trough_period_requests) / period_s;
    std::printf("\n  day SLOs (%zu periods, p99 target %.1f ms):\n",
                schedule.periods(), options.slo_p99_ms);
    std::printf("  %-22s %12.3f\n", "SLO attainment", day_report.slo_attainment);
    std::printf("  %-22s %12llu\n", "shed requests",
                static_cast<unsigned long long>(admission_stats.shed));
    std::printf("  %-22s %12llu\n", "probe admissions",
                static_cast<unsigned long long>(admission_stats.probes));
    std::printf("  %-22s %12llu\n", "shed escalations",
                static_cast<unsigned long long>(admission_stats.escalations));
    std::printf("  %-22s %12llu\n", "scale events",
                static_cast<unsigned long long>(
                    capacity_controller.scale_events()));
    std::printf("  %-22s %12zu\n", "final pool threads", pool.num_threads());
    std::printf("  %-22s %12.1f\n", "peak (req/s)", peak_rps);
    std::printf("  %-22s %12.1f\n", "trough (req/s)", trough_rps);
    std::printf("  %-22s %12.3f\n", "durability (%)", durability_pct);
    std::printf("  %-22s %12llu\n", "server 429s",
                static_cast<unsigned long long>(stats.requests_throttled));
  }

  const core::Engine::ReadPathCounters read_counters = engine.ReadCounters();
  if (chaos) {
    std::printf("\n  chaos SLOs (plan %s, %zu events):\n",
                options.chaos_plan.c_str(), plan.events().size());
    std::printf("  %-22s %12.3f\n", "availability (%)", availability_pct);
    std::printf("  %-22s %12.3f\n", "durability (%)", durability_pct);
    std::printf("  %-22s %12llu\n", "acked objects",
                static_cast<unsigned long long>(acked_objects));
    std::printf("  %-22s %12llu\n", "5xx responses",
                static_cast<unsigned long long>(unavailable));
    std::printf("  %-22s %12llu\n", "degraded reads",
                static_cast<unsigned long long>(read_counters.degraded_reads));
    std::printf("  %-22s %12llu\n", "reconstructions",
                static_cast<unsigned long long>(read_counters.reconstructions));
    std::printf("  %-22s %12llu\n", "availability repairs",
                static_cast<unsigned long long>(repairs));
    std::printf("  %-22s %12llu\n", "faults injected",
                static_cast<unsigned long long>(injector->FaultsInjected()));
    std::printf("  %-22s %12.1f\n", "p99 under storm (us)", p99_storm);
  }

  // Machine-readable line for scripts/bench_report.sh.
  if (chaos) {
    std::printf(
        "RESULT suite=bench_server_chaos requests=%llu elapsed_s=%.3f "
        "req_per_s=%.1f p50_us=%.1f p95_us=%.1f p99_us=%.1f errors=%llu "
        "optimize_every=%zu migrations=%llu conflicts=%llu "
        "shards=%zu threads=%zu loops=%zu "
        "availability_pct=%.4f durability_pct=%.4f acked_objects=%llu "
        "unavailable=%llu degraded_reads=%llu reconstructions=%llu "
        "repairs=%llu faults_injected=%llu p99_storm_us=%.1f\n",
        static_cast<unsigned long long>(requests), elapsed_s, req_per_s, p50,
        p95, p99, static_cast<unsigned long long>(errors),
        options.optimize_every, static_cast<unsigned long long>(migrations),
        static_cast<unsigned long long>(conflicts), options.shards,
        options.pool_threads, server.num_loops(), availability_pct,
        durability_pct, static_cast<unsigned long long>(acked_objects),
        static_cast<unsigned long long>(unavailable),
        static_cast<unsigned long long>(read_counters.degraded_reads),
        static_cast<unsigned long long>(read_counters.reconstructions),
        static_cast<unsigned long long>(repairs),
        static_cast<unsigned long long>(injector->FaultsInjected()),
        p99_storm);
  } else if (day) {
    const double period_s = static_cast<double>(options.period_ms) / 1000.0;
    std::printf(
        "RESULT suite=bench_server_day requests=%llu elapsed_s=%.3f "
        "req_per_s=%.1f p50_us=%.1f p95_us=%.1f p99_us=%.1f errors=%llu "
        "shards=%zu threads=%zu loops=%zu periods=%zu period_ms=%zu "
        "slo_p99_ms=%.1f slo_attainment=%.4f shed_requests=%llu "
        "probe_admissions=%llu shed_escalations=%llu scale_events=%llu "
        "peak_req_per_s=%.1f trough_req_per_s=%.1f durability_pct=%.4f "
        "acked_objects=%llu migrations=%llu conflicts=%llu\n",
        static_cast<unsigned long long>(requests), elapsed_s, req_per_s, p50,
        p95, p99, static_cast<unsigned long long>(errors), options.shards,
        options.pool_threads, server.num_loops(), schedule.periods(),
        options.period_ms, options.slo_p99_ms, day_report.slo_attainment,
        static_cast<unsigned long long>(admission_stats.shed),
        static_cast<unsigned long long>(admission_stats.probes),
        static_cast<unsigned long long>(admission_stats.escalations),
        static_cast<unsigned long long>(capacity_controller.scale_events()),
        static_cast<double>(day_report.peak_period_requests) / period_s,
        static_cast<double>(day_report.trough_period_requests) / period_s,
        durability_pct, static_cast<unsigned long long>(acked_objects),
        static_cast<unsigned long long>(migrations),
        static_cast<unsigned long long>(conflicts));
  } else {
    // reduction_ratio is aggregate stored/raw across every shard's filter
    // pipeline; 1.0 when --filters none (the pipeline never ran).
    const filter::Pipeline::Totals filter_totals = engine.FilterTotals();
    const double reduction_ratio =
        filter_totals.raw_bytes > 0
            ? static_cast<double>(filter_totals.stored_bytes) /
                  static_cast<double>(filter_totals.raw_bytes)
            : 1.0;
    std::printf(
        "RESULT suite=bench_server_throughput requests=%llu elapsed_s=%.3f "
        "req_per_s=%.1f p50_us=%.1f p95_us=%.1f p99_us=%.1f errors=%llu "
        "optimize_every=%zu migrations=%llu conflicts=%llu "
        "shards=%zu threads=%zu loops=%zu "
        "filters=%s reduction_ratio=%.4f dedup_hits=%llu\n",
        static_cast<unsigned long long>(requests), elapsed_s, req_per_s, p50,
        p95, p99, static_cast<unsigned long long>(errors),
        options.optimize_every, static_cast<unsigned long long>(migrations),
        static_cast<unsigned long long>(conflicts), options.shards,
        options.pool_threads, server.num_loops(), options.filters.c_str(),
        reduction_ratio,
        static_cast<unsigned long long>(filter_totals.dedup_hits));
  }

  server.Stop();
  if (chaos) {
    // 5xx during the storm are expected; the floors are the contract.
    const bool slo_ok =
        availability_pct >= 99.9 && durability_pct >= 100.0 && errors == 0;
    if (!slo_ok) {
      std::fprintf(stderr,
                   "chaos SLO violated: availability=%.4f%% (floor 99.9) "
                   "durability=%.4f%% (floor 100) errors=%llu\n",
                   availability_pct, durability_pct,
                   static_cast<unsigned long long>(errors));
    }
    return slo_ok ? 0 : 1;
  }
  if (day) {
    // 429 sheds are the mechanism, not a failure; the floors are SLO
    // attainment, zero consistency errors and byte-exact acked readback.
    const bool slo_ok =
        day_report.slo_attainment >= options.day_attainment_floor &&
        durability_pct >= 100.0 && errors == 0;
    if (!slo_ok) {
      std::fprintf(stderr,
                   "day SLO violated: attainment=%.4f (floor %.4f) "
                   "durability=%.4f%% (floor 100) errors=%llu\n",
                   day_report.slo_attainment, options.day_attainment_floor,
                   durability_pct, static_cast<unsigned long long>(errors));
    }
    return slo_ok ? 0 : 1;
  }
  return errors == 0 ? 0 : 1;
}
