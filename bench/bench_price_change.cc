// Extension experiment: repricing mid-run.
//
// §I motivates Scalia with markets whose "offers in terms of pricing ...
// may change over time to adapt to the market" and providers that "may
// suddenly increase [their] pricing policy".  The paper's evaluation never
// exercises this; this bench does.  Backup workload as in §IV-D (40 MB
// object every 5 hours), 400 hours; at hour 200, S3(l) — a member of the
// cost-optimal set — multiplies its storage price by 10.
//
// Expected shape: Scalia re-places stored objects off the gouging provider
// within one sampling period of the change and stays near the ideal; every
// static set containing S3(l) absorbs the new price for the full remaining
// horizon.
#include <cstdio>

#include "bench_util.h"
#include "simx/overcost.h"
#include "workload/backup.h"

int main(int argc, char** argv) {
  using namespace scalia;
  const auto mode = bench::ParseBillingMode(argc, argv);
  constexpr std::size_t kGougeHour = 200;

  workload::BackupParams params;
  params.total_hours = 400;
  const simx::ScenarioSpec scenario = workload::BackupScenario(params);

  simx::SimEnvironment env = simx::SimEnvironment::Paper();
  auto gouged = env.FindSpec("S3(l)", 0)->pricing;
  gouged.storage_gb_month *= 10.0;  // 0.093 -> 0.93 $/GB-month
  env.Reprice("S3(l)", static_cast<common::SimTime>(kGougeHour) * common::kHour,
              gouged);

  simx::SimPolicyConfig config;
  config.price.billing = mode;
  const simx::CostSimulator simulator(config, env);

  std::printf("==== Price change at h%zu: S3(l) storage x10 (billing=%s) ====\n",
              kGougeHour, provider::BillingModeName(mode));
  const simx::RunResult scalia = simulator.RunScalia(scenario);

  std::printf("\n==== Scalia placement events around the repricing ====\n");
  std::size_t shown = 0;
  for (const auto& e : scalia.events) {
    if (e.period + 10 < kGougeHour && e.reason == "initial") continue;
    if (shown++ >= 16) break;
    std::printf("  h%-4zu %-12s %-44s (%s)\n", e.period, e.object.c_str(),
                e.label.c_str(), e.reason.c_str());
  }
  std::printf("  [counters] migrations=%zu repairs=%zu recomputations=%zu\n",
              scalia.migrations, scalia.repairs, scalia.recomputations);

  std::printf("\n==== %% over cost ====\n");
  const auto table = simx::ComputeOverCost(
      simulator, scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());
  std::printf("%s", simx::FormatOverCostTable(table).c_str());

  std::printf(
      "\n[expected shape] Scalia migrates off S3(l) at h%zu and lands near "
      "the ideal; statics that include S3(l) pay the gouged storage rate "
      "for the remaining %zu hours.\n",
      kGougeHour, params.total_hours - kGougeHour);
  return 0;
}
