// Micro-benchmarks of the substrates: erasure codec throughput, MD5, the
// metadata store, the cache, and the reliability math of Algorithm 2.
#include <benchmark/benchmark.h>

#include "api/auth.h"
#include "cache/cdn.h"
#include "cache/lru_cache.h"
#include "common/md5.h"
#include "common/rng.h"
#include "config/loaders.h"
#include "core/reliability.h"
#include "erasure/chunker.h"
#include "store/kv_table.h"

namespace {

using namespace scalia;

std::string RandomBlob(std::size_t size, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::string blob(size, '\0');
  for (auto& c : blob) c = static_cast<char>(rng() & 0xff);
  return blob;
}

void BM_ErasureSplit(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const std::string blob = RandomBlob(1 << 20, 7);
  for (auto _ : state) {
    auto chunks = erasure::Chunker::Split(blob, m, n);
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_ErasureSplit)->Args({1, 2})->Args({2, 3})->Args({3, 4})->Args({4, 5})->Args({8, 12});

void BM_ErasureJoinFromParity(benchmark::State& state) {
  // Worst case: reconstruct using parity chunks only.
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const std::string blob = RandomBlob(1 << 20, 11);
  auto chunks = erasure::Chunker::Split(blob, m, n);
  std::vector<erasure::Chunk> parity(chunks->end() - static_cast<long>(m),
                                     chunks->end());
  for (auto _ : state) {
    auto joined = erasure::Chunker::Join(parity);
    benchmark::DoNotOptimize(joined);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_ErasureJoinFromParity)->Args({2, 4})->Args({3, 6})->Args({4, 8});

void BM_Md5(benchmark::State& state) {
  const std::string blob =
      RandomBlob(static_cast<std::size_t>(state.range(0)), 13);
  for (auto _ : state) {
    auto digest = common::Md5::Hash(blob);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_KvTablePut(benchmark::State& state) {
  store::KvTable table;
  std::uint64_t i = 0;
  for (auto _ : state) {
    table.Put("key" + std::to_string(i % 4096), "value", 0,
              static_cast<common::SimTime>(i));
    ++i;
  }
}
BENCHMARK(BM_KvTablePut);

void BM_CacheGetHit(benchmark::State& state) {
  cache::LruCache cache(64 * common::kMiB);
  for (int i = 0; i < 1024; ++i) {
    cache.Put("key" + std::to_string(i), RandomBlob(4096, 17));
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto hit = cache.Get("key" + std::to_string(i++ % 1024));
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_CacheGetHit);

void BM_GetThresholdDp(benchmark::State& state) {
  common::Xoshiro256 rng(19);
  std::vector<double> durabilities;
  for (int i = 0; i < state.range(0); ++i) {
    durabilities.push_back(1.0 - rng.NextUniform(1e-9, 1e-4));
  }
  for (auto _ : state) {
    int th = core::GetThreshold(durabilities, 0.999999);
    benchmark::DoNotOptimize(th);
  }
}
BENCHMARK(BM_GetThresholdDp)->Arg(5)->Arg(10)->Arg(20)->Arg(50);

void BM_GetThresholdCombinatorial(benchmark::State& state) {
  common::Xoshiro256 rng(19);
  std::vector<double> durabilities;
  for (int i = 0; i < state.range(0); ++i) {
    durabilities.push_back(1.0 - rng.NextUniform(1e-9, 1e-4));
  }
  for (auto _ : state) {
    int th = core::GetThresholdCombinatorial(durabilities, 0.999999);
    benchmark::DoNotOptimize(th);
  }
}
BENCHMARK(BM_GetThresholdCombinatorial)->Arg(5)->Arg(10)->Arg(15);

// ---- Newer substrates: JSON config, HMAC auth, CDN edge -------------------

void BM_JsonParseCatalog(benchmark::State& state) {
  const std::string doc =
      config::CatalogToJson(provider::PaperCatalog()).Dump(2);
  for (auto _ : state) {
    auto parsed = config::ParseJson(doc);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParseCatalog);

void BM_GatewaySignVerify(benchmark::State& state) {
  api::Authenticator auth;
  const api::Credentials creds{.access_key_id = "K",
                               .secret = "s3cr3t",
                               .tenant = "t"};
  auth.AddCredentials(creds);
  const api::RequestSigner signer(creds);
  const std::string body = RandomBlob(static_cast<std::size_t>(state.range(0)),
                                      23);
  common::SimTime now = 0;
  for (auto _ : state) {
    api::HttpRequest request;
    request.method = api::HttpMethod::kPut;
    request.path = "/bucket/key";
    request.body = body;
    signer.Sign(&request, ++now);  // fresh timestamp: no replay rejection
    auto tenant = auth.Verify(request, now);
    benchmark::DoNotOptimize(tenant);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GatewaySignVerify)->Arg(1024)->Arg(256 * 1024);

void BM_CdnEdgeGet(benchmark::State& state) {
  cache::Cdn cdn(cache::CdnConfig{.edge_capacity = 64 * common::kMiB,
                                  .ttl = 0,
                                  .edge_rtt_ms = 8.0},
                 [](net::Region, const std::string&) {
                   return cache::Cdn::OriginReply{.body = std::string(4096, 'x'),
                                                  .latency_ms = 100.0};
                 });
  // Warm 1024 keys, then measure steady-state hits.
  for (int i = 0; i < 1024; ++i) {
    (void)cdn.Get(0, net::Region::kEurope, "k" + std::to_string(i));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto fetch = cdn.Get(1, net::Region::kEurope,
                         "k" + std::to_string(i++ % 1024));
    benchmark::DoNotOptimize(fetch);
  }
}
BENCHMARK(BM_CdnEdgeGet);

}  // namespace

BENCHMARK_MAIN();
