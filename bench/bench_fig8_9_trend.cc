// Reproduces Figs. 8 and 9: trend detection on a real-website access
// pattern.
//
// Fig. 8 — sampling period 1 h, decision period 24 h, 7 days (168 samples),
// ma window 3, limit 0.1.  Fig. 9 — sampling period 1 day, decision period
// 7 d, 3 months (~90 samples).  The series come from the diurnal traffic
// model calibrated to the paper's website (2500 visitors/day; EU 62 %,
// NA 27 %, Asia 6 %).  Output: per-period operations, the detected trend
// changes, and the placement recomputations they would trigger.
#include <cstdio>

#include "common/rng.h"
#include "stats/trend.h"
#include "workload/diurnal.h"

namespace {

void RunTrendFigure(const char* title, const std::vector<double>& series,
                    std::size_t stride) {
  using namespace scalia;
  stats::TrendDetector detector(stats::TrendConfig{
      .window = 3, .limit = 0.1, .min_activity = 1.0});
  std::size_t detected = 0;
  std::printf("%s\n", title);
  std::printf("  period     ops   sma      trend-change\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const bool fired = detector.Observe(series[i]);
    if (fired) ++detected;
    if (i % stride == 0 || fired) {
      std::printf("  %6zu  %6.0f   %7.1f  %s\n", i, series[i],
                  detector.CurrentSma(), fired ? "CHANGE -> recompute" : "");
    }
  }
  std::printf("  [total] %zu samples, %zu trend changes detected (placement "
              "recomputed only at those points)\n\n",
              series.size(), detected);
}

}  // namespace

int main() {
  using namespace scalia;
  common::Xoshiro256 rng(20120408);

  // Fig. 8: hourly sampling over 7 days.  Reads per hour of a single object
  // tracking the site's diurnal pattern (the object gets a share of the
  // traffic).
  workload::DiurnalTrafficModel traffic(2500.0);
  std::vector<double> hourly = traffic.SampledSeries(24 * 7, rng);
  for (auto& v : hourly) v *= 0.8;  // the object draws 80 % of page views
  RunTrendFigure(
      "==== Fig. 8: trend detection (ma 3, limit 0.1, s = 1 h, d = 24 h, "
      "7 days) ====",
      hourly, 6);

  // Fig. 9: daily sampling over 3 months, with a mid-series popularity
  // regime shift (the pattern Fig. 9's long-range view shows).
  std::vector<double> daily;
  for (std::size_t day = 0; day < 90; ++day) {
    double mean = 2000.0;
    if (day >= 30 && day < 45) mean = 5200.0;  // popular fortnight
    if (day >= 45) mean = 2600.0;
    daily.push_back(static_cast<double>(rng.NextPoisson(mean)));
  }
  RunTrendFigure(
      "==== Fig. 9: trend detection (ma 3, limit 0.1, s = 1 d, d = 7 d, "
      "3 months) ====",
      daily, 7);
  return 0;
}
