// Reproduces Fig. 12 (Slashdot scenario: total resources used by Scalia)
// and Fig. 14 (Slashdot scenario: % over-cost of the 27 provider sets).
//
// Paper reference points: Scalia 0.12 % over ideal; best static a mix of
// [S3(h), S3(l); m:1] at 0.4 %; worst static [all five; m:4] at 16 %.
// Scalia's placement trajectory: [S3(h)-S3(l)-Azu-RS; m:3] before the flash
// crowd, [S3(h)-S3(l); m:1] during, [all five; m:4] after.
#include <cstdio>

#include "bench_util.h"
#include "simx/overcost.h"
#include "workload/slashdot.h"

int main(int argc, char** argv) {
  using namespace scalia;
  const auto mode = bench::ParseBillingMode(argc, argv);

  const simx::ScenarioSpec scenario = workload::SlashdotScenario();
  const simx::SimEnvironment env = simx::SimEnvironment::Paper();
  simx::SimPolicyConfig config;
  config.price.billing = mode;
  const simx::CostSimulator simulator(config, env);

  std::printf("==== Fig. 12: Slashdot — total resources per hour (GB) ====\n");
  const simx::RunResult scalia = simulator.RunScalia(scenario);
  bench::PrintResourceSeries(scalia, /*stride=*/4);

  std::printf("\n==== Scalia placement events ====\n");
  bench::PrintEvents(scalia);

  std::printf("\n==== Fig. 14: Slashdot — %% over cost of provider sets (billing=%s) ====\n",
              provider::BillingModeName(mode));
  const auto table = simx::ComputeOverCost(
      simulator, scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());
  std::printf("%s", simx::FormatOverCostTable(table).c_str());

  std::printf("\n[paper] Scalia 0.12%% | best static [S3(h)-S3(l); m:1] 0.4%% "
              "| worst static [all5; m:4] 16%%\n");
  return 0;
}
