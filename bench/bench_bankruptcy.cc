// Extension experiment: permanent provider exit (bankruptcy).
//
// §I: "A provider may end its business ... Therefore, in order to safely
// host its data and minimize the impact of the migration to a new
// provider, a user needs to proactively avoid vendor lock-in".  Backup
// workload as in §IV-D, 400 hours; at hour 200, Rackspace exits the market
// permanently.  Chunks stored there are lost — unlike the transient outage
// of Fig. 18, there is no recovery to wait for.
//
// Expected shape: Scalia's erasure redundancy absorbs the loss (every
// object stays reconstructible), a single repair wave at h200 restores
// full redundancy, and the adaptive policy lands near the ideal.  Static
// sets containing RS run degraded forever; the erasure margin n - m is
// what carried every object through.
#include <cstdio>

#include "bench_util.h"
#include "simx/overcost.h"
#include "workload/backup.h"

int main(int argc, char** argv) {
  using namespace scalia;
  const auto mode = bench::ParseBillingMode(argc, argv);
  constexpr std::size_t kExitHour = 200;

  workload::BackupParams params;
  params.total_hours = 400;
  const simx::ScenarioSpec scenario = workload::BackupScenario(params);

  simx::SimEnvironment env = simx::SimEnvironment::Paper();
  env.Bankrupt("RS", static_cast<common::SimTime>(kExitHour) * common::kHour);

  simx::SimPolicyConfig config;
  config.price.billing = mode;
  const simx::CostSimulator simulator(config, env);

  std::printf("==== Bankruptcy at h%zu: RS leaves the market (billing=%s) ====\n",
              kExitHour, provider::BillingModeName(mode));
  const simx::RunResult scalia = simulator.RunScalia(scenario);

  std::printf("\n==== Scalia repair/migration wave around the exit ====\n");
  std::size_t shown = 0;
  for (const auto& e : scalia.events) {
    if (e.period + 5 < kExitHour && e.reason == "initial") continue;
    if (shown++ >= 16) break;
    std::printf("  h%-4zu %-12s %-44s (%s)\n", e.period, e.object.c_str(),
                e.label.c_str(), e.reason.c_str());
  }
  std::printf("  [counters] migrations=%zu repairs=%zu recomputations=%zu\n",
              scalia.migrations, scalia.repairs, scalia.recomputations);

  std::printf("\n==== %% over cost ====\n");
  const auto table = simx::ComputeOverCost(
      simulator, scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());
  std::printf("%s", simx::FormatOverCostTable(table).c_str());

  std::printf(
      "\n[expected shape] one repair wave at h%zu (chunks at RS are gone for "
      "good); Scalia near ideal; statics containing RS permanently "
      "degraded.\n",
      kExitHour);
  return 0;
}
