// Ablations over Scalia's design choices (DESIGN.md §5).
//
// Each row runs the Slashdot and Gallery scenarios with one mechanism
// disabled and reports the % over-cost versus the ideal oracle and the
// amount of optimization work performed:
//   - full            : the complete scheme;
//   - no-trend-gate   : recompute every object every period (what the
//                       gate saves, §III-A.3);
//   - no-migr-gate    : migrate whenever a cheaper set exists, ignoring the
//                       migration cost-benefit analysis;
//   - no-class-seed   : first placement ignores class statistics (Fig. 6);
//   - fixed-D         : decision period never adapted (no D/2-D-2D
//                       coupling);
//   - flexible-m      : placements chosen by the threshold-flexible exact
//                       solver (m may sit below the durability-maximal
//                       threshold, DESIGN.md §8); the ideal stays
//                       Algorithm 1, so this row may go *below* 0 %.
#include <cstdio>

#include "bench_util.h"
#include "workload/gallery.h"
#include "workload/slashdot.h"

namespace {

using namespace scalia;

struct Variant {
  const char* name;
  void (*apply)(simx::SimPolicyConfig&);
};

void RunScenario(const char* title, const simx::ScenarioSpec& scenario) {
  const simx::SimEnvironment env = simx::SimEnvironment::Paper();
  const Variant variants[] = {
      {"full", [](simx::SimPolicyConfig&) {}},
      {"no-trend-gate",
       [](simx::SimPolicyConfig& c) { c.trend_gate = false; }},
      {"no-migr-gate",
       [](simx::SimPolicyConfig& c) { c.migration_gate = false; }},
      {"no-class-seed",
       [](simx::SimPolicyConfig& c) { c.class_seed = false; }},
      {"fixed-D",
       [](simx::SimPolicyConfig& c) { c.adapt_decision_period = false; }},
      {"flexible-m",
       [](simx::SimPolicyConfig& c) { c.threshold_flexible = true; }},
  };

  simx::SimPolicyConfig base;
  const simx::CostSimulator ideal_sim(base, env);
  const simx::RunResult ideal = ideal_sim.RunIdeal(scenario);

  std::printf("%s (ideal total = $%.4f)\n", title, ideal.total.usd());
  std::printf("  %-15s %10s %10s %14s %12s %10s\n", "variant", "total($)",
              "over(%)", "recomputations", "migrations", "trendhits");
  for (const auto& v : variants) {
    simx::SimPolicyConfig config;
    v.apply(config);
    const simx::CostSimulator simulator(config, env);
    const simx::RunResult run = simulator.RunScalia(scenario);
    const double over = ideal.total.usd() > 0.0
                            ? (run.total.usd() - ideal.total.usd()) /
                                  ideal.total.usd() * 100.0
                            : 0.0;
    std::printf("  %-15s %10.4f %10.2f %14zu %12zu %10zu\n", v.name,
                run.total.usd(), over, run.recomputations, run.migrations,
                run.trend_changes);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  RunScenario("==== Ablations: Slashdot scenario ====",
              workload::SlashdotScenario());
  RunScenario("==== Ablations: Gallery scenario ====",
              workload::GalleryScenario());
  return 0;
}
