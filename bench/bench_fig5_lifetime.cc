// Reproduces Fig. 5: per-class lifetime statistics.
//
// The paper's example: a class of 20 objects whose lifetimes range from 0
// to 6 hours.  Left plot — the deletion-time histogram; right plot — the
// expected time left to live as a function of the object's age, computed
// from the empirical distribution.  Paper reference points: a brand-new
// object of that class is expected to live ~3.25 h, a 2-hour-old object
// ~1.55 h more.
#include <cstdio>

#include "stats/object_class.h"

int main() {
  using namespace scalia;

  // A 20-object class with lifetimes spread over 0-6 h, chosen to match the
  // paper's reference points: E[TTL | age 0] = 3.25 h and
  // E[TTL | age 2 h] = 1.55 h.
  stats::ClassStats cls(common::kHour * 8);
  const double lifetimes_hours[20] = {0.5, 0.5, 2.5, 2.5, 2.5, 2.5, 2.5,
                                      2.5, 3.5, 3.5, 3.5, 3.5, 3.5, 3.5,
                                      4.5, 4.5, 4.5, 4.5, 4.5, 5.5};
  for (double h : lifetimes_hours) {
    cls.RecordLifetime(common::FromHours(h));
  }

  std::printf("==== Fig. 5 (left): deletion-time histogram ====\n");
  std::printf("%s", cls.lifetime_histogram().ToString().c_str());

  std::printf("\n==== Fig. 5 (right): expected hours to live vs age ====\n");
  std::printf("  age(h)   E[time-left-to-live](h)   P(alive beyond age)\n");
  for (double age = 0.0; age <= 6.0; age += 0.5) {
    const auto ttl = cls.ExpectedTimeLeftToLive(common::FromHours(age));
    std::printf("  %5.1f    %10.2f                %.2f\n", age,
                common::ToHours(ttl),
                cls.lifetime_histogram().FractionAbove(age));
  }
  std::printf("\n[paper] E[TTL | age 0] = 3.25 h, E[TTL | age 2 h] = 1.55 h "
              "(for the paper's unpublished 20-object sample)\n");
  return 0;
}
