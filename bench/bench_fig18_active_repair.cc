// Reproduces Fig. 18 (active repair): cumulative price of Scalia versus the
// fixed provider set [S3(h)-S3(l)-Azu] while S3(l) suffers a transient
// failure between hours 60 and 120.
//
// Paper behaviour: Scalia keeps the erasure structure by moving the
// unreachable chunk to another provider (active repair) and migrates back
// after recovery; the static set must stripe new objects over the two
// surviving providers as full replicas (m:1), which costs more.  The
// cumulative-price curves separate during the outage and never re-converge.
#include <cstdio>

#include "bench_util.h"
#include "simx/simulator.h"
#include "workload/backup.h"

int main(int argc, char** argv) {
  using namespace scalia;
  const auto mode = bench::ParseBillingMode(argc, argv);

  workload::BackupParams params;
  params.total_hours = 180;  // 7.5 days
  const simx::ScenarioSpec scenario = workload::BackupScenario(params);
  const simx::SimEnvironment env =
      workload::TransientFailureEnvironment(60, 120);
  simx::SimPolicyConfig config;
  config.price.billing = mode;
  const simx::CostSimulator simulator(config, env);

  const simx::RunResult scalia = simulator.RunScalia(scenario);
  const simx::RunResult fixed =
      simulator.RunStatic(scenario, {"S3(h)", "S3(l)", "Azu"});

  std::printf("==== Fig. 18: cumulative price ($), Scalia vs S3(h)-S3(l)-Azu "
              "(S3(l) down h60-h120, billing=%s) ====\n",
              provider::BillingModeName(mode));
  std::printf("  hour     Scalia($)   S3(h)-S3(l)-Azu($)\n");
  common::Money cum_scalia, cum_fixed;
  for (std::size_t p = 0; p < scenario.num_periods; ++p) {
    cum_scalia += scalia.cost_per_period[p];
    cum_fixed += fixed.cost_per_period[p];
    if (p % 5 == 4 || p + 1 == scenario.num_periods) {
      std::printf("  %4zu   %11.4f   %11.4f\n", p + 1, cum_scalia.usd(),
                  cum_fixed.usd());
    }
  }
  std::printf("\n==== Scalia placement events around the outage ====\n");
  std::size_t shown = 0;
  for (const auto& e : scalia.events) {
    if (e.reason == "initial" && (e.period < 55 || e.period > 125)) continue;
    if (shown++ >= 30) break;
    std::printf("  h%-4zu %-12s %-44s (%s)\n", e.period, e.object.c_str(),
                e.label.c_str(), e.reason.c_str());
  }
  std::printf("  [counters] repairs=%zu migrations=%zu\n", scalia.repairs,
              scalia.migrations);
  std::printf("\n[paper] Scalia cheaper than the fixed set during and after "
              "the outage; fixed set degrades to [S3(h)-Azu; m:1]\n");
  return 0;
}
