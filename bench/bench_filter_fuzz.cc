// Seeded round-trip fuzz of the data-reduction filter pipeline.
//
// Every round draws a payload from a shape generator (uniform random,
// repetitive text, sparse/zero-heavy, a mutated replay of an earlier
// payload — the dedup-hit path — or a boundary size) and a filter stage
// prefix, encodes it through a live Pipeline, and requires the decode to be
// byte-exact.  Encrypted rounds additionally require a wrong-tenant decode
// to fail and a corrupted blob to be rejected.  Any violation prints the
// reproducing (seed, round) pair and exits nonzero, so a nightly failure is
// a one-flag rerun: bench_filter_fuzz --seed S --rounds R.
//
// This is the long-form nightly companion to tests/filter/ — the unit
// suites pin behaviors at fixed seeds; this driver walks fresh seed space
// every night (the workflow passes --seed $(date +%Y%m%d)).
//
// Usage: bench_filter_fuzz [--seed N] [--rounds N] [--max-bytes N]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "filter/dedup_index.h"
#include "filter/pipeline.h"

using namespace scalia;

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t rounds = 2000;
  std::size_t max_bytes = 4 * 1024 * 1024;
};

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      if (const char* v = next()) options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rounds") {
      if (const char* v = next()) {
        options.rounds = std::strtoull(v, nullptr, 10);
      }
    } else if (arg == "--max-bytes") {
      if (const char* v = next()) {
        options.max_bytes = std::strtoul(v, nullptr, 10);
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.rounds == 0 || options.max_bytes == 0) {
    std::fprintf(stderr, "bad options\n");
    std::exit(2);
  }
  return options;
}

std::string RandomPayload(common::Xoshiro256& rng, std::size_t max_bytes) {
  const std::size_t n = rng.NextBounded(max_bytes + 1);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng() & 0xFF);
  return out;
}

std::string RepetitivePayload(common::Xoshiro256& rng, std::size_t max_bytes) {
  const char* words[] = {"storage ", "scalia ", "placement ", "provider ",
                         "chunk ",   "filter ", "dedup "};
  const std::size_t target = rng.NextBounded(max_bytes + 1);
  std::string out;
  while (out.size() < target) out += words[rng.NextBounded(7)];
  out.resize(target);
  return out;
}

std::string SparsePayload(common::Xoshiro256& rng, std::size_t max_bytes) {
  std::string out(rng.NextBounded(max_bytes + 1), '\0');
  for (std::size_t i = 0; i < out.size(); i += 1 + rng.NextBounded(512)) {
    out[i] = static_cast<char>(rng() & 0xFF);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseOptions(argc, argv);
  common::Xoshiro256 rng(options.seed);

  filter::DedupIndex index;
  filter::TenantKeyring keyring;
  keyring.SetTenantSecret("fuzz", "fuzz-secret");
  keyring.SetTenantSecret("other", "other-secret");

  // One pipeline per stage so every round can pick its prefix; they share
  // the index, which also fuzzes cross-stage dedup interleaving.
  const filter::FilterStage stages[] = {
      filter::FilterStage::kNone, filter::FilterStage::kChunk,
      filter::FilterStage::kDedup, filter::FilterStage::kCompress,
      filter::FilterStage::kEncrypt};
  std::vector<std::unique_ptr<filter::Pipeline>> pipelines;
  pipelines.reserve(5);
  for (const filter::FilterStage stage : stages) {
    filter::PipelineConfig config;
    config.policy.default_stage = stage;
    config.seed = options.seed ^ static_cast<std::uint64_t>(stage);
    pipelines.push_back(
        std::make_unique<filter::Pipeline>(config, &index, &keyring));
  }

  std::vector<std::string> corpus;  // replay pool: the dedup-hit path
  std::uint64_t dedup_hits = 0;
  std::uint64_t bytes_fuzzed = 0;

  for (std::uint64_t round = 0; round < options.rounds; ++round) {
    const std::size_t stage_index = rng.NextBounded(5);
    filter::Pipeline& pipeline = *pipelines[stage_index];

    std::string payload;
    switch (rng.NextBounded(6)) {
      case 0: payload = RandomPayload(rng, options.max_bytes); break;
      case 1: payload = RepetitivePayload(rng, options.max_bytes); break;
      case 2: payload = SparsePayload(rng, options.max_bytes); break;
      case 3:  // boundary sizes: empty and single-byte payloads
        payload = rng.NextBounded(2) ? std::string() : std::string(1, 'x');
        break;
      case 4:  // exact replay of an earlier payload: the dedup-hit path
        if (!corpus.empty()) payload = corpus[rng.NextBounded(corpus.size())];
        break;
      default:  // mutated replay: shared prefix, divergent tail
        if (!corpus.empty()) payload = corpus[rng.NextBounded(corpus.size())];
        payload += RandomPayload(rng, 4096);
        break;
    }

    auto encoded = pipeline.Encode("fuzz", "rule", payload);
    if (!encoded.ok()) {
      std::fprintf(stderr,
                   "FUZZ FAIL seed=%llu round=%llu stage=%zu: encode: %s\n",
                   static_cast<unsigned long long>(options.seed),
                   static_cast<unsigned long long>(round), stage_index,
                   encoded.status().ToString().c_str());
      return 1;
    }
    dedup_hits += encoded->dedup_hits;
    bytes_fuzzed += payload.size();

    auto decoded = pipeline.Decode("fuzz", encoded->blob);
    if (!decoded.ok() || *decoded != payload) {
      std::fprintf(stderr,
                   "FUZZ FAIL seed=%llu round=%llu stage=%zu size=%zu: "
                   "decode %s\n",
                   static_cast<unsigned long long>(options.seed),
                   static_cast<unsigned long long>(round), stage_index,
                   payload.size(),
                   decoded.ok() ? "returned different bytes"
                                : decoded.status().ToString().c_str());
      return 1;
    }

    if (stages[stage_index] == filter::FilterStage::kEncrypt &&
        !payload.empty()) {
      if (pipeline.Decode("other", encoded->blob).ok()) {
        std::fprintf(stderr,
                     "FUZZ FAIL seed=%llu round=%llu: wrong-tenant decode "
                     "succeeded\n",
                     static_cast<unsigned long long>(options.seed),
                     static_cast<unsigned long long>(round));
        return 1;
      }
      // Skip flips that clear the 4-byte magic: a blob without it is by
      // design a legacy pass-through (indistinguishable from an object
      // stored before the pipeline existed), not a detectable corruption.
      std::string corrupted = encoded->blob;
      corrupted[rng.NextBounded(corrupted.size())] ^=
          static_cast<char>(1 + rng.NextBounded(255));
      if (auto hostile = pipeline.Decode("fuzz", corrupted);
          filter::Pipeline::IsEncoded(corrupted) && hostile.ok() &&
          *hostile != payload) {
        std::fprintf(stderr,
                     "FUZZ FAIL seed=%llu round=%llu: corrupted blob decoded "
                     "to different bytes\n",
                     static_cast<unsigned long long>(options.seed),
                     static_cast<unsigned long long>(round));
        return 1;
      }
    }

    // Half the refs are released (a deleted version), half retained so the
    // index keeps real cross-round state; bound the replay pool.
    if (rng.NextBounded(2)) {
      pipeline.ReleaseRefs(encoded->refs);
    } else if (corpus.size() < 64) {
      corpus.push_back(std::move(payload));
    }
  }

  std::printf(
      "RESULT suite=bench_filter_fuzz seed=%llu rounds=%llu "
      "bytes_fuzzed=%llu dedup_hits=%llu chunks_live=%zu\n",
      static_cast<unsigned long long>(options.seed),
      static_cast<unsigned long long>(options.rounds),
      static_cast<unsigned long long>(bytes_fuzzed),
      static_cast<unsigned long long>(dedup_hits), index.ChunkCount());
  return 0;
}
