// Extension experiment: read latency through the caching/CDN layers.
//
// §III-B: the caching layer "reduces the requests latency [and] the
// interactions with the storage providers, resulting in lower costs", and
// "can be combined and extended by a CDN to reach even better read
// performance".  The paper leaves latency evaluation to future work; this
// bench quantifies the claim on the gallery-style workload: 200 pictures
// (250 KB, Pareto popularity) striped [S3(h), S3(l), Azu; m:2], read
// 20 000 times from the paper's visitor mix (EU 62 %, NA 27 %, Asia 6 %).
//
// Three serving paths are compared:
//   direct    — every read reassembles m chunks from the providers;
//   broker    — one cache in the EU datacenter (the paper's cache layer);
//   cdn       — per-region edge caches in front of the broker (the CDN
//               extension), TTL 1 h.
//
// Reported per path: mean and p99 latency per region, edge/broker hit
// rates, and origin chunk fetches (the provider-egress cost driver).
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "cache/cdn.h"
#include "cache/lru_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/geo.h"
#include "net/latency.h"
#include "provider/spec.h"

namespace {

using namespace scalia;

struct PathStats {
  std::vector<double> latencies;
  std::size_t origin_fetches = 0;

  void Note(double ms, bool origin) {
    latencies.push_back(ms);
    if (origin) ++origin_fetches;
  }
  [[nodiscard]] double Mean() const {
    double sum = 0.0;
    for (double v : latencies) sum += v;
    return latencies.empty() ? 0.0 : sum / static_cast<double>(latencies.size());
  }
  [[nodiscard]] double P99() {
    if (latencies.empty()) return 0.0;
    auto nth = latencies.begin() +
               static_cast<std::ptrdiff_t>(0.99 * static_cast<double>(
                                                      latencies.size()));
    std::nth_element(latencies.begin(), nth, latencies.end());
    return *nth;
  }
};

}  // namespace

int main() {
  constexpr std::size_t kPictures = 200;
  constexpr std::size_t kReads = 20000;
  constexpr common::Bytes kPictureSize = 250 * common::kKB;

  // The gallery's moderate-popularity tier: [S3(h), S3(l), Azu; m:2].
  std::vector<provider::ProviderSpec> stripe;
  for (const auto& spec : provider::PaperCatalog()) {
    if (spec.id == "S3(h)" || spec.id == "S3(l)" || spec.id == "Azu") {
      stripe.push_back(spec);
    }
  }
  constexpr int kM = 2;

  net::LatencyModel latency;
  latency.set_home_region(net::Region::kEurope);
  const net::TrafficMix mix;

  // Pre-draw the read sequence (region, picture) so every path serves the
  // identical load.
  common::Xoshiro256 rng(2012);
  std::vector<std::pair<net::Region, std::size_t>> sequence;
  sequence.reserve(kReads);
  for (std::size_t r = 0; r < kReads; ++r) {
    const net::Region region = mix.Pick(rng.NextDouble());
    // Truncated Pareto(1) popularity over the pictures, like Fig. 15/16.
    const double u = rng.NextDouble();
    const auto pic = std::min<std::size_t>(
        kPictures - 1,
        static_cast<std::size_t>(1.0 / std::max(1e-9, u) - 1.0));
    sequence.emplace_back(region, pic);
  }

  auto direct_ms = [&](net::Region region) {
    return latency.ObjectReadMs(region, stripe, kM, kPictureSize);
  };

  std::map<net::Region, PathStats> direct, broker, cdn_stats;

  // ---- Path 1: direct chunk reads ----------------------------------------
  for (const auto& [region, pic] : sequence) {
    (void)pic;
    direct[region].Note(direct_ms(region), /*origin=*/true);
  }

  // ---- Path 2: broker cache in the EU datacenter -------------------------
  {
    cache::LruCache broker_cache(64 * common::kMiB);
    for (const auto& [region, pic] : sequence) {
      // Reaching the broker costs the RTT to its (EU) datacenter.
      const double to_broker =
          latency.Link(region, provider::Zone::kEU).rtt_ms;
      const std::string key = "pic" + std::to_string(pic);
      if (broker_cache.Get(key)) {
        broker[region].Note(to_broker, /*origin=*/false);
      } else {
        // Miss: the broker (in the EU) reassembles from the providers.
        const double reassemble = direct_ms(net::Region::kEurope);
        broker_cache.Put(key, std::string(kPictureSize, 'x'));
        broker[region].Note(to_broker + reassemble, /*origin=*/true);
      }
    }
  }

  // ---- Path 3: CDN edges over the broker ---------------------------------
  {
    std::size_t origin_hits = 0;
    cache::LruCache broker_cache(64 * common::kMiB);
    cache::Cdn cdn(
        cache::CdnConfig{.edge_capacity = 16 * common::kMiB,
                         .ttl = common::kHour,
                         .edge_rtt_ms = 8.0},
        [&](net::Region region, const std::string& key) {
          const double to_broker =
              latency.Link(region, provider::Zone::kEU).rtt_ms;
          if (broker_cache.Get(key)) {
            return cache::Cdn::OriginReply{.body = std::string("cached"),
                                           .latency_ms = to_broker};
          }
          ++origin_hits;
          broker_cache.Put(key, std::string(kPictureSize, 'x'));
          return cache::Cdn::OriginReply{
              .body = std::string("fetched"),
              .latency_ms = to_broker + direct_ms(net::Region::kEurope)};
        });
    common::SimTime now = 0;
    std::size_t i = 0;
    for (const auto& [region, pic] : sequence) {
      // ~1 read per simulated second keeps TTL expiry in play.
      now = static_cast<common::SimTime>(i++);
      const auto fetch = cdn.Get(now, region, "pic" + std::to_string(pic));
      cdn_stats[region].Note(fetch.latency_ms, !fetch.edge_hit);
    }
    std::printf("CDN edge stats: hit-rate %.1f %%, origin chunk fetches %zu\n",
                cdn.TotalStats().HitRate() * 100.0, origin_hits);
  }

  std::printf("\n%-8s %-8s %12s %12s %16s\n", "path", "region", "mean_ms",
              "p99_ms", "origin_fetches");
  auto print = [&](const char* path, std::map<net::Region, PathStats>& stats) {
    for (auto& [region, s] : stats) {
      std::printf("%-8s %-8s %12.2f %12.2f %16zu\n", path,
                  std::string(net::RegionName(region)).c_str(), s.Mean(),
                  s.P99(), s.origin_fetches);
    }
  };
  print("direct", direct);
  print("broker", broker);
  print("cdn", cdn_stats);

  std::printf(
      "\n[expected shape] direct pays full provider RTT everywhere; the "
      "broker cache removes chunk reassembly but still charges remote "
      "regions the WAN RTT to the EU datacenter; CDN edges flatten latency "
      "to ~8 ms for every region on hits and cut origin fetches by an order "
      "of magnitude (the §III-B cost claim).\n");
  return 0;
}
