// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/thread_pool.h"
#include "provider/pricing.h"
#include "simx/simulator.h"

namespace scalia::bench {

/// Figure benches accept "--billing=prorated|per-period" (default
/// per-period, the paper's apparent mode; see DESIGN.md §3).
inline provider::StorageBillingMode ParseBillingMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--billing=prorated") == 0) {
      return provider::StorageBillingMode::kProrated;
    }
    if (std::strcmp(argv[i], "--billing=per-period") == 0) {
      return provider::StorageBillingMode::kPerPeriod;
    }
  }
  return provider::StorageBillingMode::kPerPeriod;
}

/// Prints the per-period resource series of a run (Figs. 12/15/17), one row
/// every `stride` periods.
inline void PrintResourceSeries(const simx::RunResult& run,
                                std::size_t stride = 1) {
  std::printf("  hour   storage_GB     bdw_in_GB    bdw_out_GB\n");
  for (std::size_t p = 0; p < run.resources.size(); p += stride) {
    const auto& r = run.resources[p];
    std::printf("  %4zu   %10.6f   %11.6f   %11.6f\n", p, r.storage_gb,
                r.bw_in_gb, r.bw_out_gb);
  }
}

/// Prints the placement-change log of a run.
inline void PrintEvents(const simx::RunResult& run, std::size_t limit = 40) {
  std::size_t shown = 0;
  for (const auto& e : run.events) {
    if (shown++ >= limit) {
      std::printf("  ... (%zu more events)\n", run.events.size() - limit);
      break;
    }
    std::printf("  h%-4zu %-16s %-34s (%s)\n", e.period, e.object.c_str(),
                e.label.c_str(), e.reason.c_str());
  }
  std::printf("  [counters] trend_changes=%zu recomputations=%zu "
              "migrations=%zu repairs=%zu\n",
              run.trend_changes, run.recomputations, run.migrations,
              run.repairs);
}

}  // namespace scalia::bench
