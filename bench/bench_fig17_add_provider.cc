// Reproduces Fig. 17 (adding a public storage provider: total resources)
// and the §IV-D over-cost percentages.
//
// A 40 MB backup object is stored every 5 hours for 600 hours; CheapStor
// (0.09 $/GB storage) registers at hour 400.  Paper reference points:
// Scalia 0.35 % over ideal; the best static placement — which cannot adopt
// the new provider — 7.88 %; the worst static 96.35 %.  Scalia's sets:
// [S3(h)-S3(l)-Azu-Ggl-RS; m:4] before hour 400, then
// [S3(h)-S3(l)-Azu-CheapStor-RS; m:4] with existing objects migrated.
#include <cstdio>

#include "bench_util.h"
#include "simx/overcost.h"
#include "workload/backup.h"

int main(int argc, char** argv) {
  using namespace scalia;
  const auto mode = bench::ParseBillingMode(argc, argv);

  workload::BackupParams params;  // 600 h, 40 MB / 5 h, lock-in 0.5
  const simx::ScenarioSpec scenario = workload::BackupScenario(params);
  const simx::SimEnvironment env = workload::AddProviderEnvironment(400);
  simx::SimPolicyConfig config;
  config.price.billing = mode;
  const simx::CostSimulator simulator(config, env);

  std::printf("==== Fig. 17: Adding a provider — total resources per hour (GB) ====\n");
  const simx::RunResult scalia = simulator.RunScalia(scenario);
  bench::PrintResourceSeries(scalia, /*stride=*/20);

  std::printf("\n==== Scalia placement events around hour 400 ====\n");
  std::size_t shown = 0;
  for (const auto& e : scalia.events) {
    if (e.period < 390 && e.reason == "initial") continue;
    if (shown++ >= 24) break;
    std::printf("  h%-4zu %-12s %-44s (%s)\n", e.period, e.object.c_str(),
                e.label.c_str(), e.reason.c_str());
  }
  std::printf("  [counters] migrations=%zu repairs=%zu\n", scalia.migrations,
              scalia.repairs);

  // Static sets cannot include CheapStor (it did not exist when they were
  // chosen): the 26 sets over the original five providers.
  std::printf("\n==== §IV-D: %% over cost (billing=%s) ====\n",
              provider::BillingModeName(mode));
  const auto table = simx::ComputeOverCost(
      simulator, scenario, simx::Fig13Order(provider::PaperCatalog()),
      &common::ThreadPool::Shared());
  std::printf("%s", simx::FormatOverCostTable(table).c_str());

  std::printf("\n[paper] Scalia 0.35%% | best static [all five; m:4] 7.88%% "
              "| worst static 96.35%%\n");
  return 0;
}
