// Placement-search scaling (§III-A.2).
//
// The paper notes Algorithm 1 is O(2^|P|) — "as there are currently only a
// few (less than 15) cloud storage providers available on the market,
// finding the optimal solution ... is still computationally feasible.  If
// the number of providers increases, then suboptimal solutions have to be
// considered."  This benchmark measures the exact search and the greedy
// heuristic across market sizes, and reports the heuristic's cost gap.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/placement.h"
#include "core/subset_solver.h"

namespace {

using namespace scalia;

std::vector<provider::ProviderSpec> SyntheticMarket(std::size_t n) {
  common::Xoshiro256 rng(991 + n);
  std::vector<provider::ProviderSpec> market;
  for (std::size_t i = 0; i < n; ++i) {
    provider::ProviderSpec spec;
    spec.id = "P" + std::to_string(i);
    spec.description = "synthetic provider";
    spec.sla.durability = 1.0 - rng.NextUniform(1e-9, 1e-4);
    spec.sla.availability = 1.0 - rng.NextUniform(1e-4, 2e-3);
    spec.zones = {provider::Zone::kEU, provider::Zone::kUS};
    spec.pricing.storage_gb_month = rng.NextUniform(0.08, 0.18);
    spec.pricing.bw_in_gb = rng.NextUniform(0.05, 0.12);
    spec.pricing.bw_out_gb = rng.NextUniform(0.12, 0.20);
    spec.pricing.ops_per_1000 = rng.NextUniform(0.0, 0.015);
    market.push_back(std::move(spec));
  }
  return market;
}

core::PlacementRequest Request() {
  core::PlacementRequest request;
  request.rule = core::StorageRule{.name = "bench",
                                   .durability = 0.99999,
                                   .availability = 0.9999,
                                   .allowed_zones = provider::ZoneSet::All(),
                                   .lockin = 0.5,
                                   .ttl_hint = std::nullopt};
  request.object_size = common::kMB;
  request.per_period.storage_gb = 0.001;
  request.per_period.reads = 10.0;
  request.per_period.writes = 1.0;  // periodic refresh: ingress + op / member
  request.per_period.bw_in_gb = 0.001;
  request.per_period.bw_out_gb = 0.01;
  request.per_period.ops = 11.0;
  request.decision_periods = 24;
  return request;
}

void BM_ExhaustiveSearch(benchmark::State& state) {
  const auto market = SyntheticMarket(static_cast<std::size_t>(state.range(0)));
  const core::PlacementSearch search{core::PriceModel{}};
  const auto request = Request();
  for (auto _ : state) {
    auto decision = search.FindBest(market, request);
    benchmark::DoNotOptimize(decision);
  }
  state.counters["sets"] = std::pow(2.0, static_cast<double>(state.range(0)));
}
BENCHMARK(BM_ExhaustiveSearch)->DenseRange(2, 16, 2);

void BM_GreedySearch(benchmark::State& state) {
  const auto market = SyntheticMarket(static_cast<std::size_t>(state.range(0)));
  const core::PlacementSearch search{core::PriceModel{}};
  const auto request = Request();
  for (auto _ : state) {
    auto decision = search.FindBestGreedy(market, request);
    benchmark::DoNotOptimize(decision);
  }
  // Report the heuristic's cost gap vs the exact optimum (computable up to
  // moderate market sizes).
  if (state.range(0) <= 16) {
    const auto exact = search.FindBest(market, request);
    const auto greedy = search.FindBestGreedy(market, request);
    if (exact.feasible && greedy.feasible &&
        exact.expected_cost.usd() > 0.0) {
      state.counters["gap_pct"] =
          (greedy.expected_cost.usd() - exact.expected_cost.usd()) /
          exact.expected_cost.usd() * 100.0;
    }
  }
}
BENCHMARK(BM_GreedySearch)->DenseRange(2, 16, 2)->DenseRange(20, 40, 10);

// A write/storage-dominated profile (nightly 40 MB backup): every member
// of a candidate set pays real ingress and per-write operations, which is
// exactly what the branch-and-bound lower bound accumulates.
core::PlacementRequest ColdBackupRequest() {
  core::PlacementRequest request;
  request.rule = core::StorageRule{.name = "bench-cold",
                                   .durability = 0.99999,
                                   .availability = 0.9999,
                                   .allowed_zones = provider::ZoneSet::All(),
                                   .lockin = 0.5,
                                   .ttl_hint = std::nullopt};
  request.object_size = 40 * common::kMB;
  request.per_period.storage_gb = 0.04;
  request.per_period.writes = 1.0;
  request.per_period.bw_in_gb = 0.04;
  request.per_period.ops = 1.0;
  request.decision_periods = 24;
  return request;
}

// Exact branch-and-bound (core/subset_solver.h): identical results to the
// exhaustive search; the counters show how much of the 2^|P| tree the
// additive lower bound discards.  Pruning power depends on the cost
// structure: read-dominated objects (range arg 0) concentrate cost on m
// providers and bound weakly; write/storage-dominated objects (arg 1) pay
// per member and prune hard.
void BM_BranchAndBound(benchmark::State& state) {
  const auto market = SyntheticMarket(static_cast<std::size_t>(state.range(0)));
  const core::SubsetSolver solver{core::PriceModel{}};
  const auto request = state.range(1) == 0 ? Request() : ColdBackupRequest();
  core::SolverStats stats;
  for (auto _ : state) {
    auto decision = solver.FindBestBranchAndBound(market, request, &stats);
    benchmark::DoNotOptimize(decision);
  }
  state.counters["evaluated"] = static_cast<double>(stats.sets_evaluated);
  state.counters["pruned"] = static_cast<double>(stats.nodes_pruned);
  state.counters["full_tree"] =
      std::pow(2.0, static_cast<double>(state.range(0))) - 1.0;
}
BENCHMARK(BM_BranchAndBound)
    ->ArgsProduct({{4, 8, 12, 16}, {0, 1}})
    ->Args({20, 1});

// Polynomial DP heuristic (the knapsack-style algorithm the paper sketches
// and omits, §III-A.2): gap vs the exact optimum where the latter is
// computable.
void BM_DpHeuristic(benchmark::State& state) {
  const auto market = SyntheticMarket(static_cast<std::size_t>(state.range(0)));
  const core::SubsetSolver solver{core::PriceModel{}};
  const core::PlacementSearch search{core::PriceModel{}};
  const auto request = Request();
  for (auto _ : state) {
    auto decision = solver.FindBestDp(market, request);
    benchmark::DoNotOptimize(decision);
  }
  if (state.range(0) <= 16) {
    const auto exact = search.FindBest(market, request);
    const auto dp = solver.FindBestDp(market, request);
    if (exact.feasible && dp.feasible && exact.expected_cost.usd() > 0.0) {
      state.counters["gap_pct"] =
          (dp.expected_cost.usd() - exact.expected_cost.usd()) /
          exact.expected_cost.usd() * 100.0;
    }
  }
}
BENCHMARK(BM_DpHeuristic)->DenseRange(2, 16, 2)->DenseRange(20, 40, 10);

// Exact search over the threshold-flexible space (FindBestFlexible): one
// branch-and-bound per m with exact per-member base costs.  Despite the
// larger design space (every (subset, m) pair), the tight bound makes it
// the fastest exact solver here.
void BM_FlexibleExact(benchmark::State& state) {
  const auto market = SyntheticMarket(static_cast<std::size_t>(state.range(0)));
  const core::SubsetSolver solver{core::PriceModel{}};
  const auto request = state.range(1) == 0 ? Request() : ColdBackupRequest();
  core::SolverStats stats;
  for (auto _ : state) {
    auto decision = solver.FindBestFlexible(market, request, &stats);
    benchmark::DoNotOptimize(decision);
  }
  state.counters["evaluated"] = static_cast<double>(stats.sets_evaluated);
  state.counters["pruned"] = static_cast<double>(stats.nodes_pruned);
}
BENCHMARK(BM_FlexibleExact)
    ->ArgsProduct({{4, 8, 12, 16, 20}, {0, 1}});

// The submaximal-threshold extension: how much the richer design space
// (committing to m below the durability-maximal threshold) saves on an
// egress-heavy object.
void BM_DpSubmaximalThreshold(benchmark::State& state) {
  const auto market = SyntheticMarket(static_cast<std::size_t>(state.range(0)));
  const core::SubsetSolver solver{core::PriceModel{}};
  auto request = Request();
  request.per_period.reads = 150.0;
  request.per_period.bw_out_gb = 0.15;
  request.per_period.ops = 150.0;
  core::SubsetSolver::DpOptions flexible{.allow_submaximal_threshold = true};
  for (auto _ : state) {
    auto decision = solver.FindBestDp(market, request, nullptr, flexible);
    benchmark::DoNotOptimize(decision);
  }
  const auto parity = solver.FindBestDp(market, request);
  const auto flex = solver.FindBestDp(market, request, nullptr, flexible);
  if (parity.feasible && flex.feasible && parity.expected_cost.usd() > 0.0) {
    state.counters["saving_pct"] =
        (parity.expected_cost.usd() - flex.expected_cost.usd()) /
        parity.expected_cost.usd() * 100.0;
  }
}
BENCHMARK(BM_DpSubmaximalThreshold)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
