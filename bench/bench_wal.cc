// WAL append throughput: synchronous appends vs group commit.
//
// The engine journals every metadata mutation, so WAL append cost bounds
// the write path.  This bench measures appends/s for (a) synchronous
// appends (one write+flush per record) and (b) group commit (concurrent
// appenders batched by the committer thread), across appender counts.
// fsync is off so the numbers measure the batching machinery, not the
// device (matching how the simulation harnesses run).
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "durability/wal.h"

using namespace scalia;

namespace {

constexpr std::size_t kRecords = 20000;
constexpr std::size_t kPayloadBytes = 256;

double AppendsPerSecond(durability::Wal& wal, std::size_t appenders) {
  const std::string payload(kPayloadBytes, 'x');
  const std::size_t per_thread = kRecords / appenders;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(appenders);
  for (std::size_t t = 0; t < appenders; ++t) {
    threads.emplace_back([&wal, &payload, per_thread] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        if (!wal.Append(payload).ok()) return;
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(per_thread * appenders) / elapsed.count();
}

}  // namespace

int main() {
  const auto dir = std::filesystem::temp_directory_path() / "scalia-bench-wal";

  std::printf("==== WAL append throughput (%zu records x %zu B) ====\n",
              kRecords, kPayloadBytes);
  std::printf("  %-22s %10s %15s\n", "mode", "appenders", "appends/s");

  for (const std::size_t appenders : {1, 2, 4, 8}) {
    std::filesystem::remove_all(dir);
    durability::WalConfig config;
    config.dir = dir.string();
    config.sync_on_commit = false;
    auto wal = durability::Wal::Open(config);
    if (!wal.ok()) {
      std::fprintf(stderr, "open: %s\n", wal.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-22s %10zu %15.0f\n", "synchronous", appenders,
                AppendsPerSecond(**wal, appenders));
  }

  for (const std::size_t appenders : {1, 2, 4, 8}) {
    std::filesystem::remove_all(dir);
    durability::WalConfig config;
    config.dir = dir.string();
    config.sync_on_commit = false;
    common::ThreadPool commit_pool(1);
    auto wal = durability::Wal::Open(config, &commit_pool);
    if (!wal.ok()) {
      std::fprintf(stderr, "open: %s\n", wal.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-22s %10zu %15.0f\n", "group-commit", appenders,
                AppendsPerSecond(**wal, appenders));
    (*wal)->Close();
  }

  std::filesystem::remove_all(dir);
  return 0;
}
