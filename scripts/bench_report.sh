#!/usr/bin/env bash
# Perf-trajectory datapoint: runs bench_catalog and bench_placement_scaling
# and emits BENCH_PR2.json (schema documented in BUILD.md, "Bench report").
#
# Usage: scripts/bench_report.sh [output.json]   (default: BENCH_PR2.json)
# Env:   BUILD_DIR=build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_PR2.json}

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
# bench_placement_scaling needs Google Benchmark and is skipped (with a
# configure-time warning) when it is absent; build whatever exists.
cmake --build "$BUILD_DIR" -j --target bench_catalog >/dev/null
if ! cmake --build "$BUILD_DIR" -j --target bench_placement_scaling >/dev/null 2>&1; then
  echo "note: bench_placement_scaling unavailable (Google Benchmark not found)" >&2
fi

now_ms() { date +%s%3N; }

# --- bench_catalog: wall clock only (it prints configuration tables; there
# --- is no object-throughput figure to extract).
CATALOG_START=$(now_ms)
"$BUILD_DIR/bench/bench_catalog" >/dev/null
CATALOG_MS=$(( $(now_ms) - CATALOG_START ))

# --- bench_placement_scaling: wall clock + placement throughput from the
# --- Google Benchmark JSON (objects placed per second = 1e9 / real_time ns
# --- of the largest exact-search case, BM_ExhaustiveSearch/16).
SCALING_MS=null
SCALING_OBJ_S=null
SCALING_SKIPPED=true
if [[ -x "$BUILD_DIR/bench/bench_placement_scaling" ]]; then
  SCALING_SKIPPED=false
  GBENCH_JSON=$(mktemp)
  trap 'rm -f "$GBENCH_JSON"' EXIT
  SCALING_START=$(now_ms)
  # (unsuffixed --benchmark_min_time: the packaged Google Benchmark predates
  # the "0.05s" duration syntax)
  "$BUILD_DIR/bench/bench_placement_scaling" \
    --benchmark_format=json --benchmark_min_time=0.05 \
    >"$GBENCH_JSON" 2>/dev/null
  SCALING_MS=$(( $(now_ms) - SCALING_START ))
  SCALING_OBJ_S=$(python3 - "$GBENCH_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
best = None
for bench in data.get("benchmarks", []):
    if bench.get("name") == "BM_ExhaustiveSearch/16":
        best = 1e9 / bench["real_time"]
print(f"{best:.2f}" if best is not None else "null")
EOF
)
fi

cat >"$OUT" <<EOF
{
  "schema": "scalia-bench-report/1",
  "generated_by": "scripts/bench_report.sh",
  "suites": [
    {
      "suite": "bench_catalog",
      "wall_ms": $CATALOG_MS,
      "objects_per_s": null,
      "skipped": false
    },
    {
      "suite": "bench_placement_scaling",
      "wall_ms": $SCALING_MS,
      "objects_per_s": $SCALING_OBJ_S,
      "skipped": $SCALING_SKIPPED
    }
  ]
}
EOF
echo "wrote $OUT"
