#!/usr/bin/env bash
# Perf-trajectory datapoint: runs bench_catalog, bench_placement_scaling and
# bench_server_throughput — the latter twice, optimizer off and with live
# migration enabled (--optimize-every) — and emits BENCH_PR4.json (schema
# scalia-bench-report/3, documented in BUILD.md, "Bench report").
#
# Usage: scripts/bench_report.sh [output.json]   (default: BENCH_PR4.json)
# Env:   BUILD_DIR=build
#        SERVER_BENCH_ARGS="--connections 16 --duration-s 5"  (override)
#        OPTIMIZE_BENCH_ARGS="--optimize-every 1 --period-ms 500"  (override)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_PR4.json}
SERVER_BENCH_ARGS=${SERVER_BENCH_ARGS:---connections 16 --duration-s 5 --object-bytes 1024,4096}
OPTIMIZE_BENCH_ARGS=${OPTIMIZE_BENCH_ARGS:---optimize-every 1 --period-ms 500}

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
# bench_placement_scaling needs Google Benchmark and is skipped (with a
# configure-time warning) when it is absent; build whatever exists.
cmake --build "$BUILD_DIR" -j --target bench_catalog bench_server_throughput >/dev/null
if ! cmake --build "$BUILD_DIR" -j --target bench_placement_scaling >/dev/null 2>&1; then
  echo "note: bench_placement_scaling unavailable (Google Benchmark not found)" >&2
fi

now_ms() { date +%s%3N; }

# --- bench_catalog: wall clock only (it prints configuration tables; there
# --- is no object-throughput figure to extract).
CATALOG_START=$(now_ms)
"$BUILD_DIR/bench/bench_catalog" >/dev/null
CATALOG_MS=$(( $(now_ms) - CATALOG_START ))

# --- bench_placement_scaling: wall clock + placement throughput from the
# --- Google Benchmark JSON (objects placed per second = 1e9 / real_time ns
# --- of the largest exact-search case, BM_ExhaustiveSearch/16).
SCALING_MS=null
SCALING_OBJ_S=null
SCALING_SKIPPED=true
if [[ -x "$BUILD_DIR/bench/bench_placement_scaling" ]]; then
  SCALING_SKIPPED=false
  GBENCH_JSON=$(mktemp)
  trap 'rm -f "$GBENCH_JSON"' EXIT
  SCALING_START=$(now_ms)
  # (unsuffixed --benchmark_min_time: the packaged Google Benchmark predates
  # the "0.05s" duration syntax)
  "$BUILD_DIR/bench/bench_placement_scaling" \
    --benchmark_format=json --benchmark_min_time=0.05 \
    >"$GBENCH_JSON" 2>/dev/null
  SCALING_MS=$(( $(now_ms) - SCALING_START ))
  SCALING_OBJ_S=$(python3 - "$GBENCH_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
best = None
for bench in data.get("benchmarks", []):
    if bench.get("name") == "BM_ExhaustiveSearch/16":
        best = 1e9 / bench["real_time"]
print(f"{best:.2f}" if best is not None else "null")
EOF
)
fi

# --- bench_server_throughput: loopback closed-loop load generation; the
# --- RESULT line carries req/s + latency percentiles.  Two runs: optimizer
# --- off (baseline) and live migration enabled, so the report shows what
# --- adaptation costs under load.
result_field() {  # result_field <result-line> <key> -> value (or null)
  local v
  v=$(sed -n "s/.*[[:space:]]$2=\([^[:space:]]*\).*/\1/p" <<<"$1")
  echo "${v:-null}"
}
run_server_bench() {  # run_server_bench <extra-args...>; sets RESULT/MS
  local start
  start=$(now_ms)
  # The bench exits 1 when errors>0; the report must still capture that run
  # (the errors field exists precisely for it), so don't let set -e abort.
  # shellcheck disable=SC2086
  SERVER_RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" "$@" || true; } | grep '^RESULT ' || true)
  SERVER_MS=$(( $(now_ms) - start ))
  if [[ -z "$SERVER_RESULT" ]]; then
    echo "note: bench_server_throughput produced no RESULT line" >&2
  fi
}

# shellcheck disable=SC2086
run_server_bench $SERVER_BENCH_ARGS
BASE_RESULT=$SERVER_RESULT; BASE_MS=$SERVER_MS
BASE_SKIPPED=false; [[ -z "$BASE_RESULT" ]] && BASE_SKIPPED=true

# shellcheck disable=SC2086
run_server_bench $SERVER_BENCH_ARGS $OPTIMIZE_BENCH_ARGS
OPT_RESULT=$SERVER_RESULT; OPT_MS=$SERVER_MS
OPT_SKIPPED=false; [[ -z "$OPT_RESULT" ]] && OPT_SKIPPED=true

cat >"$OUT" <<EOF
{
  "schema": "scalia-bench-report/3",
  "generated_by": "scripts/bench_report.sh",
  "suites": [
    {
      "suite": "bench_catalog",
      "wall_ms": $CATALOG_MS,
      "objects_per_s": null,
      "skipped": false
    },
    {
      "suite": "bench_placement_scaling",
      "wall_ms": $SCALING_MS,
      "objects_per_s": $SCALING_OBJ_S,
      "skipped": $SCALING_SKIPPED
    },
    {
      "suite": "bench_server_throughput",
      "wall_ms": $BASE_MS,
      "req_per_s": $(result_field "$BASE_RESULT" req_per_s),
      "p50_us": $(result_field "$BASE_RESULT" p50_us),
      "p95_us": $(result_field "$BASE_RESULT" p95_us),
      "p99_us": $(result_field "$BASE_RESULT" p99_us),
      "errors": $(result_field "$BASE_RESULT" errors),
      "optimize_every": 0,
      "migrations": 0,
      "conflicts": 0,
      "skipped": $BASE_SKIPPED
    },
    {
      "suite": "bench_server_throughput_optimized",
      "wall_ms": $OPT_MS,
      "req_per_s": $(result_field "$OPT_RESULT" req_per_s),
      "p50_us": $(result_field "$OPT_RESULT" p50_us),
      "p95_us": $(result_field "$OPT_RESULT" p95_us),
      "p99_us": $(result_field "$OPT_RESULT" p99_us),
      "errors": $(result_field "$OPT_RESULT" errors),
      "optimize_every": $(result_field "$OPT_RESULT" optimize_every),
      "migrations": $(result_field "$OPT_RESULT" migrations),
      "conflicts": $(result_field "$OPT_RESULT" conflicts),
      "skipped": $OPT_SKIPPED
    }
  ]
}
EOF
echo "wrote $OUT"
