#!/usr/bin/env bash
# Perf-trajectory datapoint: runs bench_catalog, bench_placement_scaling and
# bench_server_throughput (the loopback TCP serving loop) and emits
# BENCH_PR3.json (schema documented in BUILD.md, "Bench report").
#
# Usage: scripts/bench_report.sh [output.json]   (default: BENCH_PR3.json)
# Env:   BUILD_DIR=build
#        SERVER_BENCH_ARGS="--connections 16 --duration-s 5"  (override)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_PR3.json}
SERVER_BENCH_ARGS=${SERVER_BENCH_ARGS:---connections 16 --duration-s 5 --object-bytes 1024,4096}

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
# bench_placement_scaling needs Google Benchmark and is skipped (with a
# configure-time warning) when it is absent; build whatever exists.
cmake --build "$BUILD_DIR" -j --target bench_catalog bench_server_throughput >/dev/null
if ! cmake --build "$BUILD_DIR" -j --target bench_placement_scaling >/dev/null 2>&1; then
  echo "note: bench_placement_scaling unavailable (Google Benchmark not found)" >&2
fi

now_ms() { date +%s%3N; }

# --- bench_catalog: wall clock only (it prints configuration tables; there
# --- is no object-throughput figure to extract).
CATALOG_START=$(now_ms)
"$BUILD_DIR/bench/bench_catalog" >/dev/null
CATALOG_MS=$(( $(now_ms) - CATALOG_START ))

# --- bench_placement_scaling: wall clock + placement throughput from the
# --- Google Benchmark JSON (objects placed per second = 1e9 / real_time ns
# --- of the largest exact-search case, BM_ExhaustiveSearch/16).
SCALING_MS=null
SCALING_OBJ_S=null
SCALING_SKIPPED=true
if [[ -x "$BUILD_DIR/bench/bench_placement_scaling" ]]; then
  SCALING_SKIPPED=false
  GBENCH_JSON=$(mktemp)
  trap 'rm -f "$GBENCH_JSON"' EXIT
  SCALING_START=$(now_ms)
  # (unsuffixed --benchmark_min_time: the packaged Google Benchmark predates
  # the "0.05s" duration syntax)
  "$BUILD_DIR/bench/bench_placement_scaling" \
    --benchmark_format=json --benchmark_min_time=0.05 \
    >"$GBENCH_JSON" 2>/dev/null
  SCALING_MS=$(( $(now_ms) - SCALING_START ))
  SCALING_OBJ_S=$(python3 - "$GBENCH_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
best = None
for bench in data.get("benchmarks", []):
    if bench.get("name") == "BM_ExhaustiveSearch/16":
        best = 1e9 / bench["real_time"]
print(f"{best:.2f}" if best is not None else "null")
EOF
)
fi

# --- bench_server_throughput: loopback closed-loop load generation; the
# --- RESULT line carries req/s + latency percentiles.
SERVER_START=$(now_ms)
# The bench exits 1 when errors>0; the report must still capture that run
# (the errors field exists precisely for it), so don't let set -e abort.
# shellcheck disable=SC2086
SERVER_RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" $SERVER_BENCH_ARGS || true; } | grep '^RESULT ' || true)
SERVER_MS=$(( $(now_ms) - SERVER_START ))
result_field() {  # result_field <key> -> value (or null)
  local v
  v=$(sed -n "s/.*[[:space:]]$1=\([^[:space:]]*\).*/\1/p" <<<"$SERVER_RESULT")
  echo "${v:-null}"
}
SERVER_REQ_S=$(result_field req_per_s)
SERVER_P50=$(result_field p50_us)
SERVER_P95=$(result_field p95_us)
SERVER_P99=$(result_field p99_us)
SERVER_ERRORS=$(result_field errors)
SERVER_SKIPPED=false
if [[ -z "$SERVER_RESULT" ]]; then
  echo "note: bench_server_throughput produced no RESULT line" >&2
  SERVER_SKIPPED=true
fi

cat >"$OUT" <<EOF
{
  "schema": "scalia-bench-report/2",
  "generated_by": "scripts/bench_report.sh",
  "suites": [
    {
      "suite": "bench_catalog",
      "wall_ms": $CATALOG_MS,
      "objects_per_s": null,
      "skipped": false
    },
    {
      "suite": "bench_placement_scaling",
      "wall_ms": $SCALING_MS,
      "objects_per_s": $SCALING_OBJ_S,
      "skipped": $SCALING_SKIPPED
    },
    {
      "suite": "bench_server_throughput",
      "wall_ms": $SERVER_MS,
      "req_per_s": $SERVER_REQ_S,
      "p50_us": $SERVER_P50,
      "p95_us": $SERVER_P95,
      "p99_us": $SERVER_P99,
      "errors": $SERVER_ERRORS,
      "skipped": $SERVER_SKIPPED
    }
  ]
}
EOF
echo "wrote $OUT"
