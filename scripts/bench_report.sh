#!/usr/bin/env bash
# Perf-trajectory datapoint: runs bench_catalog, bench_placement_scaling and
# bench_server_throughput — the latter four times: optimizer off (the
# 1-shard baseline), with live migration enabled (--optimize-every), and
# sharded (--shards 8 --threads 8, with and without the optimizer) so the
# report records the multi-core scaling curve next to the adaptation cost.
# Schema 5 (PR 6) adds the `loops` field: event loops the server ran
# (--loops; defaults to the shard count), the third scaling dimension.
# Schema 6 (PR 7) adds a bench_server_chaos suite: the same loopback load
# with a fault plan active (--chaos), recording the SLO fields —
# availability_pct (non-5xx fraction), durability_pct (acked PUTs readable
# after the storm), degraded_reads/reconstructions, and p99 under brownout.
# Schema 7 (PR 8) adds a bench_server_day suite: the compressed diurnal+
# flash day replay (--day) with the adaptive-capacity figures —
# slo_attainment (fraction of periods meeting the p99 target),
# shed_requests/probe_admissions (SLO admission control), scale_events
# (capacity-controller resizes), and peak vs. trough throughput.
# Schema 8 (PR 10) adds a bench_server_filtered suite: the sharded load
# with the data-reduction filter pipeline on (--filters encrypt = the full
# chunk+dedup+compress+encrypt prefix), recording reduction_ratio
# (aggregate stored/raw bytes) and dedup_hits next to the serving figures,
# so the bench gate can hold the reduction the pipeline claims.
#
# The output schema is an argument (--schema), not a hardcoded constant, so
# the CI bench gate (scripts/bench_gate.sh) can parse reports from any PR;
# RESULT lines are validated before their fields reach the JSON — a bench
# that prints a malformed line is recorded as skipped, never as NaN soup.
# Schemas < 6 omit the chaos suite; schemas < 7 omit the day suite;
# schemas < 8 omit the filtered suite.
#
# Usage: scripts/bench_report.sh [--schema N|NAME/N] [output.json]
#        (default schema: scalia-bench-report/8, output: BENCH_PR10.json)
# Env:   BUILD_DIR=build
#        SERVER_BENCH_ARGS="--connections 16 --duration-s 5"  (override)
#        OPTIMIZE_BENCH_ARGS="--optimize-every 1 --period-ms 500"  (override)
#        SHARDED_BENCH_ARGS="--shards 8 --threads 8"  (override)
#        CHAOS_BENCH_ARGS="--connections 8 --duration-s 8 --chaos bench/chaos_default.plan"
#        DAY_BENCH_ARGS="--connections 8 --day default --periods 12 --period-ms 800 ..."
#        FILTERED_BENCH_ARGS="--shards 4 --threads 4 --filters encrypt ..."
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SCHEMA="scalia-bench-report/8"
OUT=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --schema)
      [[ $# -ge 2 ]] || { echo "--schema needs a value" >&2; exit 2; }
      SCHEMA="$2"; shift 2
      # Bare number: expand to the canonical name.
      [[ "$SCHEMA" =~ ^[0-9]+$ ]] && SCHEMA="scalia-bench-report/$SCHEMA"
      ;;
    --help)
      sed -n '2,36p' "$0"; exit 0 ;;
    -*)
      echo "unknown flag: $1" >&2; exit 2 ;;
    *)
      OUT="$1"; shift ;;
  esac
done
OUT=${OUT:-BENCH_PR10.json}
SERVER_BENCH_ARGS=${SERVER_BENCH_ARGS:---connections 16 --duration-s 5 --object-bytes 1024,4096}
OPTIMIZE_BENCH_ARGS=${OPTIMIZE_BENCH_ARGS:---optimize-every 1 --period-ms 500}
SHARDED_BENCH_ARGS=${SHARDED_BENCH_ARGS:---shards 8 --threads 8}
CHAOS_BENCH_ARGS=${CHAOS_BENCH_ARGS:---connections 8 --duration-s 8 --chaos bench/chaos_default.plan}
DAY_BENCH_ARGS=${DAY_BENCH_ARGS:---connections 8 --shards 4 --threads 4 --day default --period-ms 500 --day-peak-rps 2000 --slo-p99-ms 50 --object-bytes 1024}
FILTERED_BENCH_ARGS=${FILTERED_BENCH_ARGS:---connections 8 --duration-s 5 --shards 4 --threads 4 --filters encrypt --object-bytes 1024,4096}
# The chaos suite exists from schema 6 on, the day suite from schema 7 on,
# the filtered suite from schema 8 on.
SCHEMA_N=${SCHEMA##*/}

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
# bench_placement_scaling needs Google Benchmark and is skipped (with a
# configure-time warning) when it is absent; build whatever exists.
cmake --build "$BUILD_DIR" -j --target bench_catalog bench_server_throughput >/dev/null
if ! cmake --build "$BUILD_DIR" -j --target bench_placement_scaling >/dev/null 2>&1; then
  echo "note: bench_placement_scaling unavailable (Google Benchmark not found)" >&2
fi

now_ms() { date +%s%3N; }

# --- bench_catalog: wall clock only (it prints configuration tables; there
# --- is no object-throughput figure to extract).
CATALOG_START=$(now_ms)
"$BUILD_DIR/bench/bench_catalog" >/dev/null
CATALOG_MS=$(( $(now_ms) - CATALOG_START ))

# --- bench_placement_scaling: wall clock + placement throughput from the
# --- Google Benchmark JSON (objects placed per second = 1e9 / real_time ns
# --- of the largest exact-search case, BM_ExhaustiveSearch/16).
SCALING_MS=null
SCALING_OBJ_S=null
SCALING_SKIPPED=true
if [[ -x "$BUILD_DIR/bench/bench_placement_scaling" ]]; then
  SCALING_SKIPPED=false
  GBENCH_JSON=$(mktemp)
  trap 'rm -f "$GBENCH_JSON"' EXIT
  SCALING_START=$(now_ms)
  # (unsuffixed --benchmark_min_time: the packaged Google Benchmark predates
  # the "0.05s" duration syntax)
  "$BUILD_DIR/bench/bench_placement_scaling" \
    --benchmark_format=json --benchmark_min_time=0.05 \
    >"$GBENCH_JSON" 2>/dev/null
  SCALING_MS=$(( $(now_ms) - SCALING_START ))
  SCALING_OBJ_S=$(python3 - "$GBENCH_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
best = None
for bench in data.get("benchmarks", []):
    if bench.get("name") == "BM_ExhaustiveSearch/16":
        best = 1e9 / bench["real_time"]
print(f"{best:.2f}" if best is not None else "null")
EOF
)
fi

# --- bench_server_throughput: loopback closed-loop load generation; the
# --- RESULT line carries req/s + latency percentiles + shard/thread counts.
result_field() {  # result_field <result-line> <key> -> value (or null)
  local v
  v=$(sed -n "s/.*[[:space:]]$2=\([^[:space:]]*\).*/\1/p" <<<"$1")
  echo "${v:-null}"
}
# A RESULT line is usable only when every numeric field the report emits
# actually parses as a number; anything else records the run as skipped.
validate_result() {  # validate_result <result-line> -> 0 ok / 1 bad
  local line=$1 key value
  [[ "$line" == RESULT\ suite=bench_server_throughput* ]] || return 1
  for key in requests elapsed_s req_per_s p50_us p95_us p99_us errors \
             optimize_every migrations conflicts shards threads loops; do
    value=$(result_field "$line" "$key")
    [[ "$value" =~ ^[0-9]+(\.[0-9]+)?$ ]] || {
      echo "note: RESULT field $key=\"$value\" is not numeric; run skipped" >&2
      return 1
    }
  done
  return 0
}
# A filtered run is the standard throughput line plus the data-reduction
# fields; `filters` itself is a stage name, so it is checked as an enum
# rather than a number.
validate_filtered_result() {  # validate_filtered_result <line> -> 0 ok / 1 bad
  local line=$1 key value
  validate_result "$line" || return 1
  value=$(result_field "$line" filters)
  [[ "$value" =~ ^(none|chunk|dedup|compress|encrypt)$ ]] || {
    echo "note: RESULT field filters=\"$value\" is not a stage; run skipped" >&2
    return 1
  }
  for key in reduction_ratio dedup_hits; do
    value=$(result_field "$line" "$key")
    [[ "$value" =~ ^[0-9]+(\.[0-9]+)?$ ]] || {
      echo "note: RESULT field $key=\"$value\" is not numeric; run skipped" >&2
      return 1
    }
  done
  return 0
}
# The day RESULT line carries the adaptive-capacity fields; note it has no
# optimize_every (the capacity controller owns the cadence mid-run).
validate_day_result() {  # validate_day_result <result-line> -> 0 ok / 1 bad
  local line=$1 key value
  [[ "$line" == RESULT\ suite=bench_server_day* ]] || return 1
  for key in requests elapsed_s req_per_s p50_us p95_us p99_us errors \
             shards threads loops periods period_ms slo_p99_ms \
             slo_attainment shed_requests probe_admissions shed_escalations \
             scale_events peak_req_per_s trough_req_per_s durability_pct \
             acked_objects migrations conflicts; do
    value=$(result_field "$line" "$key")
    [[ "$value" =~ ^[0-9]+(\.[0-9]+)?$ ]] || {
      echo "note: day RESULT field $key=\"$value\" is not numeric; run skipped" >&2
      return 1
    }
  done
  return 0
}
# The chaos RESULT line carries the SLO fields on top of the standard ones.
validate_chaos_result() {  # validate_chaos_result <result-line> -> 0 ok / 1 bad
  local line=$1 key value
  [[ "$line" == RESULT\ suite=bench_server_chaos* ]] || return 1
  for key in requests elapsed_s req_per_s p50_us p95_us p99_us errors \
             optimize_every migrations conflicts shards threads loops \
             availability_pct durability_pct acked_objects unavailable \
             degraded_reads reconstructions repairs faults_injected \
             p99_storm_us; do
    value=$(result_field "$line" "$key")
    [[ "$value" =~ ^[0-9]+(\.[0-9]+)?$ ]] || {
      echo "note: chaos RESULT field $key=\"$value\" is not numeric; run skipped" >&2
      return 1
    }
  done
  return 0
}
run_server_bench() {  # run_server_bench <extra-args...>; sets RESULT/MS
  local start
  start=$(now_ms)
  # The bench exits 1 when errors>0; the report must still capture that run
  # (the errors field exists precisely for it), so don't let set -e abort.
  # shellcheck disable=SC2086
  SERVER_RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" "$@" || true; } | grep '^RESULT ' || true)
  SERVER_MS=$(( $(now_ms) - start ))
  if [[ -z "$SERVER_RESULT" ]]; then
    echo "note: bench_server_throughput produced no RESULT line" >&2
  elif ! validate_result "$SERVER_RESULT"; then
    SERVER_RESULT=""
  fi
}
# Emits one bench_server_throughput suite object (sans trailing comma).
emit_server_suite() {  # emit_server_suite <name> <result-line> <wall-ms>
  local name=$1 line=$2 wall=$3 skipped=false
  [[ -z "$line" ]] && skipped=true
  cat <<EOF
    {
      "suite": "$name",
      "wall_ms": $wall,
      "req_per_s": $(result_field "$line" req_per_s),
      "p50_us": $(result_field "$line" p50_us),
      "p95_us": $(result_field "$line" p95_us),
      "p99_us": $(result_field "$line" p99_us),
      "errors": $(result_field "$line" errors),
      "optimize_every": $(result_field "$line" optimize_every),
      "migrations": $(result_field "$line" migrations),
      "conflicts": $(result_field "$line" conflicts),
      "shards": $(result_field "$line" shards),
      "threads": $(result_field "$line" threads),
      "loops": $(result_field "$line" loops),
      "skipped": $skipped
    }
EOF
}
# The filtered suite object: serving fields plus the data-reduction block.
emit_filtered_suite() {  # emit_filtered_suite <result-line> <wall-ms>
  local line=$1 wall=$2 skipped=false filters_value
  [[ -z "$line" ]] && skipped=true
  filters_value=$(result_field "$line" filters)
  cat <<EOF
    {
      "suite": "bench_server_filtered",
      "wall_ms": $wall,
      "req_per_s": $(result_field "$line" req_per_s),
      "p50_us": $(result_field "$line" p50_us),
      "p95_us": $(result_field "$line" p95_us),
      "p99_us": $(result_field "$line" p99_us),
      "errors": $(result_field "$line" errors),
      "optimize_every": $(result_field "$line" optimize_every),
      "migrations": $(result_field "$line" migrations),
      "conflicts": $(result_field "$line" conflicts),
      "shards": $(result_field "$line" shards),
      "threads": $(result_field "$line" threads),
      "loops": $(result_field "$line" loops),
      "filters": "$filters_value",
      "reduction_ratio": $(result_field "$line" reduction_ratio),
      "dedup_hits": $(result_field "$line" dedup_hits),
      "skipped": $skipped
    }
EOF
}
# The chaos suite object: standard serving fields plus the SLO block.
emit_chaos_suite() {  # emit_chaos_suite <result-line> <wall-ms>
  local line=$1 wall=$2 skipped=false
  [[ -z "$line" ]] && skipped=true
  cat <<EOF
    {
      "suite": "bench_server_chaos",
      "wall_ms": $wall,
      "req_per_s": $(result_field "$line" req_per_s),
      "p50_us": $(result_field "$line" p50_us),
      "p95_us": $(result_field "$line" p95_us),
      "p99_us": $(result_field "$line" p99_us),
      "errors": $(result_field "$line" errors),
      "optimize_every": $(result_field "$line" optimize_every),
      "migrations": $(result_field "$line" migrations),
      "conflicts": $(result_field "$line" conflicts),
      "shards": $(result_field "$line" shards),
      "threads": $(result_field "$line" threads),
      "loops": $(result_field "$line" loops),
      "availability_pct": $(result_field "$line" availability_pct),
      "durability_pct": $(result_field "$line" durability_pct),
      "acked_objects": $(result_field "$line" acked_objects),
      "unavailable": $(result_field "$line" unavailable),
      "degraded_reads": $(result_field "$line" degraded_reads),
      "reconstructions": $(result_field "$line" reconstructions),
      "repairs": $(result_field "$line" repairs),
      "faults_injected": $(result_field "$line" faults_injected),
      "p99_storm_us": $(result_field "$line" p99_storm_us),
      "skipped": $skipped
    }
EOF
}

# The day suite object: serving fields plus the adaptive-capacity block.
emit_day_suite() {  # emit_day_suite <result-line> <wall-ms>
  local line=$1 wall=$2 skipped=false
  [[ -z "$line" ]] && skipped=true
  cat <<EOF
    {
      "suite": "bench_server_day",
      "wall_ms": $wall,
      "req_per_s": $(result_field "$line" req_per_s),
      "p50_us": $(result_field "$line" p50_us),
      "p95_us": $(result_field "$line" p95_us),
      "p99_us": $(result_field "$line" p99_us),
      "errors": $(result_field "$line" errors),
      "migrations": $(result_field "$line" migrations),
      "conflicts": $(result_field "$line" conflicts),
      "shards": $(result_field "$line" shards),
      "threads": $(result_field "$line" threads),
      "loops": $(result_field "$line" loops),
      "periods": $(result_field "$line" periods),
      "period_ms": $(result_field "$line" period_ms),
      "slo_p99_ms": $(result_field "$line" slo_p99_ms),
      "slo_attainment": $(result_field "$line" slo_attainment),
      "shed_requests": $(result_field "$line" shed_requests),
      "probe_admissions": $(result_field "$line" probe_admissions),
      "shed_escalations": $(result_field "$line" shed_escalations),
      "scale_events": $(result_field "$line" scale_events),
      "peak_req_per_s": $(result_field "$line" peak_req_per_s),
      "trough_req_per_s": $(result_field "$line" trough_req_per_s),
      "durability_pct": $(result_field "$line" durability_pct),
      "acked_objects": $(result_field "$line" acked_objects),
      "skipped": $skipped
    }
EOF
}

# shellcheck disable=SC2086
run_server_bench $SERVER_BENCH_ARGS
BASE_RESULT=$SERVER_RESULT; BASE_MS=$SERVER_MS

# shellcheck disable=SC2086
run_server_bench $SERVER_BENCH_ARGS $OPTIMIZE_BENCH_ARGS
OPT_RESULT=$SERVER_RESULT; OPT_MS=$SERVER_MS

# shellcheck disable=SC2086
run_server_bench $SERVER_BENCH_ARGS $SHARDED_BENCH_ARGS
SHARD_RESULT=$SERVER_RESULT; SHARD_MS=$SERVER_MS

# shellcheck disable=SC2086
run_server_bench $SERVER_BENCH_ARGS $SHARDED_BENCH_ARGS $OPTIMIZE_BENCH_ARGS
SHARD_OPT_RESULT=$SERVER_RESULT; SHARD_OPT_MS=$SERVER_MS

# --- bench_server_chaos (schema >= 6): the same loopback load with a fault
# --- plan darkening/browning providers mid-run; validated against the
# --- extended field list so a truncated SLO block records as skipped.
CHAOS_SUITE_JSON=""
if [[ "$SCHEMA_N" =~ ^[0-9]+$ ]] && (( SCHEMA_N >= 6 )); then
  CHAOS_START=$(now_ms)
  # shellcheck disable=SC2086
  CHAOS_RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" $CHAOS_BENCH_ARGS || true; } \
                 | grep '^RESULT ' || true)
  CHAOS_MS=$(( $(now_ms) - CHAOS_START ))
  if [[ -z "$CHAOS_RESULT" ]]; then
    echo "note: chaos bench produced no RESULT line" >&2
  elif ! validate_chaos_result "$CHAOS_RESULT"; then
    CHAOS_RESULT=""
  fi
  CHAOS_SUITE_JSON=",
$(emit_chaos_suite "$CHAOS_RESULT" "$CHAOS_MS")"
fi

# --- bench_server_day (schema >= 7): the compressed diurnal+flash replay
# --- with predictive scaling and SLO admission control live; validated
# --- against the adaptive-capacity field list.
DAY_SUITE_JSON=""
if [[ "$SCHEMA_N" =~ ^[0-9]+$ ]] && (( SCHEMA_N >= 7 )); then
  DAY_START=$(now_ms)
  # shellcheck disable=SC2086
  DAY_RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" $DAY_BENCH_ARGS || true; } \
               | grep '^RESULT ' || true)
  DAY_MS=$(( $(now_ms) - DAY_START ))
  if [[ -z "$DAY_RESULT" ]]; then
    echo "note: day bench produced no RESULT line" >&2
  elif ! validate_day_result "$DAY_RESULT"; then
    DAY_RESULT=""
  fi
  DAY_SUITE_JSON=",
$(emit_day_suite "$DAY_RESULT" "$DAY_MS")"
fi

# --- bench_server_filtered (schema >= 8): the sharded load with the full
# --- filter prefix on every rule; validated against the reduction fields.
FILTERED_SUITE_JSON=""
if [[ "$SCHEMA_N" =~ ^[0-9]+$ ]] && (( SCHEMA_N >= 8 )); then
  FILTERED_START=$(now_ms)
  # shellcheck disable=SC2086
  FILTERED_RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" $FILTERED_BENCH_ARGS || true; } \
                    | grep '^RESULT ' || true)
  FILTERED_MS=$(( $(now_ms) - FILTERED_START ))
  if [[ -z "$FILTERED_RESULT" ]]; then
    echo "note: filtered bench produced no RESULT line" >&2
  elif ! validate_filtered_result "$FILTERED_RESULT"; then
    FILTERED_RESULT=""
  fi
  FILTERED_SUITE_JSON=",
$(emit_filtered_suite "$FILTERED_RESULT" "$FILTERED_MS")"
fi

# Shards-over-baseline speedup; meaningless (null) when either run skipped.
SCALE_X=$(python3 - "$(result_field "$BASE_RESULT" req_per_s)" \
                    "$(result_field "$SHARD_RESULT" req_per_s)" <<'EOF'
import sys
try:
    base, sharded = float(sys.argv[1]), float(sys.argv[2])
    print(f"{sharded / base:.2f}" if base > 0 else "null")
except ValueError:
    print("null")
EOF
)

cat >"$OUT" <<EOF
{
  "schema": "$SCHEMA",
  "generated_by": "scripts/bench_report.sh",
  "host_cores": $(nproc),
  "sharded_speedup_x": $SCALE_X,
  "suites": [
    {
      "suite": "bench_catalog",
      "wall_ms": $CATALOG_MS,
      "objects_per_s": null,
      "skipped": false
    },
    {
      "suite": "bench_placement_scaling",
      "wall_ms": $SCALING_MS,
      "objects_per_s": $SCALING_OBJ_S,
      "skipped": $SCALING_SKIPPED
    },
$(emit_server_suite bench_server_throughput "$BASE_RESULT" "$BASE_MS"),
$(emit_server_suite bench_server_throughput_optimized "$OPT_RESULT" "$OPT_MS"),
$(emit_server_suite bench_server_throughput_sharded "$SHARD_RESULT" "$SHARD_MS"),
$(emit_server_suite bench_server_throughput_sharded_optimized "$SHARD_OPT_RESULT" "$SHARD_OPT_MS")$CHAOS_SUITE_JSON$DAY_SUITE_JSON$FILTERED_SUITE_JSON
  ]
}
EOF
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT" \
  || { echo "internal error: $OUT is not valid JSON" >&2; exit 1; }
echo "wrote $OUT"
