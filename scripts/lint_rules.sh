#!/usr/bin/env bash
# Project-specific greppable lints: the house invariants the code comments
# promise, enforced. Each rule is a pattern that must not appear outside an
# explicit allowlist; every allowlist entry carries the justification for
# why that one file may break the rule. Run with no arguments to lint the
# repo (exit 1 on any violation), or with --self-test to prove each rule
# still fires on the deliberate violations in tests/tooling/fixtures/.
#
# The rules and why they exist:
#   raw-clock       src/ must take time as an injectable now/now_us, never
#                   read a std::chrono clock directly — determinism under
#                   simulation and in tests depends on one clock seam.
#   raw-fsync       durability/fsync.cc is the single implementation of the
#                   crash-safe publish protocol (PR 5); a second raw fsync
#                   call site would fork the protocol.
#   test-sleep      tests wait on conditions, not durations; sleep_for in
#                   tests/ is allowed only in the WaitUntil poll helper and
#                   in suites whose behavior under test *is* a duration.
#   nondeterminism  rand() and std::random_device are unseedable; all
#                   randomness flows through common/rng.h with a test-fixed
#                   seed so every suite replays identically.
#   cipher-seam     the raw cipher primitives (CtrKeystreamXor, WrapDataKey)
#                   live behind ObjectCipher/TenantKeyring in
#                   src/filter/crypto.{h,cc}; a second call site would fork
#                   the envelope protocol and skip the authentication tag.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FIXTURES="$REPO_ROOT/tests/tooling/fixtures"
TREE="$REPO_ROOT"  # overridden by the end-to-end self-test
violations=0

# scan <rule> <egrep-pattern> <dir> [allowlisted-file ...]
# Greps *.h/*.cc under $TREE/<dir>, drops allowlisted files, and reports
# everything left as a violation.
scan() {
  local rule="$1" pattern="$2" dir="$3"
  shift 3
  [[ -d "$TREE/$dir" ]] || return 0
  local hits
  hits="$(cd "$TREE" && grep -rnE "$pattern" "$dir" \
            --include='*.h' --include='*.cc' || true)"
  local file
  for file in "$@"; do
    hits="$(printf '%s\n' "$hits" | grep -v "^$file:" || true)"
  done
  hits="$(printf '%s\n' "$hits" | grep -v '^$' || true)"
  if [[ -n "$hits" ]]; then
    echo "lint_rules[$rule]: pattern '$pattern' outside the allowlist:" >&2
    printf '%s\n' "$hits" >&2
    violations=$((violations + 1))
  fi
}

run_lints() {
  # Allowlist: net/server/server.cc — the epoll loop's idle-deadline
  # arithmetic is pure monotonic-duration bookkeeping (when to sweep, not
  # what time a request happened); request-visible time flows through the
  # injectable ServerConfig::clock seam the timeout tests drive.
  # Allowlist: capacity/admission.cc — NowUs() is the documented fallback
  # when no AdmissionConfig::now_us is injected; the decision path itself
  # is sample-counted and clock-free, and tests always inject now_us.
  scan raw-clock '_clock::now\(\)' src \
    src/net/server/server.cc \
    src/capacity/admission.cc

  # Allowlist: durability/fsync.cc — the single implementation. Everything
  # else (wal.cc included, via FsyncFd) calls through durability/fsync.h.
  scan raw-fsync '\b(fsync|fdatasync)\s*\(' src \
    src/durability/fsync.cc

  # Allowlist: tests/support/wait.h — WaitUntil's poll nap, the one sleep
  # every condition wait shares.
  # Allowlist: tests/net/server_timeout_test.cc — the subject under test is
  # the idle deadline itself; its keep-alive gaps, idle sit and byte
  # trickle are durations by definition and cannot be condition waits.
  scan test-sleep 'sleep_for' tests \
    tests/support/wait.h \
    tests/net/server_timeout_test.cc

  # No allowlist: nothing in the tree may use unseedable randomness.
  scan nondeterminism '\brand\(\)|std::random_device' src
  scan nondeterminism '\brand\(\)|std::random_device' tests

  # Allowlist: src/filter/crypto.{h,cc} — the single implementation of the
  # envelope protocol (wrap, per-chunk keystream, HMAC tag).  Everyone else
  # encrypts through ObjectCipher, which cannot skip the tag.
  scan cipher-seam '\b(CtrKeystreamXor|WrapDataKey)\s*\(' src \
    src/filter/crypto.h \
    src/filter/crypto.cc
}

# Each fixture deliberately violates exactly one rule. First prove each
# pattern still matches its fixture, then prove the lint as a whole exits
# nonzero on a tree containing them. (Fixtures are *.cc.fixture so the
# normal run's *.cc include glob never sees them; the staged copies get
# real extensions.)
self_test() {
  local failures=0
  expect_catch() {
    local rule="$1" pattern="$2" fixture="$3"
    if grep -qE "$pattern" "$FIXTURES/$fixture"; then
      echo "self-test[$rule]: OK ($fixture trips the pattern)"
    else
      echo "self-test[$rule]: FAIL — $fixture no longer trips '$pattern'" >&2
      failures=$((failures + 1))
    fi
  }
  expect_catch raw-clock '_clock::now\(\)' bad_clock.cc.fixture
  expect_catch raw-fsync '\b(fsync|fdatasync)\s*\(' bad_fsync.cc.fixture
  expect_catch test-sleep 'sleep_for' bad_sleep.cc.fixture
  expect_catch nondeterminism '\brand\(\)|std::random_device' \
    bad_rand.cc.fixture
  expect_catch cipher-seam '\b(CtrKeystreamXor|WrapDataKey)\s*\(' \
    bad_cipher.cc.fixture

  local staging
  staging="$(mktemp -d)"
  mkdir -p "$staging/src" "$staging/tests"
  cp "$FIXTURES/bad_clock.cc.fixture" "$staging/src/bad_clock.cc"
  cp "$FIXTURES/bad_fsync.cc.fixture" "$staging/src/bad_fsync.cc"
  cp "$FIXTURES/bad_rand.cc.fixture" "$staging/src/bad_rand.cc"
  cp "$FIXTURES/bad_sleep.cc.fixture" "$staging/tests/bad_sleep.cc"
  cp "$FIXTURES/bad_cipher.cc.fixture" "$staging/src/bad_cipher.cc"
  TREE="$staging" violations=0
  run_lints 2>/dev/null
  TREE="$REPO_ROOT"
  if [[ $violations -ge 5 ]]; then
    echo "self-test[end-to-end]: OK (lint reports $violations violating" \
         "rule(s) on the staged tree)"
  else
    echo "self-test[end-to-end]: FAIL — staged violating tree only" \
         "tripped $violations rule(s)" >&2
    failures=$((failures + 1))
  fi
  rm -rf "$staging"

  if [[ $failures -ne 0 ]]; then
    echo "lint_rules --self-test: $failures check(s) failed" >&2
    return 1
  fi
  echo "lint_rules --self-test: all rules fire on their fixtures"
}

case "${1:-}" in
  --self-test)
    self_test
    ;;
  '')
    run_lints
    if [[ $violations -ne 0 ]]; then
      echo "lint_rules: $violations rule(s) violated" >&2
      exit 1
    fi
    echo "lint_rules: clean"
    ;;
  *)
    echo "usage: $0 [--self-test]" >&2
    exit 2
    ;;
esac
