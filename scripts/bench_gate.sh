#!/usr/bin/env bash
# CI bench-regression gate: the smoke-label ctest suites plus a short
# bench_server_throughput pass, compared against the committed baseline
# report.  Fails (exit 1) when loopback throughput regresses more than
# REGRESSION_PCT percent below the baseline's bench_server_throughput
# req_per_s — the tripwire for "this PR made the serving path slower".
#
# The gate tolerates absolute-speed differences between machines only as
# far as the threshold allows.  PR 6 ratcheted REGRESSION_PCT from 20 down
# to 10: the shard-local serving path removed the cross-thread hop whose
# scheduling jitter was the main source of run-to-run noise.  The default
# workload matches the one scripts/bench_report.sh records baselines with
# (16 connections, 5 s, 1–4 KiB objects) so the comparison measures the
# code, not a workload mismatch.
#
# PR 7: when the baseline carries a bench_server_chaos suite (schema >= 6),
# its SLO figures are gated too — availability >= 99.9%, durability == 100%,
# degraded_reads > 0 (a chaos run that never degraded a read measured
# nothing).  The live chaos pass itself runs as the smoke.chaos ctest case
# in the smoke pass below; this check keeps the *committed* report honest.
#
# PR 8: a schema >= 7 baseline's bench_server_day suite is gated the same
# way — slo_attainment >= DAY_ATTAINMENT_FLOOR, durability == 100%, and
# scale_events > 0 (a day replay that never resized measured a fixed-
# capacity server, not the adaptive loop).  The live day pass runs as the
# smoke.day_replay ctest case.
#
# PR 10: a schema >= 8 baseline's bench_server_filtered suite is gated on
# the data-reduction figures — reduction_ratio in (0, REDUCTION_CEILING]
# (the seeded corpus is highly repetitive, so a full filter prefix that
# does not shrink it measured a broken pipeline), dedup_hits > 0, and
# errors == 0 (every filtered body decoded byte-exact under load).
#
# Usage: scripts/bench_gate.sh [baseline.json]   (default: BENCH_PR10.json)
# Env:   BUILD_DIR=build
#        REGRESSION_PCT=10         allowed drop vs baseline, in percent
#        GATE_BENCH_ARGS="--connections 16 --duration-s 5 --object-bytes 1024,4096"
#        DAY_ATTAINMENT_FLOOR=0.7  minimum slo_attainment in the baseline
#        REDUCTION_CEILING=0.9     maximum reduction_ratio in the baseline
#        SKIP_SMOKE=0              1 skips the ctest smoke pass
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BASELINE=${1:-BENCH_PR10.json}
REGRESSION_PCT=${REGRESSION_PCT:-10}
DAY_ATTAINMENT_FLOOR=${DAY_ATTAINMENT_FLOOR:-0.7}
REDUCTION_CEILING=${REDUCTION_CEILING:-0.9}
# Must mirror bench_report.sh's SERVER_BENCH_ARGS default: the committed
# baseline was recorded with this workload.
GATE_BENCH_ARGS=${GATE_BENCH_ARGS:---connections 16 --duration-s 5 --object-bytes 1024,4096}
SKIP_SMOKE=${SKIP_SMOKE:-0}

if [[ ! -f "$BASELINE" ]]; then
  echo "bench_gate: baseline $BASELINE not found" >&2
  exit 2
fi

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target bench_server_throughput >/dev/null

if [[ "$SKIP_SMOKE" -ne 1 ]]; then
  echo "==> bench gate: smoke-label ctest"
  # The smoke suites need their binaries; build everything the label covers.
  cmake --build "$BUILD_DIR" -j >/dev/null
  (cd "$BUILD_DIR" && ctest --output-on-failure -L '^smoke$')
fi

echo "==> bench gate: short bench_server_throughput pass"
# shellcheck disable=SC2086
RESULT=$({ "$BUILD_DIR/bench/bench_server_throughput" $GATE_BENCH_ARGS || true; } \
         | grep '^RESULT ' || true)
if [[ -z "$RESULT" ]]; then
  echo "bench_gate: bench_server_throughput produced no RESULT line" >&2
  exit 1
fi
CURRENT=$(sed -n 's/.*[[:space:]]req_per_s=\([^[:space:]]*\).*/\1/p' <<<"$RESULT")
ERRORS=$(sed -n 's/.*[[:space:]]errors=\([^[:space:]]*\).*/\1/p' <<<"$RESULT")
if [[ "$ERRORS" != "0" ]]; then
  echo "bench_gate: bench reported $ERRORS request error(s)" >&2
  exit 1
fi

python3 - "$BASELINE" "$CURRENT" "$REGRESSION_PCT" "$DAY_ATTAINMENT_FLOOR" \
        "$REDUCTION_CEILING" <<'EOF'
import json, sys

baseline_path, current, allowed_pct = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
day_attainment_floor = float(sys.argv[4])
reduction_ceiling = float(sys.argv[5])
with open(baseline_path) as f:
    report = json.load(f)

baseline = None
for suite in report.get("suites", []):
    if suite.get("suite") == "bench_server_throughput" and not suite.get("skipped"):
        baseline = suite.get("req_per_s")
        break
if baseline is None:
    # A baseline without the suite (or with it skipped) cannot gate; treat
    # as a configuration error rather than a silent pass.
    sys.exit(f"bench_gate: no usable bench_server_throughput suite in {baseline_path}")

floor = baseline * (1.0 - allowed_pct / 100.0)
verdict = "PASS" if current >= floor else "FAIL"
print(f"bench_gate: baseline={baseline:.1f} req/s, floor={floor:.1f} "
      f"(-{allowed_pct:.0f}%), current={current:.1f} -> {verdict}")
if current < floor:
    sys.exit(1)

# Chaos SLO floors against the committed report (schema >= 6 baselines).
chaos = None
for suite in report.get("suites", []):
    if suite.get("suite") == "bench_server_chaos":
        chaos = suite
        break
if chaos is None:
    print("bench_gate: baseline has no bench_server_chaos suite "
          "(pre-schema-6); chaos SLO check skipped")
elif chaos.get("skipped"):
    sys.exit("bench_gate: baseline's chaos suite is marked skipped — "
             "regenerate the report with a working chaos run")
else:
    availability = float(chaos.get("availability_pct") or 0)
    durability = float(chaos.get("durability_pct") or 0)
    degraded = int(chaos.get("degraded_reads") or 0)
    print(f"bench_gate: chaos SLO availability={availability:.4f}% "
          f"durability={durability:.4f}% degraded_reads={degraded}")
    if availability < 99.9:
        sys.exit("bench_gate: chaos availability below the 99.9% floor")
    if durability < 100.0:
        sys.exit("bench_gate: chaos durability below 100%")
    if degraded <= 0:
        sys.exit("bench_gate: chaos run recorded no degraded reads — the "
                 "storm missed the data path, the SLO figures mean nothing")

# Day-replay SLO-attainment floor against the committed report (schema >= 7
# baselines) — sits next to the throughput and chaos floors.
day = None
for suite in report.get("suites", []):
    if suite.get("suite") == "bench_server_day":
        day = suite
        break
if day is None:
    print("bench_gate: baseline has no bench_server_day suite "
          "(pre-schema-7); day SLO check skipped")
elif day.get("skipped"):
    sys.exit("bench_gate: baseline's day suite is marked skipped — "
             "regenerate the report with a working day replay")
else:
    attainment = float(day.get("slo_attainment") or 0)
    durability = float(day.get("durability_pct") or 0)
    scale_events = int(day.get("scale_events") or 0)
    shed = int(day.get("shed_requests") or 0)
    print(f"bench_gate: day SLO attainment={attainment:.4f} "
          f"(floor {day_attainment_floor:.2f}) durability={durability:.4f}% "
          f"scale_events={scale_events} shed_requests={shed}")
    if attainment < day_attainment_floor:
        sys.exit(f"bench_gate: day SLO attainment below the "
                 f"{day_attainment_floor:.2f} floor")
    if durability < 100.0:
        sys.exit("bench_gate: day durability below 100% — an acked write "
                 "did not read back")
    if scale_events <= 0:
        sys.exit("bench_gate: day replay recorded no scale events — the "
                 "capacity controller never acted, the attainment figure "
                 "measured a static deployment")

# Data-reduction floors against the committed report (schema >= 8
# baselines): the filtered suite must show the pipeline actually reducing
# the (repetitive) bench corpus and deduplicating under load.
filtered = None
for suite in report.get("suites", []):
    if suite.get("suite") == "bench_server_filtered":
        filtered = suite
        break
if filtered is None:
    print("bench_gate: baseline has no bench_server_filtered suite "
          "(pre-schema-8); reduction check skipped")
elif filtered.get("skipped"):
    sys.exit("bench_gate: baseline's filtered suite is marked skipped — "
             "regenerate the report with a working filtered run")
else:
    ratio = float(filtered.get("reduction_ratio") or 0)
    dedup_hits = int(filtered.get("dedup_hits") or 0)
    errors = int(filtered.get("errors") or 0)
    print(f"bench_gate: filtered reduction_ratio={ratio:.4f} "
          f"(ceiling {reduction_ceiling:.2f}) dedup_hits={dedup_hits} "
          f"errors={errors}")
    if not (0.0 < ratio <= reduction_ceiling):
        sys.exit(f"bench_gate: filtered reduction_ratio outside "
                 f"(0, {reduction_ceiling:.2f}] — the pipeline did not "
                 f"reduce the repetitive bench corpus")
    if dedup_hits <= 0:
        sys.exit("bench_gate: filtered run recorded no dedup hits — the "
                 "index never matched a chunk under load")
    if errors != 0:
        sys.exit("bench_gate: filtered run reported request errors — "
                 "filtered bodies failed to decode under load")
EOF
echo "==> bench gate OK"
