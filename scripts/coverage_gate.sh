#!/usr/bin/env bash
# Line-coverage gate: instrumented build + full unit-test pass + a committed
# coverage floor over src/.  The CI coverage job runs this and fails when
# line coverage of src/ drops below COVERAGE_FLOOR percent — the tripwire
# for "this PR added a subsystem but not its tests".
#
# Report backends, in order of preference:
#   gcovr     (CI installs it via apt) — also writes an HTML report to
#             COVERAGE_HTML_DIR for the job artifact
#   gcov JSON (bundled with gcc; no extra packages) — text summary only,
#             so the gate still enforces the floor on a bare toolchain
#
# The smoke label (bench binaries under load) is excluded: the benches
# exercise the same code the unit suites cover, cost minutes of wall clock,
# and coverage-instrumented binaries distort the timings they assert on.
#
# Usage: scripts/coverage_gate.sh
# Env:   COVERAGE_BUILD_DIR=build-coverage
#        COVERAGE_FLOOR=80         minimum line coverage of src/, percent
#        COVERAGE_HTML_DIR=coverage-html
#        CTEST_PARALLEL=$(nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${COVERAGE_BUILD_DIR:-build-coverage}
FLOOR=${COVERAGE_FLOOR:-80}
HTML_DIR=${COVERAGE_HTML_DIR:-coverage-html}
CTEST_PARALLEL=${CTEST_PARALLEL:-$(nproc)}

echo "==> coverage gate: instrumented build ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

echo "==> coverage gate: unit suites (smoke label excluded)"
(cd "$BUILD_DIR" && ctest -LE '^smoke$' -j "$CTEST_PARALLEL" \
  --output-on-failure)

if command -v gcovr >/dev/null 2>&1; then
  echo "==> coverage gate: gcovr report (html -> $HTML_DIR)"
  mkdir -p "$HTML_DIR"
  gcovr --root . --filter 'src/' "$BUILD_DIR" \
    --html-details "$HTML_DIR/index.html" \
    --print-summary >coverage-summary.txt
  cat coverage-summary.txt
  PCT=$(sed -n 's/^lines: \([0-9.]*\)%.*/\1/p' coverage-summary.txt)
else
  echo "note: gcovr not installed; falling back to gcov JSON aggregation" >&2
  PCT=$(python3 - "$BUILD_DIR" <<'EOF'
import gzip, json, os, subprocess, sys

# Absolute: gcov runs with cwd=build_dir (its .gcov.json.gz land there),
# so relative .gcda paths from the repo root would not resolve.
build_dir = os.path.abspath(sys.argv[1])
gcda = []
for root, _, files in os.walk(build_dir):
    # Only object trees of src/ translation units; test/bench objects would
    # count their own bodies, not the product code under test.
    if f"{os.sep}src{os.sep}" not in root + os.sep:
        continue
    gcda += [os.path.join(root, f) for f in files if f.endswith(".gcda")]
if not gcda:
    sys.exit("coverage_gate: no .gcda files under src/ object trees")

covered, total = 0, 0
seen = set()
for path in gcda:
    subprocess.run(
        ["gcov", "--json-format", "--object-directory",
         os.path.dirname(path), path],
        cwd=build_dir, check=True, capture_output=True)
for name in os.listdir(build_dir):
    if not name.endswith(".gcov.json.gz"):
        continue
    with gzip.open(os.path.join(build_dir, name)) as f:
        data = json.load(f)
    for unit in data.get("files", []):
        source = unit.get("file", "")
        if "/src/" not in "/" + source or source in seen:
            continue
        seen.add(source)
        for line in unit.get("lines", []):
            total += 1
            if line.get("count", 0) > 0:
                covered += 1
    os.remove(os.path.join(build_dir, name))
if total == 0:
    sys.exit("coverage_gate: gcov reported no executable lines in src/")
print(f"{100.0 * covered / total:.1f}")
EOF
)
fi

python3 - "$PCT" "$FLOOR" <<'EOF'
import sys
pct, floor = float(sys.argv[1]), float(sys.argv[2])
verdict = "PASS" if pct >= floor else "FAIL"
print(f"coverage_gate: src/ line coverage {pct:.1f}% "
      f"(floor {floor:.1f}%) -> {verdict}")
sys.exit(0 if pct >= floor else 1)
EOF
echo "==> coverage gate OK"
