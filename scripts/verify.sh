#!/usr/bin/env bash
# Tier-1 verification for CI: the exact ROADMAP.md command, then the `asan`
# preset (Debug + ASan/UBSan, build-asan/), then — with --tsan — the `tsan`
# preset running the net/ server suites (the concurrent serving loop) plus
# every race/conflict suite (migration-vs-Put CAS races, concurrent
# ApplyIfLatest, the sharded optimizer sweep) under ThreadSanitizer.
#
# The GitHub Actions matrix (.github/workflows/ci.yml) runs one pass per
# job via --only; locally the default remains Release + ASan.
# Usage: scripts/verify.sh [--skip-asan] [--tsan] [--only release|asan|tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_RELEASE=1
RUN_ASAN=1
RUN_TSAN=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-asan) RUN_ASAN=0; shift ;;
    --tsan) RUN_TSAN=1; shift ;;
    --only)
      [[ $# -ge 2 ]] || { echo "--only needs release|asan|tsan" >&2; exit 2; }
      RUN_RELEASE=0; RUN_ASAN=0; RUN_TSAN=0
      case "$2" in
        release) RUN_RELEASE=1 ;;
        asan) RUN_ASAN=1 ;;
        tsan) RUN_TSAN=1 ;;
        *) echo "unknown --only mode: $2" >&2; exit 2 ;;
      esac
      shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ "$RUN_RELEASE" -eq 1 ]]; then
  echo "==> tier-1: Release build + full ctest"
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$RUN_ASAN" -eq 1 ]]; then
  echo "==> ASan/UBSan: asan preset build + full ctest"
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan
fi

if [[ "$RUN_TSAN" -eq 1 ]]; then
  echo "==> TSan: tsan preset build + net/ server and race/conflict suites"
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  # The net/ suites by label, plus the CAS race/conflict suites (core/store
  # labels) by name — migration-vs-Put commits, concurrent ApplyIfLatest,
  # the sharded optimizer sweep racing writers.
  ctest --preset tsan -L '^net$'
  ctest --preset tsan -R '(Race|Conflict)'
fi

echo "==> verify OK"
