#!/usr/bin/env bash
# Tier-1 verification for CI: the exact ROADMAP.md command, then the `asan`
# preset (Debug + ASan/UBSan, build-asan/), then — with --tsan — the `tsan`
# preset running the net/ server suites (the concurrent serving loop) plus
# every `tsan`-labeled race/conflict suite (migration-vs-Put CAS races,
# concurrent ApplyIfLatest) under ThreadSanitizer.
# Usage: scripts/verify.sh [--skip-asan] [--tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
RUN_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --tsan) RUN_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: Release build + full ctest"
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "==> ASan/UBSan: asan preset build + full ctest"
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan
fi

if [[ "$RUN_TSAN" -eq 1 ]]; then
  echo "==> TSan: tsan preset build + net/ server and race/conflict suites"
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  # The net/ suites by label, plus the CAS race/conflict suites (core/store
  # labels) by name — migration-vs-Put commits, concurrent ApplyIfLatest.
  ctest --preset tsan -L '^net$'
  ctest --preset tsan -R '(Race|Conflict)'
fi

echo "==> verify OK"
