#!/usr/bin/env bash
# Tier-1 verification for CI: the exact ROADMAP.md command, then the ASan/UBSan
# configuration. Usage: scripts/verify.sh [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: Release build + full ctest"
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "$SKIP_ASAN" -eq 0 ]]; then
  echo "==> ASan/UBSan: Debug build + full ctest"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug -DSCALIA_SANITIZE=ON
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j "$(nproc)")
fi

echo "==> verify OK"
