#!/usr/bin/env bash
# Tier-1 verification for CI: the exact ROADMAP.md command, then the `asan`
# preset (Debug + ASan/UBSan, build-asan/), then — with --tsan — the `tsan`
# preset running the net/ server suites (the concurrent serving loop) plus
# every race/conflict suite (migration-vs-Put CAS races, concurrent
# ApplyIfLatest, the sharded optimizer sweep) under ThreadSanitizer.
#
# --only tidy is the static-analysis gate: scripts/lint_rules.sh (plus its
# fixture self-test), then — when clang-18 is installed — a full build under
# clang's -Wthread-safety -Werror via the `tidy` preset and clang-tidy over
# src/ with the committed .clang-tidy.  Without clang-18 the clang layers
# are skipped with a warning (the CI static-analysis job always has it).
#
# The GitHub Actions matrix (.github/workflows/ci.yml) runs one pass per
# job via --only; locally the default remains Release + ASan.
# Usage: scripts/verify.sh [--skip-asan] [--tsan] [--only release|asan|tsan|tidy]
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_RELEASE=1
RUN_ASAN=1
RUN_TSAN=0
RUN_TIDY=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-asan) RUN_ASAN=0; shift ;;
    --tsan) RUN_TSAN=1; shift ;;
    --only)
      [[ $# -ge 2 ]] || { echo "--only needs release|asan|tsan|tidy" >&2; exit 2; }
      RUN_RELEASE=0; RUN_ASAN=0; RUN_TSAN=0; RUN_TIDY=0
      case "$2" in
        release) RUN_RELEASE=1 ;;
        asan) RUN_ASAN=1 ;;
        tsan) RUN_TSAN=1 ;;
        tidy) RUN_TIDY=1 ;;
        *) echo "unknown --only mode: $2" >&2; exit 2 ;;
      esac
      shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ "$RUN_RELEASE" -eq 1 ]]; then
  echo "==> tier-1: Release build + full ctest"
  cmake -B build -S .
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$RUN_ASAN" -eq 1 ]]; then
  echo "==> ASan/UBSan: asan preset build + full ctest"
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan
fi

if [[ "$RUN_TSAN" -eq 1 ]]; then
  echo "==> TSan: tsan preset build + net/ server and race/conflict suites"
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  # The net/ suites by label, plus the CAS race/conflict suites (core/store
  # labels) by name — migration-vs-Put commits, concurrent ApplyIfLatest,
  # the sharded optimizer sweep racing writers.
  ctest --preset tsan -L '^net$'
  ctest --preset tsan -R '(Race|Conflict)'
fi

if [[ "$RUN_TIDY" -eq 1 ]]; then
  echo "==> static analysis: project lint rules + fixture self-test"
  scripts/lint_rules.sh
  scripts/lint_rules.sh --self-test

  TIDY_CXX="${TIDY_CXX:-clang++-18}"
  TIDY_BIN="${CLANG_TIDY:-clang-tidy-18}"
  if command -v "$TIDY_CXX" >/dev/null 2>&1 && \
     command -v "$TIDY_BIN" >/dev/null 2>&1; then
    echo "==> static analysis: clang -Wthread-safety -Werror (tidy preset)"
    cmake --preset tidy
    cmake --build --preset tidy -j "$(nproc)"

    echo "==> static analysis: clang-tidy over src/"
    RUNNER="${RUN_CLANG_TIDY:-run-clang-tidy-18}"
    if command -v "$RUNNER" >/dev/null 2>&1; then
      "$RUNNER" -clang-tidy-binary "$(command -v "$TIDY_BIN")" \
        -p build-tidy -quiet "$(pwd)/src/.*\.cc"
    else
      find src -name '*.cc' -print0 | \
        xargs -0 -P "$(nproc)" -n 8 "$TIDY_BIN" -p build-tidy --quiet
    fi
  else
    echo "==> WARNING: $TIDY_CXX / $TIDY_BIN not found; skipping the clang" >&2
    echo "    thread-safety build and clang-tidy (the lint rules above" >&2
    echo "    still ran; CI's static-analysis job runs the full gate)" >&2
  fi
fi

echo "==> verify OK"
