#!/usr/bin/env bash
# Formatting lint for CI: checks every C++ source under src/ tests/ bench/
# examples/ against the repo's .clang-format with --dry-run — the tree is
# never rewritten, violations fail the job with clang-format's diagnostics.
#
# Usage: scripts/format_check.sh [path...]   (default: the four source dirs)
# Env:   CLANG_FORMAT=clang-format           (override the binary, e.g. a
#                                             versioned clang-format-18)
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT=${CLANG_FORMAT:-clang-format}
if ! command -v "$CLANG_FORMAT" >/dev/null; then
  echo "format_check: $CLANG_FORMAT not found (set CLANG_FORMAT, or apt-get" \
       "install clang-format)" >&2
  exit 2
fi
"$CLANG_FORMAT" --version

DIRS=("$@")
[[ ${#DIRS[@]} -eq 0 ]] && DIRS=(src tests bench examples)

mapfile -t FILES < <(find "${DIRS[@]}" \
  -name '*.h' -o -name '*.cc' -o -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "format_check: no sources found under: ${DIRS[*]}" >&2
  exit 2
fi

echo "format_check: checking ${#FILES[@]} file(s)"
"$CLANG_FORMAT" --dry-run --Werror "${FILES[@]}"
echo "format_check: OK"
